"""Simulated network: reliable FIFO channels, partitions, crash injection.

The channel semantics implement the system model of the paper (Section 3):

* **Reliable** -- a message sent by a process that does not crash is
  eventually delivered to its destination if the destination does not
  crash.  Partitions *delay* messages (they are held and released on heal)
  rather than dropping them, which models asynchrony without violating
  channel reliability.
* **FIFO** -- two messages from p to q are delivered in send order.
  The network enforces this by never scheduling an arrival on a channel
  earlier than the previously scheduled arrival on that channel.
* **Crash-stop** -- a crashed process neither sends nor receives; messages
  already in flight *from* it are still delivered (they left the sender
  before the crash), messages *to* it are discarded at delivery time.

Fault injection that needs to interact with individual sends (e.g. "crash
the sequencer so that only p2 receives the ordering message", Figures 3
and 4) is done through *send interceptors*; see :mod:`repro.faults`.
"""

from __future__ import annotations

import itertools
import random
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.loop import Simulator, TimerHandle
from repro.sim.process import Process, ProcessEnv
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.sim.faultplane import FaultPlane

#: Interceptor signature: (src, dst, payload) -> deliver?  Returning False
#: drops the message (used only by fault-injection scenarios; the normal
#: network never drops).
SendInterceptor = Callable[[str, str, Any], bool]


class Envelope:
    """A message in flight.

    A plain ``__slots__`` class (not a dataclass): one envelope is
    allocated per message, so construction cost is hot-path cost.
    """

    __slots__ = ("seq", "src", "dst", "payload", "send_time", "checksum")

    def __init__(
        self, seq: int, src: str, dst: str, payload: Any, send_time: float
    ) -> None:
        self.seq = seq
        self.src = src
        self.dst = dst
        self.payload = payload
        self.send_time = send_time
        # Wire checksum, stamped by the fault plane when corruption is
        # possible; None means "trusted link, skip verification".
        self.checksum: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"Envelope(seq={self.seq}, src={self.src!r}, dst={self.dst!r}, "
            f"payload={self.payload!r}, send_time={self.send_time})"
        )


class _SimEnv(ProcessEnv):
    """The ProcessEnv implementation backed by :class:`SimNetwork`."""

    def __init__(self, network: "SimNetwork", pid: str) -> None:
        self._network = network
        self._pid = pid
        self._rng = network.sim.child_rng(f"proc/{pid}")
        # Hot-path prebinds: every protocol action traces and most send.
        self._sim = network.sim
        self._trace_record = network.trace.record

    @property
    def pid(self) -> str:
        return self._pid

    @property
    def now(self) -> float:
        return self._network.sim.now

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def peers(self) -> Sequence[str]:
        return self._network.pids

    def send(self, dst: str, payload: Any) -> None:
        self._network.transmit(self._pid, dst, payload)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return self._network.set_process_timer(self._pid, delay, callback)

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        self._network.post_process_event(self._pid, delay, callback)

    def trace(self, kind: str, **fields: Any) -> None:
        self._trace_record(self._sim._now, self._pid, kind, **fields)


class SimNetwork:
    """Hosts processes on a :class:`Simulator` and routes messages.

    Parameters
    ----------
    sim:
        The event loop that drives everything.
    latency:
        One-way delay model for all links (default: constant 1.0 -- one
        simulated time unit per message phase).
    trace_messages:
        When True, every send/delivery/drop is recorded in the trace log
        (useful for figure-exact reproductions; off by default to keep
        large soak runs cheap).
    trace_level:
        ``"full"`` (default) keeps the usual protocol trace; ``"off"``
        installs a disabled log so soak and throughput runs pay nothing
        per event (the checkers need ``"full"``).
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        trace_messages: bool = False,
        trace_level: str = "full",
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        # Constant models skip the per-message sample() call (the common
        # configuration; delay is re-read per message so mutating
        # latency.delay still works).
        self._latency_is_const = type(self.latency) is ConstantLatency
        self.trace = TraceLog(level=trace_level)
        self.trace_messages = trace_messages and self.trace.enabled
        self._processes: Dict[str, Process] = {}
        self._crashed: set = set()
        self._seq = itertools.count()
        self._last_arrival: Dict[Tuple[str, str], float] = {}
        self._interceptors: List[SendInterceptor] = []
        self._group_of: Optional[Dict[str, int]] = None
        self._held: List[Envelope] = []
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        #: Corrupted payloads detected (checksum mismatch) and dropped
        #: at delivery instead of being handed to the protocol.
        self.corrupt_dropped = 0
        # Checksummed envelopes scheduled but not yet at their delivery
        # gate: the accounting checker must be able to find a corrupted
        # payload that is still in flight when the run is cut off.
        # Only fault-plane-stamped envelopes are tracked, so golden runs
        # never touch this set.
        self._in_flight_checksummed: set = set()
        self._fault_plane: Optional["FaultPlane"] = None
        self._rng = sim.child_rng("network")

    # ------------------------------------------------------------------
    # Registration and lifecycle
    # ------------------------------------------------------------------

    @property
    def pids(self) -> List[str]:
        """All registered process identifiers, in registration order."""
        return list(self._processes)

    @property
    def processes(self) -> Dict[str, Process]:
        return dict(self._processes)

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        """Sends suppressed by interceptors (scripted fault injection)."""
        return self._messages_dropped

    @property
    def fault_plane(self) -> Optional["FaultPlane"]:
        return self._fault_plane

    def ensure_fault_plane(self) -> "FaultPlane":
        """The installed fault plane, creating one on first use.

        Idempotent: fault schedules, scenario ``faults`` hooks, and
        tests can all compose policies onto the same plane.
        """
        if self._fault_plane is None:
            from repro.sim.faultplane import FaultPlane

            self._fault_plane = FaultPlane(self)
        return self._fault_plane

    def stats(self) -> Dict[str, int]:
        """Aggregate message/fault counters for the run report.

        Fault-free runs must report zero for every fault counter --
        the golden-run assertions and the accounting checker both rely
        on that.
        """
        stats = {
            "sent": self._messages_sent,
            "delivered": self._messages_delivered,
            "intercepted": self._messages_dropped,
            "corrupt_dropped": self.corrupt_dropped,
        }
        if self._fault_plane is not None:
            stats.update(self._fault_plane.stats())
        return stats

    def add_process(self, process: Process) -> None:
        """Register a process.  Call :meth:`start_all` (or start it yourself)."""
        if process.pid in self._processes:
            raise ValueError(f"duplicate pid: {process.pid}")
        self._processes[process.pid] = process

    def start_all(self) -> None:
        """Bind environments and run every process's initialization hook."""
        for pid, process in self._processes.items():
            if process.env is None:
                process.start(_SimEnv(self, pid))

    def start(self, process: Process) -> None:
        """Register and immediately start one process."""
        self.add_process(process)
        process.start(_SimEnv(self, process.pid))

    def process(self, pid: str) -> Process:
        return self._processes[pid]

    # ------------------------------------------------------------------
    # Crash injection
    # ------------------------------------------------------------------

    def crash(self, pid: str) -> None:
        """Crash ``pid`` now (crash-stop: it never executes again)."""
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        process = self._processes.get(pid)
        if process is not None:
            process.crashed = True
            process.on_crash()
        self.trace.record(self.sim.now, pid, "crash")

    def crash_at(self, when: float, pid: str) -> TimerHandle:
        """Schedule a crash of ``pid`` at absolute time ``when``."""
        return self.sim.schedule_at(when, lambda: self.crash(pid))

    def is_crashed(self, pid: str) -> bool:
        return pid in self._crashed

    def correct_pids(self) -> List[str]:
        """Registered processes that have not crashed."""
        return [p for p in self._processes if p not in self._crashed]

    # ------------------------------------------------------------------
    # Send interception (fault scripting)
    # ------------------------------------------------------------------

    def add_interceptor(self, interceptor: SendInterceptor) -> None:
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: SendInterceptor) -> None:
        self._interceptors.remove(interceptor)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def set_partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Partition the network into the given groups.

        Messages crossing group boundaries are held and released on
        :meth:`heal` (delayed, not lost -- channels stay reliable).
        Processes not named in any group form one implicit extra group.
        """
        group_of: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for pid in group:
                if pid in group_of:
                    raise ValueError(f"{pid} appears in two partition groups")
                group_of[pid] = index
        self._group_of = group_of
        self.trace.record(
            self.sim.now, "*network*", "partition",
            groups=[sorted(g) for g in map(list, groups)],
        )

    def heal(self) -> None:
        """Remove the partition and release all held messages.

        Held messages are released in global send order (their ``seq``):
        a message that was already in flight when the partition formed
        was *sent* before anything held at send time, and FIFO is defined
        by send order.
        """
        self._group_of = None
        held, self._held = self._held, []
        held.sort(key=lambda envelope: envelope.seq)
        for envelope in held:
            self._schedule_delivery(envelope)
        self.trace.record(self.sim.now, "*network*", "heal", released=len(held))

    def _crosses_partition(self, src: str, dst: str) -> bool:
        if self._group_of is None:
            return False
        return self._group_of.get(src, -1) != self._group_of.get(dst, -1)

    # ------------------------------------------------------------------
    # Message transmission
    # ------------------------------------------------------------------

    def transmit(self, src: str, dst: str, payload: Any) -> None:
        """Route one message.  Called by process environments."""
        if src in self._crashed:
            return  # a crashed process cannot send
        if dst not in self._processes:
            raise KeyError(f"unknown destination: {dst}")
        if self._interceptors:
            for interceptor in list(self._interceptors):
                if not interceptor(src, dst, payload):
                    self._messages_dropped += 1
                    if self.trace_messages:
                        self.trace.record(
                            self.sim.now, src, "msg_dropped", dst=dst, payload=payload,
                        )
                    return
        self._messages_sent += 1
        envelope = Envelope(next(self._seq), src, dst, payload, self.sim.now)
        if self.trace_messages:
            self.trace.record(self.sim.now, src, "msg_send", dst=dst, payload=payload)
        if self._fault_plane is not None:
            # The plane re-enters via _dispatch_from_plane for every
            # copy it decides to put on the wire.
            self._fault_plane.process(envelope)
            return
        if self._group_of is not None and self._crosses_partition(src, dst):
            self._held.append(envelope)
            return
        self._schedule_delivery(envelope)

    def _dispatch_from_plane(
        self, envelope: Envelope, extra_delay: float, fifo: bool
    ) -> None:
        """Put one plane-approved envelope on the wire.

        Group partitions still apply (the fault plane *composes* with
        scripted symmetric partitions, it does not replace them).
        """
        if self._group_of is not None and self._crosses_partition(
            envelope.src, envelope.dst
        ):
            self._held.append(envelope)
            return
        self._schedule_delivery(envelope, extra_delay, fifo)

    def _schedule_delivery(
        self, envelope: Envelope, extra_delay: float = 0.0, fifo: bool = True
    ) -> None:
        if self._latency_is_const:
            delay = self.latency.delay
        else:
            delay = self.latency.sample(self._rng, envelope.src, envelope.dst)
        arrival = self.sim.now + delay + extra_delay
        if fifo:
            channel = (envelope.src, envelope.dst)
            last_arrival = self._last_arrival
            # FIFO: never deliver before the previously scheduled arrival
            # on this channel.  Jittered and heal-storm deliveries bypass
            # the floor (and leave it unchanged): reordering is the fault
            # being injected.
            previous = last_arrival.get(channel, 0.0)
            if previous > arrival:
                arrival = previous
            last_arrival[channel] = arrival
        # Deliveries never cancel: handle-free scheduling skips the
        # TimerHandle allocation on every message.
        if envelope.checksum is not None:
            self._in_flight_checksummed.add(envelope)
        self.sim.post_at(arrival, lambda: self._deliver(envelope))

    def in_flight_checksummed(self):
        """Checksummed envelopes scheduled but not yet delivered/dropped."""
        return iter(self._in_flight_checksummed)

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.checksum is not None:
            self._in_flight_checksummed.discard(envelope)
            from repro.sim.faultplane import wire_checksum

            if wire_checksum(envelope.payload) != envelope.checksum:
                # Detected-and-dropped: corrupted payloads never reach
                # the protocol.  Checked before the crashed-destination
                # discard so the accounting is exact either way.
                self.corrupt_dropped += 1
                if self.trace.enabled:
                    self.trace.record(
                        self.sim.now, envelope.dst, "msg_corrupt_drop",
                        src=envelope.src, payload=envelope.payload,
                    )
                return
        if envelope.dst in self._crashed:
            return
        if self._group_of is not None and self._crosses_partition(envelope.src, envelope.dst):
            # A partition formed while the message was in flight: hold it.
            self._held.append(envelope)
            return
        process = self._processes.get(envelope.dst)
        if process is None:
            return
        self._messages_delivered += 1
        if self.trace_messages:
            self.trace.record(
                self.sim.now, envelope.dst, "msg_recv",
                src=envelope.src, payload=envelope.payload,
            )
        process.on_message(envelope.src, envelope.payload)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def set_process_timer(
        self, pid: str, delay: float, callback: Callable[[], None]
    ) -> TimerHandle:
        """A timer that is suppressed if its owner has crashed by fire time."""

        def guarded() -> None:
            if pid not in self._crashed:
                callback()

        return self.sim.schedule(delay, guarded)

    def post_process_event(
        self, pid: str, delay: float, callback: Callable[[], None]
    ) -> None:
        """Handle-free :meth:`set_process_timer` for uncancellable events.

        Same crash suppression, but no :class:`TimerHandle` is allocated
        and zero-delay posts ride the simulator's same-instant fast lane.
        """

        def guarded() -> None:
            if pid not in self._crashed:
                callback()

        self.sim.post(delay, guarded)
