"""Message-latency models for the simulated network.

The paper's claims are phrased in communication *phases*, so the default
unit of simulated time is "one one-way LAN message delay".  The models here
let experiments add jitter, asymmetry and heavy tails without touching
protocol code.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


class LatencyModel:
    """Base class: sample a one-way delay for a (src, dst) link."""

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError("latency must be non-negative")
        self.delay = delay

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high]."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class NormalLatency(LatencyModel):
    """Gaussian delay, truncated below at ``minimum``."""

    def __init__(self, mean: float = 1.0, stddev: float = 0.1, minimum: float = 0.01) -> None:
        if mean <= 0 or stddev < 0 or minimum < 0:
            raise ValueError("invalid normal latency parameters")
        self.mean = mean
        self.stddev = stddev
        self.minimum = minimum

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return max(self.minimum, rng.gauss(self.mean, self.stddev))

    def __repr__(self) -> str:
        return f"NormalLatency(mean={self.mean}, stddev={self.stddev})"


class LanProfile(LatencyModel):
    """A LAN-like profile: small base delay, occasional long-tail spikes.

    The spontaneous-total-order assumption the optimistic literature relies
    on ([PS98], Section 2.3 of the paper) holds when jitter is small
    relative to inter-arrival times; the ``spike_probability`` knob lets
    experiments stress exactly that assumption.
    """

    def __init__(
        self,
        base: float = 1.0,
        jitter: float = 0.05,
        spike_probability: float = 0.0,
        spike_factor: float = 10.0,
    ) -> None:
        if base <= 0 or jitter < 0 or not 0 <= spike_probability <= 1 or spike_factor < 1:
            raise ValueError("invalid LAN profile parameters")
        self.base = base
        self.jitter = jitter
        self.spike_probability = spike_probability
        self.spike_factor = spike_factor

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        delay = self.base + rng.uniform(0.0, self.jitter)
        if self.spike_probability and rng.random() < self.spike_probability:
            delay *= self.spike_factor
        return delay

    def __repr__(self) -> str:
        return (
            f"LanProfile(base={self.base}, jitter={self.jitter}, "
            f"spike_probability={self.spike_probability})"
        )


class PerLinkLatency(LatencyModel):
    """Assign a distinct model per directed (src, dst) link.

    Useful for modelling an asymmetric topology (e.g. one slow replica) or
    a client that is far from the server group.
    """

    def __init__(self, default: LatencyModel, overrides: Dict[Tuple[str, str], LatencyModel]) -> None:
        self.default = default
        self.overrides = dict(overrides)

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        model = self.overrides.get((src, dst), self.default)
        return model.sample(rng, src, dst)

    def set_link(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override the model for one directed link."""
        self.overrides[(src, dst)] = model

    def __repr__(self) -> str:
        return f"PerLinkLatency(default={self.default!r}, overrides={len(self.overrides)})"
