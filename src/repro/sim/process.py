"""Process abstraction: protocol cores are written against ``ProcessEnv``.

A protocol implementation (OAR server, consensus participant, ...) is a
:class:`Process` subclass.  It never touches the simulator or sockets
directly; it only calls methods on its :class:`ProcessEnv`.  The
deterministic simulator (:mod:`repro.sim.network`) and the asyncio runtime
(:mod:`repro.runtime`) both provide the same interface, so the exact same
protocol code runs under both.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.sim.loop import TimerHandle


class ProcessEnv:
    """The narrow world a protocol process can see.

    Concrete environments are created by the hosting substrate; protocol
    code receives one in :meth:`Process.start` and stores it as
    ``self.env``.
    """

    @property
    def pid(self) -> str:
        """This process's identifier."""
        raise NotImplementedError

    @property
    def now(self) -> float:
        """Current time (simulated or wall-clock seconds)."""
        raise NotImplementedError

    @property
    def rng(self) -> random.Random:
        """Deterministic per-process random generator."""
        raise NotImplementedError

    @property
    def peers(self) -> Sequence[str]:
        """All process identifiers known to the hosting network."""
        raise NotImplementedError

    def send(self, dst: str, payload: Any) -> None:
        """Send ``payload`` to ``dst`` over the reliable FIFO channel."""
        raise NotImplementedError

    def send_to_all(self, dsts: Iterable[str], payload: Any) -> None:
        """Send ``payload`` to each destination, in iteration order.

        This is a plain loop of :meth:`send` calls -- *not* an atomic
        multicast.  A crash can interrupt it partway, which is exactly the
        behaviour the paper's Figures 3 and 4 depend on.
        """
        for dst in dsts:
            self.send(dst, payload)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` after ``delay``; cancellable via the handle."""
        raise NotImplementedError

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """Handle-free :meth:`set_timer` for events that never cancel.

        Substrates override this to skip per-event handle allocation
        (the simulator routes zero-delay posts onto its same-instant
        fast lane); the default just discards the handle.
        """
        self.set_timer(delay, callback)

    def trace(self, kind: str, **fields: Any) -> None:
        """Record a structured trace event (see :mod:`repro.analysis.trace`)."""
        raise NotImplementedError


class Process:
    """Base class for all protocol actors.

    Lifecycle: the hosting substrate calls :meth:`start` once, delivers
    messages via :meth:`on_message`, and calls :meth:`on_crash` if the
    process is crashed by fault injection.  Handlers run one at a time
    (mutual exclusion), matching the paper's task model (Section 5.3).
    """

    def __init__(self, pid: str) -> None:
        self.pid = pid
        self.env: Optional[ProcessEnv] = None
        self.crashed = False

    def start(self, env: ProcessEnv) -> None:
        """Bind the environment and run protocol initialization."""
        self.env = env
        self.on_start()

    def on_start(self) -> None:
        """Protocol initialization hook (timers, initial sends)."""

    def on_message(self, src: str, payload: Any) -> None:
        """Handle one delivered message."""

    def on_crash(self) -> None:
        """Hook invoked when fault injection crashes this process."""

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.pid} ({status})>"
