"""The discrete-event simulation loop.

The simulator maintains a priority queue of timestamped events.  Events
scheduled for the same instant fire in the order they were scheduled, which
is what preserves FIFO delivery for messages that share an arrival time.

All randomness used anywhere in a simulation must come from
:attr:`Simulator.rng` (or a child generator obtained via
:meth:`Simulator.child_rng`), so a run is fully determined by its seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, List, Optional, Tuple


class TimerHandle:
    """A cancellable handle for a scheduled event.

    Cancellation is lazy: the event stays in the queue but is skipped when
    it reaches the front.  ``fired`` reports whether the callback ran.
    """

    __slots__ = ("cancelled", "fired", "deadline")

    def __init__(self, deadline: float) -> None:
        self.cancelled = False
        self.fired = False
        self.deadline = deadline

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not self.cancelled and not self.fired


class Simulator:
    """Deterministic discrete-event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the master random generator.  Two simulations constructed
        with the same seed and fed the same schedule of events produce
        identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[Tuple[float, int, TimerHandle, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self.rng = random.Random(seed)
        self._seed = seed

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def seed(self) -> int:
        """The master seed this simulator was constructed with."""
        return self._seed

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for run budgets)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def child_rng(self, name: str) -> random.Random:
        """Derive an independent, deterministic generator for a component.

        Components that consume randomness at data-dependent rates should
        each use their own child generator so their draws do not perturb
        each other across configuration changes.
        """
        return random.Random(f"{self._seed}/{name}")

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        handle = TimerHandle(when)
        heapq.heappush(self._queue, (when, next(self._counter), handle, callback))
        return handle

    def call_soon(self, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at the current instant, after pending same-time events."""
        return self.schedule_at(self._now, callback)

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        while self._queue:
            when, _seq, handle, callback = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            handle.fired = True
            self._events_processed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
            The clock is advanced to ``until`` when the horizon is reached.
        max_events:
            Stop after this many additional events (guards against
            non-terminating protocols in tests).
        """
        budget = max_events if max_events is not None else float("inf")
        executed = 0
        while self._queue and executed < budget:
            when = self._next_active_deadline()
            if when is None:
                break
            if until is not None and when > until:
                self._now = until
                return
            if not self.step():
                break
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def run_until(self, predicate: Callable[[], bool], max_events: int = 1_000_000) -> bool:
        """Run until ``predicate()`` is true.  Returns False if events ran out."""
        executed = 0
        while not predicate():
            if executed >= max_events or not self.step():
                return predicate()
            executed += 1
        return True

    def _next_active_deadline(self) -> Optional[float]:
        while self._queue:
            when, _seq, handle, _callback = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return when
        return None
