"""The discrete-event simulation loop.

The simulator maintains two event stores:

* a priority queue (binary heap) of timestamped events in the future, and
* a **same-instant fast lane** (a plain FIFO deque) for events scheduled
  at the *current* instant (``call_soon``, zero-delay delivery).

Events scheduled for the same instant fire in the order they were
scheduled, which is what preserves FIFO delivery for messages that share
an arrival time.  The fast lane preserves that contract without paying
the heap's ``O(log n)`` push/pop per event: an event created *at* instant
``t`` always fires after every heap event stamped ``t`` (those were
necessarily scheduled before the clock reached ``t``), and fast-lane
events fire in append order among themselves -- exactly the global
scheduling order the heap's tie-breaking counter used to enforce.

Scheduling comes in two flavours:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return a
  cancellable :class:`TimerHandle` -- use these for *timers* (heartbeats,
  retransmissions, batch ticks) that protocol logic may want to cancel.
* :meth:`Simulator.post` / :meth:`Simulator.post_at` /
  :meth:`Simulator.call_soon` are **handle-free**: no ``TimerHandle`` is
  allocated and nothing can cancel the event.  Message deliveries never
  cancel, so the network schedules through these and the per-message
  allocation disappears from the hot path.

Cancellation is lazy (the entry stays queued and is skipped when popped),
but the simulator counts dead entries and compacts the heap when more
than half of it is cancelled, so cancel-heavy workloads (heartbeat
failure detectors re-arming timeouts) cannot bloat the queue.

All randomness used anywhere in a simulation must come from
:attr:`Simulator.rng` (or a child generator obtained via
:meth:`Simulator.child_rng`), so a run is fully determined by its seed.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple, Union

import random

#: Heap entries: (when, tie-break counter, handle-or-None, callback).
#: ``handle`` is None for handle-free posts -- nothing to allocate, check
#: or cancel.
_HeapEntry = Tuple[float, int, Optional["TimerHandle"], Callable[[], None]]

#: Fast-lane entries are bare callbacks (handle-free posts) or the
#: TimerHandle itself (cancellable same-instant timers); the run loop
#: dispatches on the entry's class.
_FastEntry = Union[Callable[[], None], "TimerHandle"]

#: Compaction threshold: rebuild the heap once more than half of at least
#: this many queued entries are cancelled.  Small queues are never worth
#: compacting.
_COMPACT_MIN = 64


class TimerHandle:
    """A cancellable handle for a scheduled event.

    Cancellation is lazy: the event stays in the queue but is skipped when
    it reaches the front.  ``fired`` reports whether the callback ran.
    """

    __slots__ = ("cancelled", "fired", "deadline", "_sim", "_callback")

    def __init__(
        self,
        deadline: float,
        sim: Optional["Simulator"] = None,
        callback: Optional[Callable[[], None]] = None,
    ) -> None:
        self.cancelled = False
        self.fired = False
        self.deadline = deadline
        self._sim = sim
        self._callback = callback

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            # Fast-lane handles carry their callback; heap handles don't.
            self._sim._note_cancel(in_fast_lane=self._callback is not None)

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not self.cancelled and not self.fired


class Simulator:
    """Deterministic discrete-event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the master random generator.  Two simulations constructed
        with the same seed and fed the same schedule of events produce
        identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[_HeapEntry] = []
        self._fast: Deque[_FastEntry] = deque()
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        # Lazily-cancelled entries still physically queued, tracked per
        # store so the heap-compaction trigger never rescans the fast
        # lane (which drains by itself within the current instant).
        self._cancelled_heap = 0
        self._cancelled_fast = 0
        self.rng = random.Random(seed)
        self._seed = seed

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def seed(self) -> int:
        """The master seed this simulator was constructed with."""
        return self._seed

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for run budgets)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued (the true backlog).

        Cancellation is lazy (see the module docstring): a cancelled
        timer stays physically queued until it reaches the front or a
        compaction sweeps it, but it will never run.  This property
        excludes those dead entries, so quiescence predicates and
        run-budget heuristics ("is anything left to do?") see exactly
        the events that can still fire.  Before the PR 2 kernel rewrite
        this counted dead entries too, which made cancel-heavy runs
        (heartbeat re-arming) look perpetually busy.

        Invariant: ``pending_events + cancelled_pending`` equals the
        physical queue size (heap plus same-instant fast lane).
        """
        return (
            len(self._queue)
            + len(self._fast)
            - self._cancelled_heap
            - self._cancelled_fast
        )

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still physically queued, awaiting lazy removal.

        Purely diagnostic: these entries occupy memory and are skipped
        at pop time, but can never fire.  The counter shrinks as dead
        entries reach the heap front (or the fast lane drains) and drops
        to near zero whenever compaction rebuilds a mostly-dead heap.
        Useful for asserting that compaction keeps up in soak tests.
        """
        return self._cancelled_heap + self._cancelled_fast

    def child_rng(self, name: str) -> random.Random:
        """Derive an independent, deterministic generator for a component.

        Components that consume randomness at data-dependent rates should
        each use their own child generator so their draws do not perturb
        each other across configuration changes.
        """
        return random.Random(f"{self._seed}/{name}")

    # ------------------------------------------------------------------
    # Scheduling: cancellable timers
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        now = self._now
        when = now + delay
        if when <= now:  # delay == 0 (or rounds to nothing): same instant
            handle = TimerHandle(when, self, callback)
            self._fast.append(handle)
            return handle
        handle = TimerHandle(when, self)
        heapq.heappush(self._queue, (when, next(self._counter), handle, callback))
        return handle

    def schedule_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at absolute simulated time ``when``."""
        now = self._now
        if when <= now:
            if when < now:
                raise ValueError(f"cannot schedule in the past: {when} < {now}")
            handle = TimerHandle(when, self, callback)
            self._fast.append(handle)
            return handle
        handle = TimerHandle(when, self)
        heapq.heappush(self._queue, (when, next(self._counter), handle, callback))
        return handle

    # ------------------------------------------------------------------
    # Scheduling: handle-free posts (uncancellable; no allocation)
    # ------------------------------------------------------------------

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """Handle-free :meth:`schedule`: the event cannot be cancelled."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.post_at(self._now + delay, callback)

    def post_at(self, when: float, callback: Callable[[], None]) -> None:
        """Handle-free :meth:`schedule_at`: the event cannot be cancelled."""
        now = self._now
        if when <= now:
            if when < now:
                raise ValueError(f"cannot schedule in the past: {when} < {now}")
            self._fast.append(callback)
            return
        heapq.heappush(self._queue, (when, next(self._counter), None, callback))

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the current instant, after pending same-time events.

        Handle-free: same-instant events cannot be cancelled.  This is the
        cheapest way to defer work within the current instant (one deque
        append; the heap is never touched).
        """
        self._fast.append(callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        queue = self._queue
        fast = self._fast
        while True:
            if fast:
                # Heap events stamped exactly `now` were scheduled before
                # the clock reached `now`, so they precede the fast lane.
                if not queue or queue[0][0] != self._now:
                    entry = fast.popleft()
                    if entry.__class__ is TimerHandle:
                        if entry.cancelled:
                            self._cancelled_fast -= 1
                            continue
                        entry.fired = True
                        self._events_processed += 1
                        entry._callback()  # type: ignore[misc]
                        return True
                    self._events_processed += 1
                    entry()  # type: ignore[operator]
                    return True
            elif not queue:
                return False
            when, _seq, handle, callback = heapq.heappop(queue)
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_heap -= 1
                    continue
                handle.fired = True
            self._now = when
            self._events_processed += 1
            callback()
            return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
            The clock is advanced to ``until`` when the horizon is reached.
        max_events:
            Stop after this many additional events (guards against
            non-terminating protocols in tests).
        """
        queue = self._queue
        fast = self._fast
        fast_pop = fast.popleft
        heappop = heapq.heappop
        timer_cls = TimerHandle
        budget = max_events if max_events is not None else (1 << 62)
        processed = 0
        try:
            while processed < budget:
                if fast:
                    # Due-now heap events precede the fast lane (they
                    # carry older scheduling counters); otherwise drain
                    # the lane in append order.
                    if not queue or queue[0][0] != self._now:
                        entry = fast_pop()
                        if entry.__class__ is timer_cls:
                            if entry.cancelled:
                                self._cancelled_fast -= 1
                                continue
                            entry.fired = True
                            processed += 1
                            entry._callback()  # type: ignore[misc]
                            continue
                        processed += 1
                        entry()  # type: ignore[operator]
                        continue
                elif not queue:
                    break
                when = queue[0][0]
                if until is not None and when > until:
                    if until > self._now:
                        self._now = until
                    return
                when, _seq, handle, callback = heappop(queue)
                if handle is not None:
                    if handle.cancelled:
                        self._cancelled_heap -= 1
                        continue
                    handle.fired = True
                self._now = when
                processed += 1
                callback()
        finally:
            self._events_processed += processed
        if until is not None and self._now < until:
            self._now = until

    def run_until(self, predicate: Callable[[], bool], max_events: int = 1_000_000) -> bool:
        """Run until ``predicate()`` is true.  Returns False if events ran out."""
        executed = 0
        while not predicate():
            if executed >= max_events or not self.step():
                return predicate()
            executed += 1
        return True

    # ------------------------------------------------------------------
    # Lazy-cancellation bookkeeping
    # ------------------------------------------------------------------

    def _note_cancel(self, in_fast_lane: bool) -> None:
        """Called by :meth:`TimerHandle.cancel`; compacts when mostly dead.

        Fast-lane cancellations only bump their counter: the lane drains
        within the current instant, so there is nothing to compact and
        they must not trip (or be rescanned by) the heap trigger.
        """
        if in_fast_lane:
            self._cancelled_fast += 1
            return
        self._cancelled_heap += 1
        if (
            self._cancelled_heap > _COMPACT_MIN
            and self._cancelled_heap * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify.

        Runs in O(live entries); triggered when more than half the heap
        is dead so the amortized cost per cancellation is O(1).  Mutates
        ``self._queue`` in place: ``run()``/``step()`` hold a local
        alias to the list across callbacks, so rebinding the attribute
        would silently strand events scheduled after a mid-run
        compaction.
        """
        self._queue[:] = [
            entry
            for entry in self._queue
            if entry[2] is None or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled_heap = 0
