"""Sub-protocol components hosted inside a process.

A realistic replica stacks several protocols in one process: the failure
detector, reliable multicast, consensus, and the replication logic itself.
Each is implemented as a :class:`Component` that declares which message
types it consumes; the :class:`ComponentProcess` base dispatches incoming
messages to the right component.  Handlers still run one at a time
(the paper's mutual-exclusion task model) because the hosting substrate
delivers messages sequentially.
"""

from __future__ import annotations

from typing import Any, List, Tuple, Type

from repro.sim.process import Process, ProcessEnv


class Component:
    """A sub-protocol living inside a host process.

    Subclasses set ``MESSAGE_TYPES`` to the tuple of payload classes they
    consume and implement :meth:`on_message`.  They use ``self.env`` (the
    host's environment) to send messages and set timers.
    """

    MESSAGE_TYPES: Tuple[Type, ...] = ()

    def __init__(self, host: Process) -> None:
        self.host = host

    @property
    def env(self) -> ProcessEnv:
        env = self.host.env
        if env is None:
            raise RuntimeError(f"{type(self).__name__} used before host start")
        return env

    def start(self) -> None:
        """Called once from the host's ``on_start``."""

    def on_message(self, src: str, payload: Any) -> None:
        raise NotImplementedError

    def handles(self, payload: Any) -> bool:
        return isinstance(payload, self.MESSAGE_TYPES)


class ComponentProcess(Process):
    """A process that routes messages to registered components.

    Messages not claimed by any component go to :meth:`on_app_message`,
    which the protocol subclass implements.
    """

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self._components: List[Component] = []
        # payload class -> handling component (or None for app messages).
        # isinstance dispatch over every component per message is hot-path
        # cost; the exact payload class fully determines the outcome, so
        # it is resolved once per class and cached.
        self._dispatch_cache: dict = {}

    def add_component(self, component: Component) -> Component:
        self._components.append(component)
        self._dispatch_cache.clear()  # new component may claim cached types
        return component

    def on_start(self) -> None:
        for component in self._components:
            component.start()

    def on_message(self, src: str, payload: Any) -> None:
        cache = self._dispatch_cache
        cls = payload.__class__
        try:
            component = cache[cls]
        except KeyError:
            component = None
            for candidate in self._components:
                if candidate.handles(payload):
                    component = candidate
                    break
            cache[cls] = component
        if component is not None:
            component.on_message(src, payload)
            return
        self.on_app_message(src, payload)

    def on_app_message(self, src: str, payload: Any) -> None:
        """Handle a message not consumed by any component."""
