"""Composable per-link fault plane for :class:`~repro.sim.network.SimNetwork`.

The base network implements the paper's benign model: reliable FIFO
channels where partitions *delay* rather than drop.  Everything beyond
crash-stop -- probabilistic loss, duplication, reorder/jitter, payload
corruption, asymmetric (one-way) partitions, heal storms -- lives here,
behind a single hook in ``SimNetwork.transmit``.  A network without a
plane installed pays nothing (one attribute check per send) and behaves
byte-identically to the benign model.

Composition model
-----------------

* **Policies** (:class:`LinkFaultPolicy`) are matched per message by
  ``(src, dst, payload-kind)`` patterns, first match wins; ``"*"``
  matches anything.  The payload kind set of a message includes its
  class name, and -- reaching through :class:`~repro.broadcast.reliable.RMsg`
  wrappers -- the inner class name plus the operation kind of a
  :class:`~repro.core.messages.Request` (e.g. ``"mig_install"``), so a
  policy can target exactly one protocol step.
* **One-way blocks** (:meth:`FaultPlane.block`) hold every matching
  ``src -> dst`` message (not matched messages in the other direction:
  this is the *asymmetric* partition crash-stop chaos can never
  produce).  :meth:`FaultPlane.heal` releases everything held in one
  instant -- the heal *storm* -- bypassing the FIFO floor so the burst
  genuinely arrives interleaved.
* **Rewrites** are targeted payload transformations (the equivocation
  scenarios swap rids inside one ``SeqOrder``); they run *before* the
  wire checksum is stamped, because a Byzantine sender computes a valid
  checksum for whatever it sends, unlike line noise.
* **Corruption** wraps the payload *after* the checksum is stamped, so
  the receiving network detects the mismatch and drops the message
  (traced ``msg_corrupt_drop``) instead of delivering garbage to the
  protocol.

Every injected fault is counted *and* traced (``msg_drop``, ``msg_dup``,
``msg_corrupt``, ``msg_jitter``, ``msg_held``, ``msg_rewrite``,
``heal_storm``); :func:`repro.analysis.checkers.check_fault_plane_accounting`
cross-checks the two so a fault can never silently vanish.

All randomness draws from ``sim.child_rng("faultplane")``: runs stay
deterministic per seed, and installing a plane never perturbs the RNG
streams of the processes or the latency model.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network hooks us)
    from repro.sim.network import Envelope, SimNetwork

#: Rewrite signature: ``(src, dst, payload) -> replacement | None``.
#: Returning ``None`` leaves the payload untouched.
RewriteHook = Callable[[str, str, Any], Optional[Any]]


def wire_checksum(payload: Any) -> int:
    """The lightweight wire checksum: CRC-32 of the payload's repr.

    Every wire message in the repo has a faithful ``repr`` (the trace
    digests already depend on that), so repr equality is payload
    equality for checksum purposes -- no serialization layer needed in
    a simulator.
    """
    return zlib.crc32(repr(payload).encode())


class CorruptedPayload:
    """A payload mangled in flight (bit-rot stand-in).

    Wrapping (rather than mutating) keeps the original intact for
    accounting: the checker can re-verify that every corrupt message
    was either dropped at delivery or is still held somewhere.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:
        return f"CorruptedPayload({self.original!r})"


@dataclass(frozen=True)
class LinkFaultPolicy:
    """Per-message fault probabilities for one matched link/kind.

    ``drop``/``duplicate``/``corrupt``/``jitter`` are independent
    probabilities in [0, 1].  Duplication creates one extra copy; each
    copy then independently rolls drop/corrupt/jitter (a duplicated
    message can lose one copy and corrupt the other).  ``jitter`` adds
    ``uniform(0, jitter_span)`` to the one-way delay *and bypasses the
    FIFO floor*, so jittered messages genuinely reorder against their
    channel -- the burst-reorder fault FIFO channels otherwise forbid.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    jitter: float = 0.0
    jitter_span: float = 5.0

    def __post_init__(self) -> None:
        for field in ("drop", "duplicate", "corrupt", "jitter"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} must be a probability, got {value}")
        if self.jitter_span < 0.0:
            raise ValueError(f"jitter_span must be >= 0, got {self.jitter_span}")


def payload_kinds(payload: Any) -> Set[str]:
    """The kind names a policy pattern can match for one payload.

    Includes the payload class name; for R-multicast envelopes also the
    wrapped payload's class name, and for requests the operation kind
    (``op[0]``), so policies can target e.g. every ``"mig_install"``
    regardless of which relay leg carries it.
    """
    kinds = {type(payload).__name__}
    inner = getattr(payload, "payload", None)
    if inner is not None and type(payload).__name__ == "RMsg":
        kinds.add(type(inner).__name__)
        payload = inner
    op = getattr(payload, "op", None)
    if isinstance(op, tuple) and op and isinstance(op[0], str):
        kinds.add(op[0])
    return kinds


class FaultPlane:
    """The per-link fault injector installed on a :class:`SimNetwork`.

    Construct via ``network.ensure_fault_plane()`` (idempotent) rather
    than directly; the network routes every post-interceptor send
    through :meth:`process` once a plane is installed.
    """

    def __init__(self, network: "SimNetwork") -> None:
        self.network = network
        self.rng = network.sim.child_rng("faultplane")
        #: First-match-wins policy rules: (src, dst, kind, policy).
        self._rules: List[Tuple[str, str, str, LinkFaultPolicy]] = []
        self._rewrites: List[RewriteHook] = []
        #: One-way blocked links; "*" wildcards either side.
        self._blocked: Set[Tuple[str, str]] = set()
        self._held: List["Envelope"] = []
        self._checksums = False
        # Fault accounting (cross-checked against the trace by
        # check_fault_plane_accounting).
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.jittered = 0
        self.held = 0
        self.released = 0
        self.rewritten = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def add_policy(
        self,
        policy: LinkFaultPolicy,
        src: str = "*",
        dst: str = "*",
        kind: str = "*",
    ) -> None:
        """Match ``(src, dst, kind)`` messages (first added rule wins)."""
        self._rules.append((src, dst, kind, policy))
        if policy.corrupt > 0.0:
            # Checksums are stamped on *every* message once any policy
            # can corrupt: a corrupt message must be detectable no
            # matter which rule it matched.
            self._checksums = True

    def add_rewrite(self, hook: RewriteHook) -> None:
        """Install a targeted payload rewrite (runs before checksums)."""
        self._rewrites.append(hook)

    def block(self, src: str, dst: str) -> None:
        """One-way partition: hold every ``src -> dst`` message."""
        self._blocked.add((src, dst))
        trace = self.network.trace
        if trace.enabled:
            trace.record(
                self.network.sim.now, "*faultplane*", "oneway_block",
                src=src, dst=dst,
            )

    def block_links(self, pairs: Iterable[Tuple[str, str]]) -> None:
        for src, dst in pairs:
            self.block(src, dst)

    def unblock(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))

    def heal(self) -> None:
        """Drop all one-way blocks and release held traffic in one storm.

        Every held message is scheduled *now*, in send order but with
        the FIFO floor bypassed: the receiver sees the whole backlog
        land in one latency window, interleaved with live traffic --
        the reconnection burst that shakes out fragile dedup paths.
        """
        self._blocked.clear()
        held, self._held = self._held, []
        held.sort(key=lambda envelope: envelope.seq)
        self.released += len(held)
        dispatch = self.network._dispatch_from_plane
        for envelope in held:
            dispatch(envelope, 0.0, False)
        trace = self.network.trace
        if trace.enabled:
            trace.record(
                self.network.sim.now, "*faultplane*", "heal_storm",
                released=len(held),
            )

    @property
    def pending_held(self) -> int:
        """Messages currently held by one-way blocks."""
        return len(self._held)

    def held_envelopes(self) -> List["Envelope"]:
        """The currently held envelopes (accounting checker introspection)."""
        return list(self._held)

    def stats(self) -> dict:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "jittered": self.jittered,
            "held": self.held,
            "released": self.released,
            "rewritten": self.rewritten,
            "pending_held": len(self._held),
        }

    # ------------------------------------------------------------------
    # The per-message path (called by SimNetwork.transmit)
    # ------------------------------------------------------------------

    def _blocked_link(self, src: str, dst: str) -> bool:
        blocked = self._blocked
        if not blocked:
            return False
        return (
            (src, dst) in blocked
            or (src, "*") in blocked
            or ("*", dst) in blocked
        )

    def _match(self, src: str, dst: str, payload: Any) -> Optional[LinkFaultPolicy]:
        kinds: Optional[Set[str]] = None
        for rule_src, rule_dst, rule_kind, policy in self._rules:
            if rule_src != "*" and rule_src != src:
                continue
            if rule_dst != "*" and rule_dst != dst:
                continue
            if rule_kind != "*":
                if kinds is None:
                    kinds = payload_kinds(payload)
                if rule_kind not in kinds:
                    continue
            return policy
        return None

    def process(self, envelope: "Envelope") -> None:
        """Apply rewrites, checksums, blocks, and the matched policy."""
        network = self.network
        trace = network.trace
        traced = trace.enabled
        now = network.sim.now
        src, dst = envelope.src, envelope.dst
        if self._rewrites:
            for hook in self._rewrites:
                replacement = hook(src, dst, envelope.payload)
                if replacement is not None:
                    envelope.payload = replacement
                    self.rewritten += 1
                    if traced:
                        trace.record(
                            now, src, "msg_rewrite",
                            dst=dst, payload=replacement,
                        )
        # The checksum covers what the sender *sent* (post-rewrite: a
        # Byzantine sender signs its own lie); line-noise corruption
        # below deliberately does not re-stamp.
        if self._checksums:
            envelope.checksum = wire_checksum(envelope.payload)
        if self._blocked_link(src, dst):
            self._held.append(envelope)
            self.held += 1
            if traced:
                trace.record(
                    now, src, "msg_held", dst=dst, payload=envelope.payload
                )
            return
        policy = self._match(src, dst, envelope.payload)
        dispatch = network._dispatch_from_plane
        if policy is None:
            dispatch(envelope, 0.0, True)
            return
        rng = self.rng
        copies = [envelope]
        if policy.duplicate > 0.0 and rng.random() < policy.duplicate:
            from repro.sim.network import Envelope as _Envelope

            clone = _Envelope(
                next(network._seq), src, dst, envelope.payload,
                envelope.send_time,
            )
            clone.checksum = envelope.checksum
            copies.append(clone)
            self.duplicated += 1
            if traced:
                trace.record(now, src, "msg_dup", dst=dst, payload=envelope.payload)
        for copy in copies:
            if policy.drop > 0.0 and rng.random() < policy.drop:
                self.dropped += 1
                if traced:
                    trace.record(now, src, "msg_drop", dst=dst, payload=copy.payload)
                continue
            if policy.corrupt > 0.0 and rng.random() < policy.corrupt:
                copy.payload = CorruptedPayload(copy.payload)
                self.corrupted += 1
                if traced:
                    trace.record(
                        now, src, "msg_corrupt", dst=dst, payload=copy.payload
                    )
            extra = 0.0
            fifo = True
            if policy.jitter > 0.0 and rng.random() < policy.jitter:
                extra = rng.uniform(0.0, policy.jitter_span)
                fifo = False
                self.jittered += 1
                if traced:
                    trace.record(
                        now, src, "msg_jitter",
                        dst=dst, extra=extra, payload=copy.payload,
                    )
            dispatch(copy, extra, fifo)


def install_uniform_faults(
    network: "SimNetwork",
    drop: float = 0.0,
    duplicate: float = 0.0,
    corrupt: float = 0.0,
    jitter: float = 0.0,
    jitter_span: float = 5.0,
    kind: str = "*",
) -> FaultPlane:
    """Install one policy on every link (the chaos/benchmark helper)."""
    plane = network.ensure_fault_plane()
    plane.add_policy(
        LinkFaultPolicy(
            drop=drop,
            duplicate=duplicate,
            corrupt=corrupt,
            jitter=jitter,
            jitter_span=jitter_span,
        ),
        kind=kind,
    )
    return plane
