"""Deterministic discrete-event simulation substrate.

This package provides the asynchronous-system model of the paper (Section 3):
processes that communicate by message passing over reliable FIFO channels,
with crash failures and (transient) partitions.  Everything is driven by a
deterministic event loop with a seeded random number generator, so every run
is reproducible bit-for-bit.

The main entry points are:

* :class:`~repro.sim.loop.Simulator` -- the event loop (clock, timers, RNG).
* :class:`~repro.sim.network.SimNetwork` -- reliable FIFO channels between
  registered processes, with latency models, partitions and crash injection.
* :class:`~repro.sim.process.Process` -- base class for protocol actors.
* :class:`~repro.sim.process.ProcessEnv` -- the narrow environment interface
  protocol cores are written against (also implemented by the asyncio
  runtime in :mod:`repro.runtime`).
"""

from repro.sim.latency import (
    ConstantLatency,
    LanProfile,
    LatencyModel,
    NormalLatency,
    PerLinkLatency,
    UniformLatency,
)
from repro.sim.loop import Simulator, TimerHandle
from repro.sim.network import Envelope, SimNetwork
from repro.sim.process import Process, ProcessEnv
from repro.sim.trace import NullTrace, TraceEvent, TraceLog

__all__ = [
    "ConstantLatency",
    "Envelope",
    "LanProfile",
    "LatencyModel",
    "NormalLatency",
    "NullTrace",
    "PerLinkLatency",
    "Process",
    "ProcessEnv",
    "SimNetwork",
    "Simulator",
    "TimerHandle",
    "TraceEvent",
    "TraceLog",
    "UniformLatency",
]
