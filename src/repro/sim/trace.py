"""Structured trace events.

Every protocol-relevant action (Opt-deliver, A-deliver, Opt-undeliver,
reply adoption, consensus decision, ...) is recorded as a
:class:`TraceEvent`.  The correctness checkers in :mod:`repro.analysis`
operate purely on these traces, which keeps them independent of protocol
internals and lets them validate both the simulator and the asyncio
runtime.

Two performance features keep tracing off the hot path:

* **Kind index** -- :class:`TraceLog` maintains a per-kind position index
  so ``events(kind=...)`` is O(matches) instead of O(log length).  The
  checkers issue dozens of kind-filtered queries per run; on large traces
  the index turns quadratic checker passes into linear ones.
* **Level gate** -- ``TraceLog(level="off")`` (or the :class:`NullTrace`
  singleton-style subclass) drops every record at the door.  Soak runs
  and throughput benchmarks run with tracing off; checker-backed tests
  keep the default full-fidelity log.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from heapq import merge as _heapq_merge
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: Recognized trace levels: "full" records everything, "off" records
#: nothing (zero-waste mode for soak/throughput runs).
TRACE_LEVELS = ("full", "off")


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, structured event emitted by a process."""

    time: float
    pid: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time:.3f}] {self.pid} {self.kind}({parts})"


class TraceLog:
    """An append-only log of :class:`TraceEvent` with filtering helpers.

    Parameters
    ----------
    level:
        ``"full"`` (default) records everything; ``"off"`` silently drops
        every record/append -- the log stays empty and costs nothing on
        the protocol hot path.
    """

    def __init__(self, level: str = "full") -> None:
        if level not in TRACE_LEVELS:
            raise ValueError(f"unknown trace level: {level} (choose from {TRACE_LEVELS})")
        self._events: List[TraceEvent] = []
        self._by_kind: Dict[str, List[int]] = {}
        self._level = level
        if level == "off":
            # Shadow the hot-path methods with no-ops so a disabled log
            # costs one dropped call, not a branch per record.
            self.append = self._drop_append  # type: ignore[method-assign]
            self.record = self._drop_record  # type: ignore[method-assign]

    @property
    def level(self) -> str:
        return self._level

    @property
    def enabled(self) -> bool:
        """True when this log records events."""
        return self._level != "off"

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def append(self, event: TraceEvent) -> None:
        events = self._events
        index = self._by_kind.get(event.kind)
        if index is None:
            index = self._by_kind[event.kind] = []
        index.append(len(events))
        events.append(event)

    def record(self, time: float, pid: str, kind: str, **fields: Any) -> None:
        events = self._events
        index = self._by_kind.get(kind)
        if index is None:
            index = self._by_kind[kind] = []
        index.append(len(events))
        events.append(TraceEvent(time, pid, kind, fields))

    def _drop_append(self, event: TraceEvent) -> None:
        """append() of a level="off" log."""

    def _drop_record(self, time: float, pid: str, kind: str, **fields: Any) -> None:
        """record() of a level="off" log."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        pid: Optional[str] = None,
    ) -> List[TraceEvent]:
        """All events, optionally filtered by kind and/or process.

        Kind-filtered queries use the kind index: O(matching events),
        independent of the total log length.
        """
        events = self._events
        if kind is not None:
            positions = self._by_kind.get(kind, ())
            if pid is None:
                return [events[i] for i in positions]
            return [events[i] for i in positions if events[i].pid == pid]
        if pid is not None:
            return [e for e in events if e.pid == pid]
        return list(events)

    def events_of_kinds(
        self,
        kinds: Sequence[str],
        pid: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events of any of ``kinds``, in log order, via the kind index.

        O(matches · log len(kinds)): the per-kind position lists are
        merged, never the full log scanned.  This is what lets the
        checkers replay delivery histories on long traces cheaply.
        """
        by_kind = self._by_kind
        position_lists = [by_kind[k] for k in kinds if k in by_kind]
        if not position_lists:
            return []
        if len(position_lists) == 1:
            positions: Any = position_lists[0]
        else:
            positions = _heapq_merge(*position_lists)
        events = self._events
        if pid is None:
            return [events[i] for i in positions]
        return [events[i] for i in positions if events[i].pid == pid]

    def count(self, kind: str) -> int:
        """Number of events of ``kind`` (O(1) via the index)."""
        return len(self._by_kind.get(kind, ()))

    def kinds(self) -> List[str]:
        """Distinct event kinds present, in first-seen order."""
        return list(self._by_kind)

    def clear(self) -> None:
        self._events.clear()
        self._by_kind.clear()

    def digest(self) -> str:
        """A canonical SHA-256 over (time, pid, kind, sorted fields).

        Two runs are byte-identical exactly when their digests match;
        the determinism tests pin fixed-seed scenarios to golden digests
        across kernel changes.
        """
        h = hashlib.sha256()
        for event in self._events:
            line = "%r|%s|%s|%r\n" % (
                event.time,
                event.pid,
                event.kind,
                sorted(event.fields.items()),
            )
            h.update(line.encode())
        return h.hexdigest()

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering (for debugging and example scripts)."""
        events = self._events if limit is None else self._events[:limit]
        return "\n".join(repr(e) for e in events)


class NullTrace(TraceLog):
    """A :class:`TraceLog` that drops everything (``level="off"``).

    Exists so call sites can say ``NullTrace()`` instead of the stringly
    ``TraceLog(level="off")``; both behave identically.
    """

    def __init__(self) -> None:
        super().__init__(level="off")
