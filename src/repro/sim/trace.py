"""Structured trace events.

Every protocol-relevant action (Opt-deliver, A-deliver, Opt-undeliver,
reply adoption, consensus decision, ...) is recorded as a
:class:`TraceEvent`.  The correctness checkers in :mod:`repro.analysis`
operate purely on these traces, which keeps them independent of protocol
internals and lets them validate both the simulator and the asyncio
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, structured event emitted by a process."""

    time: float
    pid: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time:.3f}] {self.pid} {self.kind}({parts})"


class TraceLog:
    """An append-only log of :class:`TraceEvent` with filtering helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self._events.append(event)

    def record(self, time: float, pid: str, kind: str, **fields: Any) -> None:
        self._events.append(TraceEvent(time, pid, kind, fields))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        pid: Optional[str] = None,
    ) -> List[TraceEvent]:
        """All events, optionally filtered by kind and/or process."""
        result = self._events
        if kind is not None:
            result = [e for e in result if e.kind == kind]
        if pid is not None:
            result = [e for e in result if e.pid == pid]
        return list(result)

    def kinds(self) -> List[str]:
        """Distinct event kinds present, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.kind, None)
        return list(seen)

    def clear(self) -> None:
        self._events.clear()

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering (for debugging and example scripts)."""
        events = self._events if limit is None else self._events[:limit]
        return "\n".join(repr(e) for e in events)
