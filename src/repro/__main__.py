"""Command-line entry point: ``python -m repro [command]``.

Commands:

* ``figures``  -- replay the paper's Figures 1(a/b), 2, 3, 4 and print
  each outcome with an ASCII space-time diagram.
* ``compare``  -- the failure-free latency / crash-consistency scoreboard
  of all four protocols (a compact B1+B2).
* ``demo``     -- a quick OAR run with full property verification.
* ``all``      -- everything above (default).

The full experiment suite with report files lives in ``benchmarks/``
(run ``pytest benchmarks/ --benchmark-only``); this entry point is the
zero-setup tour.
"""

from __future__ import annotations

import sys

from repro import ScenarioConfig, run_scenario
from repro.analysis import checkers
from repro.analysis.stats import summarize
from repro.analysis.timeline import render_timeline
from repro.faults import FaultSchedule
from repro.harness.figures import (
    run_figure_1a,
    run_figure_1b,
    run_figure_1b_with_oar,
    run_figure_2,
    run_figure_3,
    run_figure_4,
)
from repro.harness.tables import Table


def heading(text: str) -> None:
    """Print a section banner."""
    print(f"\n{'=' * 70}\n{text}\n{'=' * 70}")


def cmd_demo() -> None:
    """A quick OAR run with full property verification."""
    heading("Demo: 3 OAR replicas, 2 clients, 20 requests, seed 42")
    run = run_scenario(
        ScenarioConfig(n_servers=3, n_clients=2, requests_per_client=10, seed=42)
    )
    run.check_all()
    stats = summarize(run.latencies())
    print(f"adoptions: {len(run.adopted())}   latency: {stats.row()}")
    print("all paper guarantees verified (Propositions 1-7, Cnsv-order spec)")


def cmd_figures() -> None:
    """Replay Figures 1(a/b), 2, 3 and 4 with ASCII diagrams."""
    heading("Figure 1(a): sequencer ABcast, good run")
    fig1a = run_figure_1a()
    print(f"client adopted pop -> "
          f"{fig1a.adopted()['c2-0'].value.value!r}; group agrees; "
          f"inconsistencies: "
          f"{checkers.count_baseline_inconsistencies(fig1a.trace, fig1a.correct_servers)}")

    heading("Figure 1(b): sequencer ABcast, inconsistent run")
    fig1b = run_figure_1b()
    bad = checkers.count_baseline_inconsistencies(
        fig1b.trace, fig1b.correct_servers
    )
    print(f"client adopted pop -> {fig1b.adopted()['c2-0'].value.value!r} "
          f"from the crashed sequencer; survivors' pop returned 'x'")
    print(f"client-visible inconsistencies: {bad}")

    oar1b = run_figure_1b_with_oar()
    print(f"same crash under OAR: client adopts "
          f"{oar1b.adopted()['c2-0'].value.value!r} (consistent); "
          f"inconsistencies: "
          f"{checkers.count_baseline_inconsistencies(oar1b.trace, oar1b.correct_servers)}")

    heading("Figure 2: OAR, no failure nor suspicion")
    fig2 = run_figure_2()
    print(render_timeline(fig2.trace, ["p1", "p2", "p3"], width=64,
                          start=0.0, end=10.0))

    heading("Figure 3: sequencer crash, no Opt-undelivery")
    fig3 = run_figure_3()
    print(render_timeline(fig3.trace, ["p1", "p2", "p3"], width=64,
                          start=0.0, end=25.0))

    heading("Figure 4: sequencer crash WITH Opt-undelivery at p2")
    fig4 = run_figure_4()
    print(render_timeline(fig4.trace, ["p1", "p2", "p3", "p4"], width=64,
                          start=0.0, end=60.0))
    print(f"\np2 rolled back {fig4.opt_undelivered('p2')} and re-delivered "
          f"in the agreed order; clients adopted only consistent replies.")


def cmd_compare() -> None:
    """Latency/consistency scoreboard of the four protocols."""
    heading("Protocol scoreboard (3 replicas, 20 requests, crash at t=10)")
    table = Table(
        "failure-free latency and crash consistency",
        ["protocol", "clean latency", "finished after crash", "inconsistent"],
    )
    for protocol, label in [
        ("sequencer", "sequencer ABcast"),
        ("oar", "OAR (this paper)"),
        ("passive", "primary-backup"),
        ("ct", "consensus ABcast"),
    ]:
        clean = run_scenario(
            ScenarioConfig(protocol=protocol, requests_per_client=10, seed=11)
        )
        crashed = run_scenario(
            ScenarioConfig(
                protocol=protocol,
                n_clients=2,
                requests_per_client=8,
                fd_interval=1.5,
                fd_timeout=5.0,
                fault_schedule=FaultSchedule().crash(10.0, "p1"),
                grace=250.0,
                seed=11,
            )
        )
        table.add_row(
            label,
            summarize(clean.latencies()).mean,
            "yes" if crashed.all_done() else "NO",
            checkers.count_baseline_inconsistencies(
                crashed.trace, crashed.correct_servers
            ),
        )
    print(table.render())


COMMANDS = {
    "demo": cmd_demo,
    "figures": cmd_figures,
    "compare": cmd_compare,
}


def main(argv: list) -> int:
    """Entry point: dispatch on the (optional) command argument."""
    command = argv[1] if len(argv) > 1 else "all"
    if command == "all":
        for name in ("demo", "figures", "compare"):
            COMMANDS[name]()
        return 0
    handler = COMMANDS.get(command)
    if handler is None:
        print(__doc__)
        return 0 if command in ("-h", "--help", "help") else 1
    handler()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
