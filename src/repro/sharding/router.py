"""Deterministic key -> shard routing.

The router is the one piece of the sharded architecture every party must
agree on -- clients route requests with it, the cluster builder places
bank accounts with it, and the atomicity checker re-derives placements
from it.  Routing therefore has to be a pure function of the key that is
stable *across processes and Python invocations*: the hash strategy uses
SHA-1 of the key's UTF-8 encoding, never the interpreter's salted
``hash()``.

Two strategies are provided:

* :class:`HashShardRouter` -- uniform placement, oblivious to key
  semantics; the default.
* :class:`RangeShardRouter` -- ordered placement by boundary keys, the
  building block for range scans and locality-aware placement.

On top of either strategy sits the :class:`RoutingTable`: an
**epoch-versioned** routing view that overlays per-key overrides (the
result of live migrations, ``repro.sharding.rebalance``) on the static
base router.  The cluster holds one *authoritative* table, mutated only
by the rebalance coordinator when a migration commits; every client
holds a cheap *copy* that may go stale.  Staleness is safe: a shard that
no longer owns a key answers with a deterministic ``WrongShard`` result,
and the client re-syncs its copy from the authority and retries (the
epoch number makes "did anything change since I last looked?" a single
integer compare).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple


class ShardRouter:
    """Base class: map every key to one of ``n_shards`` shard indexes."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def shard_of(self, key: Any) -> int:
        """The shard index of ``key``; deterministic across processes."""
        raise NotImplementedError

    def placement(self, keys: Sequence[Any]) -> Tuple[Tuple[Any, ...], ...]:
        """Partition ``keys`` by shard: a tuple of per-shard key tuples."""
        shards: Tuple[list, ...] = tuple([] for _ in range(self.n_shards))
        for key in keys:
            shards[self.shard_of(key)].append(key)
        return tuple(tuple(shard) for shard in shards)


class HashShardRouter(ShardRouter):
    """SHA-1 of the key's string form, modulo the shard count.

    Any key with a stable ``str()`` works, including the empty string
    (``str`` keys are used verbatim so ``"1"`` and ``1`` route
    identically only if their string forms agree -- keys should be
    strings in practice).
    """

    def shard_of(self, key: Any) -> int:
        digest = hashlib.sha1(str(key).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.n_shards

    def __repr__(self) -> str:
        return f"HashShardRouter(n_shards={self.n_shards})"


class RangeShardRouter(ShardRouter):
    """Route by key order: shard i owns keys in [boundaries[i-1], boundaries[i]).

    ``boundaries`` are the ``n_shards - 1`` split points, sorted
    ascending; keys below the first boundary go to shard 0, keys at or
    above the last go to the final shard.  Keys must be mutually
    comparable with the boundaries (strings with strings, etc.).
    """

    def __init__(self, n_shards: int, boundaries: Sequence[Any]) -> None:
        super().__init__(n_shards)
        if len(boundaries) != n_shards - 1:
            raise ValueError(
                f"{n_shards} shards need {n_shards - 1} boundaries, "
                f"got {len(boundaries)}"
            )
        ordered = list(boundaries)
        if ordered != sorted(ordered):
            raise ValueError(f"boundaries must be sorted: {boundaries!r}")
        self.boundaries: Tuple[Any, ...] = tuple(ordered)

    def shard_of(self, key: Any) -> int:
        return bisect.bisect_right(self.boundaries, key)

    def __repr__(self) -> str:
        return (
            f"RangeShardRouter(n_shards={self.n_shards}, "
            f"boundaries={self.boundaries!r})"
        )


class RoutingTable(ShardRouter):
    """An epoch-versioned routing view: base router + per-key overrides.

    ``epoch`` starts at 0 and is bumped by every committed key move, so
    two views agree exactly when their epochs agree (overrides are only
    ever copied whole from the authority).  A table with no overrides
    routes identically to its base router, which keeps the epoch-0
    placement equal to the static placement the cluster was built with.

    Beyond per-key moves, the table records **hot-key splits**
    (``repro.statemachine.base.SplittableMachine``): ``splits`` maps a
    logical key to the ordered tuple of its ``(fragment_key, shard)``
    placements.  Fragments ride the same epoch -- a client that syncs for
    any reason also learns every split -- and ``shard_of`` on a fragment
    key resolves through overrides like any other key, so fragments can
    themselves later migrate.
    """

    def __init__(
        self,
        base: ShardRouter,
        overrides: Optional[Mapping[Any, int]] = None,
        epoch: int = 0,
        splits: Optional[Mapping[Any, Tuple[Tuple[Any, int], ...]]] = None,
    ) -> None:
        super().__init__(base.n_shards)
        self.base = base
        self.overrides: Dict[Any, int] = dict(overrides or {})
        self.epoch = epoch
        self.splits: Dict[Any, Tuple[Tuple[Any, int], ...]] = dict(splits or {})

    def shard_of(self, key: Any) -> int:
        shard = self.overrides.get(key)
        if shard is not None:
            return shard
        return self.base.shard_of(key)

    def move(self, key: Any, dst: int) -> int:
        """Commit a key move (authority side); returns the new epoch.

        Only the rebalance coordinator calls this, and only *after* the
        key's state is installed on ``dst`` -- a table must never point
        at a shard that cannot serve the key.
        """
        if not 0 <= dst < self.n_shards:
            raise ValueError(f"destination shard {dst} out of range")
        self.overrides[key] = dst
        self.epoch += 1
        return self.epoch

    # -- hot-key splits -------------------------------------------------

    def split(self, key: Any, placements: Sequence[Tuple[Any, int]]) -> int:
        """Commit a key split (authority side); returns the new epoch.

        ``placements`` is the ordered ``(fragment_key, shard)`` plan.
        Like :meth:`move`, this is called only after every fragment's
        state is installed where the plan says -- a single epoch bump
        then flips clients from logical-key routing to fragment routing
        atomically.
        """
        if key in self.splits:
            raise ValueError(f"{key!r} is already split")
        placements = tuple((frag, int(shard)) for frag, shard in placements)
        if len(placements) < 2:
            raise ValueError("a split needs at least two fragments")
        for frag, shard in placements:
            if not 0 <= shard < self.n_shards:
                raise ValueError(f"fragment shard {shard} out of range")
            self.overrides[frag] = shard
        self.splits[key] = placements
        self.epoch += 1
        return self.epoch

    def unsplit(self, key: Any, home: int) -> int:
        """Commit a merge: drop the split, route ``key`` to ``home``."""
        placements = self.splits.pop(key, None)
        if placements is None:
            raise ValueError(f"{key!r} is not split")
        for frag, _shard in placements:
            self.overrides.pop(frag, None)
        return self.move(key, home)

    def fragments_of(self, key: Any) -> Optional[Tuple[Tuple[Any, int], ...]]:
        """The committed ``(fragment, shard)`` plan of ``key``, or None."""
        return self.splits.get(key)

    def copy(self) -> "RoutingTable":
        """An independent snapshot (a client's possibly-stale view)."""
        return RoutingTable(self.base, self.overrides, self.epoch, self.splits)

    def sync_from(self, authority: "RoutingTable") -> bool:
        """Catch up with the authority; returns True if anything changed."""
        if authority.epoch == self.epoch:
            return False
        self.overrides = dict(authority.overrides)
        self.splits = dict(authority.splits)
        self.epoch = authority.epoch
        return True

    def __repr__(self) -> str:
        return (
            f"RoutingTable(base={self.base!r}, epoch={self.epoch}, "
            f"moves={len(self.overrides)}, splits={len(self.splits)})"
        )


def make_router(
    kind: str,
    n_shards: int,
    key_universe: Optional[Sequence[Any]] = None,
) -> ShardRouter:
    """Build a router by name; ``range`` derives even boundaries from
    the sorted ``key_universe`` (required for that strategy)."""
    if kind == "hash":
        return HashShardRouter(n_shards)
    if kind == "range":
        if n_shards == 1:
            return RangeShardRouter(1, ())
        if not key_universe:
            raise ValueError("range routing needs a key universe")
        ordered = sorted(key_universe)
        step = len(ordered) / n_shards
        boundaries = [ordered[int(step * i)] for i in range(1, n_shards)]
        return RangeShardRouter(n_shards, boundaries)
    raise ValueError(f"unknown router kind: {kind} (choose from hash, range)")
