"""A sharded OAR deployment: N independent replication groups, one service.

The paper's protocol totally orders *all* requests through a single
sequencer, which caps throughput at one ordering pipeline.  The sharded
cluster partitions the state machine by key (``repro.sharding.router``)
and runs one full OAR group -- its own sequencer, replicas, undo logs,
failure detectors and epochs -- per shard, all hosted on one
deterministic simulator so every existing checker and fault-injection
tool applies unchanged.

Consistency contract:

* per shard, everything the paper guarantees (total order, at-most/least
  once, external consistency of adopted replies);
* across shards, *atomicity* of multi-key operations via the client-
  coordinated escrow 2PC (see :class:`~repro.core.client.ShardedOARClient`
  and the ``tx_*`` operations of
  :class:`~repro.statemachine.bank.BankMachine`) -- checked by
  :func:`~repro.analysis.checkers.check_cross_shard_atomicity`.

There is deliberately *no* global order across shards: operations on
different shards are independent, which is exactly why throughput scales
(cf. Optimistic Parallel State-Machine Replication, Marandi & Pedone
2014).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis import checkers
from repro.core.admission import TokenBucket
from repro.core.client import ShardedOARClient
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import (
    FailureDetector,
    HeartbeatFailureDetector,
    ScriptedFailureDetector,
)
from repro.faults.injection import FaultSchedule
from repro.sharding.router import RoutingTable, ShardRouter, make_router
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.process import Process
from repro.sim.trace import TraceLog
from repro.statemachine import (
    BankMachine,
    CounterMachine,
    KVStoreMachine,
    SplittableMachine,
    StackMachine,
    StateMachine,
)
from repro.workload.drivers import ClosedLoopDriver, OpenLoopDriver
from repro.workload.openloop import PoissonProcess, SessionedOpenLoopDriver
from repro.workload.generators import (
    counter_ops,
    cross_shard_bank_ops,
    hot_key_bank_ops,
    hot_shift_kv_ops,
    kv_ops,
    read_heavy_bank_ops,
    read_heavy_kv_ops,
    stack_ops,
    zipfian_kv_ops,
)

SHARDED_MACHINES = ("kv", "bank", "counter", "stack")
WORKLOADS = ("uniform", "zipf", "hotshift", "cross", "readheavy", "hotkey")

#: Machines with per-key state: their sharded deployments carry the
#: key-ownership books and support live migration + the migration
#: atomicity checker.
MIGRATABLE_MACHINES = ("kv", "bank")


@dataclass
class ShardedScenarioConfig:
    """Everything needed to reproduce one sharded experiment run."""

    n_shards: int = 2
    n_servers: int = 3  #: replicas *per shard*
    n_clients: int = 2
    requests_per_client: int = 20
    machine: str = "kv"
    router: str = "hash"  #: "hash" or "range"
    seed: int = 0

    #: Workload family: "uniform" (kv over a flat key universe), "zipf"
    #: (kv, skewed), "hotshift" (kv, skewed with a hotspot that moves
    #: across the key space every ``shift_every`` ops -- the live-
    #: rebalancing stress), "cross" (bank transfers, cross-shard mix),
    #: "readheavy" (kv or bank, Zipf-skewed, ``read_ratio`` reads --
    #: the replica-local read-path mix of benchmark B12), "hotkey"
    #: (bank deposits/withdrawals/balances with ``hot_ratio`` of all
    #: traffic on one account -- the key-splitting stress of B14; its
    #: deposits break money-supply conservation, so the run swaps the
    #: conserved-total checks for ``check_fragment_conservation``).
    workload: str = "uniform"
    n_keys: int = 32
    zipf_s: float = 1.2
    shift_every: int = 150
    cross_ratio: float = 0.3
    read_ratio: float = 0.9
    hot_ratio: float = 0.8
    accounts_per_shard: int = 4
    initial_balance: int = 1_000

    #: How clients execute read-only operations: None defers to
    #: ``oar.read_mode`` ("sequencer" orders reads like writes;
    #: "optimistic" / "conservative" answer replica-locally).
    read_mode: Optional[str] = None

    #: Replica execution service model overrides: None defers to
    #: ``oar.exec_cost`` / ``oar.exec_lanes`` (free inline execution).
    exec_cost: Optional[float] = None
    exec_lanes: Optional[int] = None

    #: Half-life of the clients' per-key load counters (the rebalance
    #: planner's statistic); None disables decay (all-time totals).
    load_half_life: Optional[float] = 250.0

    #: Pause before a WrongShard-redirected operation is retried (covers
    #: the window where a migrating key is owned by no shard).
    redirect_delay: float = 5.0

    #: Redirect budget per logical operation; once spent the WrongShard
    #: error is surfaced as a terminal adoption.
    max_redirects: int = 100

    latency: Optional[LatencyModel] = None
    fd_kind: str = "heartbeat"
    fd_interval: float = 5.0
    fd_timeout: float = 15.0
    oar: OARConfig = field(default_factory=OARConfig)

    driver: str = "closed"
    open_rate: float = 0.2
    think_time: float = 0.0
    #: Simulated time at which the drivers begin submitting.  A warm-up
    #: window lets pre-arranged topology work (scheduled migrations or
    #: key splits via ``arm``) commit before traffic measures against
    #: it, instead of queueing stale-routed requests behind the change.
    driver_start_at: float = 0.0
    retry_interval: Optional[float] = None

    #: "session" driver knobs (the overload harness, see
    #: ``repro.workload.openloop``): the arrival process (None = Poisson
    #: at ``open_rate``), sessions per client, the client-side token
    #: bucket (``client_rate`` None disables throttling), and the
    #: warm-up cut for the latency recorder.
    arrival: Optional[Any] = None
    n_sessions: int = 64
    client_rate: Optional[float] = None
    client_burst: float = 8.0
    measure_from: float = 0.0
    #: Admission-control overrides: None defers to the ``oar`` config
    #: (default: disabled; see ``OARConfig.admission_limit``).
    admission_limit: Optional[int] = None
    read_queue_limit: Optional[int] = None

    fault_schedule: Optional[FaultSchedule] = None

    #: Link-fault-plane installer; called with the built
    #: :class:`~repro.sim.network.SimNetwork` right after construction.
    faults: Optional[Callable[[SimNetwork], None]] = None

    arm: Optional[Callable[["ShardedRun"], None]] = None

    horizon: float = 20_000.0
    max_events: int = 4_000_000
    grace: float = 50.0
    trace_messages: bool = False
    #: "full" keeps the checker-grade protocol trace; "off" disables all
    #: tracing (zero-waste mode for throughput/soak runs -- ``check_all``
    #: needs "full").
    trace_level: str = "full"

    def with_changes(self, **changes: Any) -> "ShardedScenarioConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **changes)


@dataclass
class ShardedRun:
    """A built (and, after ``execute``, completed) sharded deployment."""

    config: ShardedScenarioConfig
    sim: Simulator
    network: SimNetwork
    router: ShardRouter  #: the static base placement (epoch 0)
    routing_table: RoutingTable  #: the authoritative epoched view
    shard_groups: Tuple[Tuple[str, ...], ...]
    shards: List[List[OARServer]]  #: servers, indexed by shard
    clients: List[ShardedOARClient]
    drivers: List[Any]
    detectors: Dict[str, FailureDetector]
    key_universe: Tuple[str, ...]
    initial_total: Optional[int]  #: bank only: conserved money supply
    #: Rebalance coordinators attached to this run (see
    #: :func:`~repro.sharding.rebalance.attach_rebalancer`).
    rebalancers: List[Any] = field(default_factory=list)

    @property
    def trace(self) -> TraceLog:
        return self.network.trace

    @property
    def servers(self) -> List[OARServer]:
        """All servers across shards (shard-major order)."""
        return [server for shard in self.shards for server in shard]

    @property
    def client_pids(self) -> List[str]:
        return [client.pid for client in self.clients]

    def correct_servers(self, shard: int) -> List[OARServer]:
        return [s for s in self.shards[shard] if not s.crashed]

    def submitted_rids(self) -> List[str]:
        """Logical submissions (cross-shard txids count once)."""
        return [rid for driver in self.drivers for rid in driver.submitted]

    def adopted(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for client in self.clients:
            merged.update(client.adopted)
        return merged

    def latencies(self) -> List[float]:
        """Client-perceived logical latencies (whole transactions)."""
        return [adopted.latency for adopted in self.adopted().values()]

    def all_done(self) -> bool:
        """Drivers finished, rebalancers drained, exec lanes drained.

        A *crashed* coordinator never drains; it is excluded so a
        coordinator-crash scenario still reaches quiescence (its
        stranded migrations are the recovery coordinator's job).
        Likewise crashed replicas never drain their execution lanes
        (crash-stop suppresses their timers) and are excluded.
        """
        if not all(driver.done for driver in self.drivers):
            return False
        if not all(
            coordinator.done
            for coordinator in self.rebalancers
            if not coordinator.client.crashed
        ):
            return False
        return not any(
            server.exec_backlog for server in self.servers if not server.crashed
        )

    def routed_to(self, shard: int) -> List[str]:
        """Physical rids (ops and tx branches) routed to one shard."""
        return [
            rid for client in self.clients for rid in client.routed_to(shard)
        ]

    # ------------------------------------------------------------------

    def execute(self) -> "ShardedRun":
        """Run to quiescence (+ grace period); returns self for chaining."""
        config = self.config
        if config.fault_schedule is not None:
            config.fault_schedule.apply(
                self.network, list(self.detectors.values())
            )
        if config.arm is not None:
            config.arm(self)
        deadline = config.horizon
        sim = self.sim
        drivers = self.drivers
        rebalancers = self.rebalancers
        servers = self.servers

        def finished() -> bool:
            # Horizon first: one float compare vs a sweep over every
            # driver, and this predicate runs after every event.
            if sim._now >= deadline:
                return True
            for driver in drivers:
                if not driver.done:
                    return False
            for coordinator in rebalancers:
                if not coordinator.done and not coordinator.client.crashed:
                    return False
            for server in servers:
                if not server.crashed and server.exec_backlog:
                    return False
            return True

        sim.run_until(finished, max_events=config.max_events)
        sim.run(until=sim.now + config.grace, max_events=config.max_events)
        return self

    # ------------------------------------------------------------------
    # Checker bundle
    # ------------------------------------------------------------------

    def check_all(self, strict: bool = True, at_least_once: bool = True) -> None:
        """Per-shard paper properties plus cross-shard and migration atomicity.

        Completeness checks (at-least-once, every transaction decided,
        every migration done, no leftover escrow, conservation) only
        apply to quiescent runs; a run cut off mid-flight is checked for
        safety only.
        """
        quiescent = self.all_done()
        client_pids = self.client_pids + [
            coordinator.client.pid for coordinator in self.rebalancers
        ]
        initial_placement = self.router.placement(self.key_universe)
        # Shed requests were routed but deterministically refused (never
        # ordered); they are exempt from delivery-based properties.
        shed_rids: set = set()
        for client in self.clients:
            shed_rids |= getattr(client, "shed_rids", set())
        for shard, servers in enumerate(self.shards):
            routed = [
                rid for rid in self.routed_to(shard) if rid not in shed_rids
            ]
            checkers.check_single_shard_properties(
                self.trace,
                servers,
                client_pids,
                routed,
                strict=strict,
                at_least_once=at_least_once and quiescent,
            )
            # Replica-local reads routed to this shard observe
            # prefix-closed states of its adopted order (conservative
            # reads must; optimistic staleness is counted, not failed).
            checkers.check_read_consistency(
                self.trace,
                servers,
                lambda s=shard: _make_machine(self.config, initial_placement[s]),
                shard=shard,
            )
        checkers.check_cross_shard_atomicity(
            self.trace,
            self.shards,
            expected_total=self.initial_total,
            quiescent=quiescent,
        )
        checkers.check_fault_plane_accounting(self.trace, self.network)
        checkers.check_admission_accounting(
            self.trace,
            [server for servers in self.shards for server in servers],
            self.clients,
            self.drivers,
        )
        if self.config.machine in MIGRATABLE_MACHINES:
            # A coordinator crash strands its migrations without making
            # the run non-quiescent (all_done excludes crashed
            # coordinators), so completeness claims only hold once every
            # journal record is terminal -- recovery coordinators drive
            # the *same* record objects to terminal, so this settles
            # after a successful resume.  Until then the checker runs in
            # safety-only mode (stranded is incomplete, not non-atomic).
            migrations_settled = all(
                record.terminal
                for coordinator in self.rebalancers
                for record in coordinator.journal
            )
            checkers.check_migration_atomicity(
                self.trace,
                self.shards,
                self.routing_table,
                self.key_universe,
                expected_total=self.initial_total,
                quiescent=quiescent and migrations_settled,
            )
        if self.config.machine == "bank":
            # Hot-key splitting: every account that was ever split must
            # conserve its logical value exactly (fragments + escrows ==
            # initial placement + net adopted deltas).  A no-op when the
            # run never split anything.
            checkers.check_fragment_conservation(
                self.trace,
                self.shards,
                self.routing_table,
                initial_values={
                    account: self.config.initial_balance
                    for account in self.key_universe
                },
                quiescent=quiescent
                and all(
                    record.terminal
                    for coordinator in self.rebalancers
                    for record in coordinator.journal
                ),
            )


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def _key_universe(config: ShardedScenarioConfig) -> Tuple[str, ...]:
    if config.machine == "bank":
        count = config.accounts_per_shard * config.n_shards
        return tuple(f"a{i:03d}" for i in range(count))
    return tuple(f"k{i:03d}" for i in range(config.n_keys))


def _machine_class(kind: str) -> type:
    return {
        "kv": KVStoreMachine,
        "bank": BankMachine,
        "counter": CounterMachine,
        "stack": StackMachine,
    }[kind]


def _make_machine(
    config: ShardedScenarioConfig, placed_keys: Tuple[str, ...]
) -> StateMachine:
    """One shard's replica state machine; ``placed_keys`` is the shard's
    epoch-0 key ownership (migratable machines enforce it and support
    live migration; keyless machines ignore placement)."""
    if config.machine == "kv":
        return KVStoreMachine(owned=placed_keys)
    if config.machine == "bank":
        return BankMachine(
            {account: config.initial_balance for account in placed_keys},
            owned=placed_keys,
        )
    if config.machine == "counter":
        return CounterMachine()
    if config.machine == "stack":
        return StackMachine()
    raise ValueError(
        f"unknown machine kind: {config.machine} (choose from {SHARDED_MACHINES})"
    )


def _make_ops(
    config: ShardedScenarioConfig,
    rng: random.Random,
    key_universe: Tuple[str, ...],
    accounts_by_shard: Tuple[Tuple[str, ...], ...],
) -> Iterator[Tuple[Any, ...]]:
    if config.machine == "counter":
        return counter_ops()
    if config.machine == "stack":
        return stack_ops(rng)
    if config.machine == "bank":
        if config.workload == "cross":
            return cross_shard_bank_ops(
                rng, accounts_by_shard, cross_ratio=config.cross_ratio
            )
        if config.workload == "readheavy":
            return read_heavy_bank_ops(
                rng, accounts_by_shard, read_ratio=config.read_ratio
            )
        if config.workload == "hotkey":
            # key_universe[0] is the hot account; the generator's own
            # 20% read mix applies (config.read_ratio is the readheavy
            # knob and defaults far too read-heavy for a write stress).
            return hot_key_bank_ops(rng, key_universe, hot_ratio=config.hot_ratio)
        return cross_shard_bank_ops(rng, accounts_by_shard, cross_ratio=0.0)
    if config.workload == "zipf":
        return zipfian_kv_ops(rng, key_universe, s=config.zipf_s)
    if config.workload == "hotshift":
        return hot_shift_kv_ops(
            rng, key_universe, s=config.zipf_s, shift_every=config.shift_every
        )
    if config.workload == "readheavy":
        return read_heavy_kv_ops(
            rng, key_universe, s=config.zipf_s, read_ratio=config.read_ratio
        )
    return kv_ops(rng, keys=key_universe)


def build_sharded_scenario(config: ShardedScenarioConfig) -> ShardedRun:
    """Construct (but do not run) the sharded deployment."""
    if config.machine not in SHARDED_MACHINES:
        raise ValueError(
            f"unknown machine kind: {config.machine} "
            f"(choose from {SHARDED_MACHINES})"
        )
    if config.workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload: {config.workload} (choose from {WORKLOADS})"
        )
    if config.workload == "cross" and config.machine != "bank":
        raise ValueError("the cross-shard workload requires the bank machine")
    if config.workload == "hotkey" and config.machine != "bank":
        raise ValueError("the hot-key workload requires the bank machine")

    sim = Simulator(seed=config.seed)
    latency = config.latency if config.latency is not None else ConstantLatency(1.0)
    network = SimNetwork(
        sim,
        latency=latency,
        trace_messages=config.trace_messages,
        trace_level=config.trace_level,
    )
    if config.faults is not None:
        config.faults(network)

    key_universe = _key_universe(config)
    router = make_router(config.router, config.n_shards, key_universe)
    # The authoritative epoched routing view: identical to the base
    # router at epoch 0; live rebalancing overlays key moves on it.
    routing_table = RoutingTable(router)
    accounts_by_shard = routing_table.placement(key_universe)

    shard_groups = tuple(
        tuple(f"s{shard}.p{i + 1}" for i in range(config.n_servers))
        for shard in range(config.n_shards)
    )

    detectors: Dict[str, FailureDetector] = {}

    def fd_factory(group: Tuple[str, ...]) -> Callable[[Process], FailureDetector]:
        def build(host: Process) -> FailureDetector:
            if config.fd_kind == "heartbeat":
                detector: FailureDetector = HeartbeatFailureDetector(
                    host,
                    monitored=group,
                    interval=config.fd_interval,
                    timeout=config.fd_timeout,
                )
            elif config.fd_kind == "scripted":
                detector = ScriptedFailureDetector()
            else:
                raise ValueError(f"unknown fd kind: {config.fd_kind}")
            detectors[host.pid] = detector
            return detector

        return build

    oar_config = config.oar.with_exec_overrides(
        config.exec_cost, config.exec_lanes
    ).with_admission_overrides(config.admission_limit, config.read_queue_limit)
    shards: List[List[OARServer]] = []
    for shard, group in enumerate(shard_groups):
        servers: List[OARServer] = []
        for pid in group:
            machine = _make_machine(config, accounts_by_shard[shard])
            server = OARServer(pid, group, machine, fd_factory(group), oar_config)
            servers.append(server)
            network.add_process(server)
        shards.append(servers)

    machine_cls = _machine_class(config.machine)
    read_mode = config.read_mode or config.oar.read_mode
    clients: List[ShardedOARClient] = []
    for index in range(config.n_clients):
        # Each client routes by its own (possibly stale) copy of the
        # table and re-syncs from the authority on WrongShard redirects.
        client = ShardedOARClient(
            f"c{index + 1}",
            shard_groups,
            routing_table.copy(),
            key_extractor=machine_cls.keys_of,
            tx_planner=machine_cls.tx_branches,
            retry_interval=config.retry_interval,
            route_authority=routing_table,
            redirect_delay=config.redirect_delay,
            max_redirects=config.max_redirects,
            read_mode=read_mode,
            is_read_only=machine_cls.is_read_only,
            load_half_life=config.load_half_life,
            splitter=(
                machine_cls
                if issubclass(machine_cls, SplittableMachine)
                else None
            ),
        )
        clients.append(client)
        network.add_process(client)

    network.start_all()

    drivers: List[Any] = []
    for client in clients:
        ops_rng = sim.child_rng(f"ops/{client.pid}")
        ops = _make_ops(config, ops_rng, key_universe, accounts_by_shard)
        if config.driver == "closed":
            driver: Any = ClosedLoopDriver(
                sim,
                client,
                ops,
                total=config.requests_per_client,
                think_time=config.think_time,
                start_at=config.driver_start_at,
            )
        elif config.driver == "open":
            driver = OpenLoopDriver(
                sim,
                client,
                ops,
                total=config.requests_per_client,
                rate=config.open_rate,
                rng=sim.child_rng(f"arrivals/{client.pid}"),
                start_at=config.driver_start_at,
            )
        elif config.driver == "session":
            bucket = (
                TokenBucket(config.client_rate, burst=config.client_burst)
                if config.client_rate is not None
                else None
            )
            driver = SessionedOpenLoopDriver(
                sim,
                client,
                ops,
                total=config.requests_per_client,
                arrival=(
                    config.arrival
                    if config.arrival is not None
                    else PoissonProcess(config.open_rate)
                ),
                rng=sim.child_rng(f"arrivals/{client.pid}"),
                n_sessions=config.n_sessions,
                start_at=config.driver_start_at,
                bucket=bucket,
                measure_from=config.measure_from,
            )
        else:
            raise ValueError(f"unknown driver kind: {config.driver}")
        drivers.append(driver)

    initial_total = None
    if config.machine == "bank" and config.workload != "hotkey":
        # The hot-key workload's deposits/withdrawals change the money
        # supply, so the conserved-total checks do not apply there --
        # check_fragment_conservation covers its split accounts instead.
        initial_total = config.initial_balance * len(key_universe)

    return ShardedRun(
        config=config,
        sim=sim,
        network=network,
        router=router,
        routing_table=routing_table,
        shard_groups=shard_groups,
        shards=shards,
        clients=clients,
        drivers=drivers,
        detectors=detectors,
        key_universe=key_universe,
        initial_total=initial_total,
    )


def run_sharded_scenario(config: ShardedScenarioConfig) -> ShardedRun:
    """Build and execute a sharded scenario; the one-call entry point."""
    return build_sharded_scenario(config).execute()
