"""Sharded (partitioned) optimistic active replication.

One OAR group totally orders everything through a single sequencer; this
package multiplies that pipeline.  A deterministic
:class:`~repro.sharding.router.ShardRouter` maps every key to one of N
independent replication groups (each a complete OAR deployment with its
own sequencer, replicas, epochs and undo log), the sharded client
(:class:`~repro.core.client.ShardedOARClient`) fans requests out by key,
and multi-key operations that straddle groups run a client-coordinated
two-phase escrow commit whose branches are ordinary totally-ordered
requests -- no new consensus machinery.

Routing is **epoch-versioned** (:class:`~repro.sharding.router.
RoutingTable`) so placement can change while the cluster serves traffic:
:class:`~repro.sharding.rebalance.RebalanceCoordinator` migrates hot
keys between groups as escrow-style migration transactions whose steps
are ordinary totally-ordered requests, with WrongShard redirect/retry on
the clients and crash recovery for the coordinator itself.

Entry points mirror the unsharded harness:
:func:`~repro.sharding.cluster.run_sharded_scenario` builds and runs a
full deployment from a declarative
:class:`~repro.sharding.cluster.ShardedScenarioConfig`;
:func:`~repro.sharding.rebalance.attach_rebalancer` adds live
rebalancing to a built run.
"""

from repro.sharding.cluster import (
    ShardedRun,
    ShardedScenarioConfig,
    build_sharded_scenario,
    run_sharded_scenario,
)
from repro.sharding.rebalance import (
    MigrationRecord,
    RebalanceCoordinator,
    attach_rebalancer,
)
from repro.sharding.router import (
    HashShardRouter,
    RangeShardRouter,
    RoutingTable,
    ShardRouter,
    make_router,
)

__all__ = [
    "HashShardRouter",
    "MigrationRecord",
    "RangeShardRouter",
    "RebalanceCoordinator",
    "RoutingTable",
    "ShardRouter",
    "ShardedRun",
    "ShardedScenarioConfig",
    "attach_rebalancer",
    "build_sharded_scenario",
    "make_router",
    "run_sharded_scenario",
]
