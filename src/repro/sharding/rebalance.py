"""Live shard rebalancing: online key migration between OAR groups.

PR 1's router is static, so a skewed workload pins one sequencer at its
service-rate ceiling no matter how many groups exist (the B10b Zipf
table).  This module adds the missing control loop: a
:class:`RebalanceCoordinator` that

1. **snapshots per-key load** from the clients' submission counters,
2. **plans key moves** off the hottest shard onto the coldest, and
3. **executes each move as an escrow-style migration transaction** whose
   every step is an ordinary totally-ordered request on one shard --
   exactly the trick the cross-shard 2PC uses, so the paper's per-group
   protocol is reused untouched:

   =================  ==========  =========================================
   step               shard       effect
   =================  ==========  =========================================
   ``mig_prepare``    source      freeze: ownership dropped, state exported
                                  into the outbound escrow (kept for
                                  recovery), forward hint recorded
   ``mig_install``    dest        state installed, ownership taken
                                  (idempotent by migration id)
   *epoch bump*       --          the authoritative
                                  :class:`~repro.sharding.router.
                                  RoutingTable` is updated; from here new
                                  requests route to the destination
   ``mig_forget``     source      the outbound escrow entry is dropped
                                  (migration garbage collection)
   =================  ==========  =========================================

The coordinator only acts on **adopted** replies, so every step it
builds on is final by the paper's own guarantee (Proposition 7) -- an
optimistic ``mig_prepare`` that could still be undone can never
accumulate majority weight, hence can never be acted upon.

In-flight client requests are safe throughout: a stale client that still
routes the key to the source gets a deterministic ``WrongShard`` reply
and retries after syncing its table copy (see
:class:`~repro.core.client.ShardedOARClient`); between prepare and
install the key is owned by *no* shard and every request is redirected
until the migration lands.

**Coordinator crashes** leave the exported state parked in the source
shard's replicated outbound escrow.  A recovery coordinator (a fresh
client process handed the crashed coordinator's :attr:`journal` -- the
stand-in for the replicated config service a real deployment would keep
it in) calls :meth:`RebalanceCoordinator.resume`: it probes
``mig_status`` on the source (and, if unknown there, the destination)
and drives each half-done migration forward -- re-installing
idempotently, bumping the routing epoch if the crash hit before the
bump, and forgetting the escrow.  ``check_migration_atomicity`` verifies
the end state: every key owned by exactly one epoch-current shard, no
state lost, duplicated, or double-counted.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.client import AdoptedReply, ShardedOARClient
from repro.sharding.router import RoutingTable
from repro.statemachine.base import OpResult


@dataclass
class MigrationRecord:
    """One key move's journal entry (the coordinator's durable state).

    ``phase`` walks ``planned -> preparing -> installing -> committed ->
    forgetting -> done`` (or ``aborted`` when the source vetoes the
    export ``max_attempts`` times); a recovery coordinator resumes any
    record whose phase is not terminal.
    """

    mid: str
    key: Any
    src: int
    dst: int
    phase: str = "planned"
    state: Any = None
    attempts: int = 0
    error: str = ""

    @property
    def terminal(self) -> bool:
        return self.phase in ("done", "aborted")


class RebalanceCoordinator:
    """Drives key migrations through a dedicated sharded client.

    Migrations run strictly one at a time: sequencing keeps the
    coordinator deterministic and bounds the number of keys that are
    ever simultaneously ownerless to one.

    Parameters
    ----------
    client:
        A dedicated :class:`~repro.core.client.ShardedOARClient` (the
        coordinator takes over its ``on_adopt`` callback); crash this
        process to crash the coordinator.
    authority:
        The cluster's authoritative epoched routing table; mutated
        (epoch bump) when a migration's install is adopted.
    observed_clients:
        Workload clients whose per-key submission counters feed
        :meth:`snapshot_key_load`.
    retry_delay / max_attempts:
        Pacing for ``mig_prepare`` retries when the source vetoes the
        export (e.g. a pending cross-shard escrow hold on the account).
    """

    def __init__(
        self,
        client: ShardedOARClient,
        authority: RoutingTable,
        observed_clients: Iterable[Any] = (),
        retry_delay: float = 10.0,
        max_attempts: int = 5,
    ) -> None:
        self.client = client
        self.authority = authority
        self.observed_clients = list(observed_clients)
        self.retry_delay = retry_delay
        self.max_attempts = max_attempts
        #: Every migration this coordinator ever started, in order; hand
        #: this to a recovery coordinator's :meth:`resume` after a crash.
        self.journal: List[MigrationRecord] = []
        self.moves_committed = 0
        self.moves_aborted = 0
        self._counter = itertools.count()
        self._queue: Deque[MigrationRecord] = deque()
        self._active: Optional[MigrationRecord] = None
        self._stage_of: Dict[str, str] = {}  # rid -> protocol stage
        self._resuming: Set[str] = set()  # mids adopted from a crashed peer
        #: Scheduled-but-not-yet-fired rebalances (attach_rebalancer's
        #: ``start_at``); the coordinator is not ``done`` while one is
        #: pending, so a run cannot quiesce out from under the timer.
        self._pending_starts = 0
        # Auto-trigger policy state (enable_auto_trigger).
        self._auto: Optional[Dict[str, Any]] = None
        self._auto_strikes = 0
        self.auto_rebalances = 0
        client.on_adopt = self._on_adopt

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def env(self) -> Any:
        return self.client.env

    @property
    def done(self) -> bool:
        """True when no migration is active, queued, or scheduled."""
        return (
            self._active is None
            and not self._queue
            and self._pending_starts == 0
        )

    # ------------------------------------------------------------------
    # Load snapshot and planning
    # ------------------------------------------------------------------

    def snapshot_key_load(self) -> Dict[Any, float]:
        """Aggregate per-key load across observed clients, decayed to now.

        Clients keep :class:`~repro.core.loadtrack.DecayingKeyLoad`
        counters, so the snapshot reflects *recent* demand: a key that
        was hot during warm-up but went cold no longer dominates the
        plan (a plain mapping still works, for tests that inject loads).
        """
        load: Dict[Any, float] = {}
        for client in self.observed_clients:
            source = client.key_load
            items = source.snapshot().items() if hasattr(source, "snapshot") else source.items()
            for key, count in items:
                load[key] = load.get(key, 0.0) + count
        return load

    def plan_moves(
        self,
        load: Optional[Dict[Any, float]] = None,
        max_moves: int = 8,
    ) -> List[Tuple[Any, int, int]]:
        """Greedy plan: repeatedly move the heaviest key that shrinks the
        hot/cold gap from the hottest shard to the coldest.

        Returns ``[(key, src, dst), ...]`` without executing anything.
        Deterministic: ties break on the key itself.  A candidate key
        must carry less load than the current hot-cold gap, otherwise
        moving it would just swap which shard is hot.
        """
        if load is None:
            load = self.snapshot_key_load()
        shard_load = [0.0] * self.authority.n_shards
        keys_by_shard: Dict[int, List[Tuple[int, Any]]] = {}
        shard_of = self.authority.shard_of
        for key, count in load.items():
            shard = shard_of(key)
            shard_load[shard] += count
            keys_by_shard.setdefault(shard, []).append((count, key))
        moved: List[Tuple[Any, int, int]] = []
        planned_away: Set[Any] = set()
        while len(moved) < max_moves:
            hot = max(range(len(shard_load)), key=lambda s: (shard_load[s], -s))
            cold = min(range(len(shard_load)), key=lambda s: (shard_load[s], s))
            gap = shard_load[hot] - shard_load[cold]
            candidates = sorted(
                (
                    (count, key)
                    for count, key in keys_by_shard.get(hot, ())
                    if 0 < count < gap and key not in planned_away
                ),
                key=lambda item: (-item[0], str(item[1])),
            )
            if not candidates:
                break
            count, key = candidates[0]
            moved.append((key, hot, cold))
            planned_away.add(key)
            shard_load[hot] -= count
            shard_load[cold] += count
            keys_by_shard.setdefault(cold, []).append((count, key))
        return moved

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def rebalance(self, max_moves: int = 8) -> List[MigrationRecord]:
        """Snapshot load, plan, and enqueue the planned migrations."""
        records = [
            self.migrate(key, dst, src=src)
            for key, src, dst in self.plan_moves(max_moves=max_moves)
        ]
        return records

    def migrate(self, key: Any, dst: int, src: Optional[int] = None) -> MigrationRecord:
        """Enqueue one explicit key move (tests and manual rebalancing)."""
        if src is None:
            src = self.authority.shard_of(key)
        record = MigrationRecord(
            mid=f"{self.client.pid}-m{next(self._counter)}",
            key=key,
            src=src,
            dst=dst,
        )
        self.journal.append(record)
        self._queue.append(record)
        self._pump()
        return record

    def schedule(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` (typically migrate/rebalance calls) at absolute
        simulated time ``when``, holding the run open until it fires.

        Scheduling migration kicks with a raw simulator timer is a
        quiescence race: a run whose drivers finish *before* ``when``
        looks done (nothing active, nothing queued), the harness drops
        into its grace window, and the migrations either never complete
        or silently race the run teardown.  Routing the timer through
        the coordinator counts it in ``_pending_starts``, which
        :attr:`done` already respects.
        """
        self._pending_starts += 1

        def fire() -> None:
            self._pending_starts -= 1
            action()
            # The action usually enqueues migrations itself; _pump is
            # idempotent and covers actions that only mutated the queue.
            self._pump()

        delay = max(0.0, when - self.env.now)
        self.env.set_timer(delay, fire)

    def enable_auto_trigger(
        self,
        check_interval: float = 25.0,
        ratio: float = 3.0,
        sustain: int = 2,
        min_load: float = 10.0,
        max_moves: int = 8,
    ) -> None:
        """Fire rebalances automatically on *sustained* load imbalance.

        Replaces scheduled-time-only kicks (ROADMAP open item): every
        ``check_interval`` simulated time units the coordinator
        snapshots the decayed per-key load counters, aggregates them by
        the authority's current routing, and scores the imbalance as
        ``hottest shard load / coldest shard load``.  When the ratio
        stays at or above ``ratio`` for ``sustain`` consecutive ticks --
        a momentary spike (one hot burst, a migration mid-flight
        shuffling counters) must not trigger churn -- and no migration
        is already active, it plans and enqueues a rebalance.

        ``min_load`` is the hottest shard's minimum snapshot load for a
        tick to count: the decayed counters are near zero at start-up
        and between bursts, where any division would be noise.  The tick
        uses a raw timer on purpose (unlike :meth:`schedule`): a pending
        *policy poll* must not hold the run open -- only actual planned
        work does.
        """
        if check_interval <= 0:
            raise ValueError("check_interval must be > 0")
        if ratio <= 1.0:
            raise ValueError("ratio must be > 1 (hot/cold imbalance factor)")
        if sustain < 1:
            raise ValueError("sustain must be >= 1")
        self._auto = {
            "interval": check_interval,
            "ratio": ratio,
            "sustain": sustain,
            "min_load": min_load,
            "max_moves": max_moves,
        }
        self._auto_strikes = 0
        self._schedule_auto_tick()

    def _schedule_auto_tick(self) -> None:
        def tick() -> None:
            if self._auto is None or self.client.crashed:
                return
            self._auto_check()
            self._schedule_auto_tick()

        self.env.set_timer(self._auto["interval"], tick)

    def imbalance_ratio(
        self, load: Optional[Dict[Any, float]] = None
    ) -> Tuple[float, float, float]:
        """(hot/cold ratio, hottest load, coldest load) per current routing.

        A shard with zero observed load makes the ratio ``inf`` whenever
        the hottest shard saw anything at all -- maximal imbalance, not
        a division error.
        """
        if load is None:
            load = self.snapshot_key_load()
        shard_load = [0.0] * self.authority.n_shards
        shard_of = self.authority.shard_of
        for key, count in load.items():
            shard_load[shard_of(key)] += count
        hot = max(shard_load)
        cold = min(shard_load)
        if hot <= 0.0:
            return 1.0, hot, cold
        return (hot / cold if cold > 0.0 else float("inf")), hot, cold

    def _auto_check(self) -> None:
        """One policy tick: update the strike counter, maybe rebalance."""
        auto = self._auto
        load = self.snapshot_key_load()
        ratio, hot, _cold = self.imbalance_ratio(load)
        if hot < auto["min_load"] or ratio < auto["ratio"]:
            self._auto_strikes = 0
            return
        self._auto_strikes += 1
        self.env.trace(
            "rebalance_strike",
            strikes=self._auto_strikes,
            ratio=round(ratio, 3) if ratio != float("inf") else "inf",
        )
        if self._auto_strikes < auto["sustain"]:
            return
        if not self.done:
            # Migrations already queued/active: *defer* -- keep the
            # accumulated strikes so the rebalance fires on the first
            # over-threshold tick after the queue drains, instead of
            # making the hot shard re-earn the whole sustain window.
            return
        self._auto_strikes = 0
        records = [
            self.migrate(key, dst, src=src)
            for key, src, dst in self.plan_moves(load, max_moves=auto["max_moves"])
        ]
        if records:
            self.auto_rebalances += 1
            self.env.trace(
                "rebalance_auto", moves=len(records), ratio=round(ratio, 3)
                if ratio != float("inf") else "inf",
            )

    def resume(self, journal: Iterable[MigrationRecord]) -> None:
        """Adopt a crashed coordinator's journal and finish its work.

        Terminal records are kept for the books; every other record is
        re-driven from a ``mig_status`` probe so the recovery is
        idempotent no matter where the crash hit.
        """
        for record in journal:
            self.journal.append(record)
            if record.terminal:
                continue
            self._resuming.add(record.mid)
            self._queue.append(record)
        self._pump()

    # ------------------------------------------------------------------
    # The migration state machine (driven by adoptions)
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        if self._active is not None or not self._queue:
            return
        self._active = self._queue.popleft()
        self._start(self._active)

    def _advance(self) -> None:
        self._active = None
        self._pump()

    def _start(self, record: MigrationRecord) -> None:
        if record.mid in self._resuming:
            self.env.trace(
                "mig_resume", mid=record.mid, key=record.key, from_phase=record.phase
            )
            record.phase = "recovering"
            self._submit(("mig_status", record.mid), record.src, "src_status")
            return
        record.phase = "preparing"
        self.env.trace(
            "mig_begin",
            mid=record.mid,
            key=record.key,
            src=record.src,
            dst=record.dst,
        )
        self._submit(
            ("mig_prepare", record.mid, record.key, record.dst),
            record.src,
            "prepare",
        )

    def _submit(self, op: Tuple[Any, ...], shard: int, stage: str) -> None:
        rid = self.client.submit_to_shard(op, shard)
        self._stage_of[rid] = stage

    def _on_adopt(self, adopted: AdoptedReply) -> None:
        stage = self._stage_of.pop(adopted.rid, None)
        record = self._active
        if stage is None or record is None:
            return
        result = adopted.value
        if not isinstance(result, OpResult):
            raise RuntimeError(f"rebalancer: non-OpResult adoption {adopted!r}")
        handler = getattr(self, f"_on_{stage}")
        handler(record, result)

    # -- normal path ----------------------------------------------------

    def _on_prepare(self, record: MigrationRecord, result: OpResult) -> None:
        if result.ok:
            record.state = result.value[1]  # ("exported", state)
            record.phase = "installing"
            self.env.trace("mig_prepared", mid=record.mid, key=record.key)
            self._submit(
                ("mig_install", record.mid, record.key, record.state),
                record.dst,
                "install",
            )
            return
        if "already prepared" in result.error:
            # An earlier prepare for this mid won the race -- typically
            # one that was still in flight across a crash/recovery
            # hand-off and got totally ordered after the status probe
            # answered "unknown".  The state is in the source's escrow;
            # re-probe and continue from there instead of aborting.
            self._submit(("mig_status", record.mid), record.src, "src_status")
            return
        record.attempts += 1
        record.error = result.error
        if record.attempts < self.max_attempts:
            # Transient veto (e.g. an escrow hold on the account): try
            # the same migration again after a pause.
            self.env.set_timer(self.retry_delay, lambda: self._retry(record))
            return
        self._abort(record)

    def _retry(self, record: MigrationRecord) -> None:
        if self._active is record and not record.terminal:
            self._start(record)

    def _abort(self, record: MigrationRecord) -> None:
        record.phase = "aborted"
        self.moves_aborted += 1
        self.env.trace(
            "mig_abort", mid=record.mid, key=record.key, reason=record.error
        )
        self._advance()

    def _on_install(self, record: MigrationRecord, result: OpResult) -> None:
        if not result.ok:
            # Install can only fail on ownership/config errors; surface
            # it as an abort (the exported state stays in the source's
            # escrow, where the migration checker will point at it).
            record.error = result.error
            self._abort(record)
            return
        self.env.trace("mig_installed", mid=record.mid, key=record.key)
        self._commit(record)

    def _commit_table(self, record: MigrationRecord) -> None:
        """Route the key to its new home and trace the commit.

        Idempotent under recovery: the epoch is only bumped if the
        table does not already route the key to the destination.
        """
        if self.authority.shard_of(record.key) != record.dst:
            epoch = self.authority.move(record.key, record.dst)
        else:
            epoch = self.authority.epoch
        self.env.trace(
            "mig_commit",
            mid=record.mid,
            key=record.key,
            dst=record.dst,
            epoch=epoch,
        )

    def _commit(self, record: MigrationRecord) -> None:
        self._commit_table(record)
        record.phase = "forgetting"
        self._submit(("mig_forget", record.mid), record.src, "forget")

    def _on_forget(self, record: MigrationRecord, result: OpResult) -> None:
        record.phase = "done"
        self.moves_committed += 1
        self.env.trace("mig_done", mid=record.mid, key=record.key)
        self._advance()

    # -- recovery path --------------------------------------------------

    def _on_src_status(self, record: MigrationRecord, result: OpResult) -> None:
        status = result.value
        if status[0] == "prepared":
            _tag, _key, _dst, state = status
            record.state = state
            record.phase = "installing"
            self._resuming.discard(record.mid)
            self.env.trace("mig_prepared", mid=record.mid, key=record.key)
            self._submit(
                ("mig_install", record.mid, record.key, record.state),
                record.dst,
                "install",
            )
            return
        # Unknown at the source: either never prepared, or already
        # forgotten (fully done).  The destination knows which.
        self._submit(("mig_status", record.mid), record.dst, "dst_status")

    def _on_dst_status(self, record: MigrationRecord, result: OpResult) -> None:
        status = result.value
        self._resuming.discard(record.mid)
        if status[0] == "installed":
            # Unknown at the source but installed at the destination:
            # install and forget both landed before the crash.  Ensure
            # the epoch bump and close the record.
            self.env.trace("mig_installed", mid=record.mid, key=record.key)
            self._commit_resumed_installed(record)
            return
        # Unknown on both sides: the migration never prepared.  Restart
        # it from scratch (the key still lives on the source).
        self._start(record)

    def _commit_resumed_installed(self, record: MigrationRecord) -> None:
        # Install and forget both landed before the crash: nothing left
        # to submit, just ensure the table and close the record.
        self._commit_table(record)
        record.phase = "done"
        self.moves_committed += 1
        self.env.trace("mig_done", mid=record.mid, key=record.key)
        self._advance()


# ----------------------------------------------------------------------
# Harness glue
# ----------------------------------------------------------------------

def attach_rebalancer(
    run: Any,
    pid: str = "rb1",
    start_at: Optional[float] = None,
    max_moves: int = 8,
    retry_delay: float = 10.0,
    max_attempts: int = 5,
    auto: bool = False,
    auto_interval: float = 25.0,
    auto_ratio: float = 3.0,
    auto_sustain: int = 2,
    auto_min_load: float = 10.0,
) -> RebalanceCoordinator:
    """Attach a rebalance coordinator (with its own client process) to a
    built :class:`~repro.sharding.cluster.ShardedRun`.

    With ``start_at`` the coordinator snapshots load and rebalances at
    that simulated time (use a warm-up window so the counters mean
    something); with ``auto=True`` it instead polls the decayed load
    counters every ``auto_interval`` and rebalances whenever the
    hot/cold shard imbalance stays >= ``auto_ratio`` for
    ``auto_sustain`` consecutive ticks
    (:meth:`RebalanceCoordinator.enable_auto_trigger`); without either,
    call :meth:`RebalanceCoordinator.rebalance` or
    :meth:`~RebalanceCoordinator.migrate` yourself.  Designed for the
    config's ``arm`` hook::

        ShardedScenarioConfig(..., arm=lambda run: attach_rebalancer(
            run, start_at=150.0))
    """
    from repro.sharding.cluster import _machine_class

    machine_cls = _machine_class(run.config.machine)
    client = ShardedOARClient(
        pid,
        run.shard_groups,
        run.routing_table.copy(),
        key_extractor=machine_cls.keys_of,
        tx_planner=machine_cls.tx_branches,
        retry_interval=run.config.retry_interval,
    )
    run.network.start(client)
    coordinator = RebalanceCoordinator(
        client,
        run.routing_table,
        observed_clients=run.clients,
        retry_delay=retry_delay,
        max_attempts=max_attempts,
    )
    if start_at is not None:
        # Held open via _pending_starts (see RebalanceCoordinator.
        # schedule): a run whose drivers finish before start_at must
        # not quiesce out from under the scheduled rebalance.
        coordinator.schedule(
            start_at, lambda: coordinator.rebalance(max_moves=max_moves)
        )
    if auto:
        coordinator.enable_auto_trigger(
            check_interval=auto_interval,
            ratio=auto_ratio,
            sustain=auto_sustain,
            min_load=auto_min_load,
            max_moves=max_moves,
        )
    run.rebalancers.append(coordinator)
    return coordinator
