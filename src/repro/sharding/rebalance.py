"""Live shard rebalancing: online key migration between OAR groups.

PR 1's router is static, so a skewed workload pins one sequencer at its
service-rate ceiling no matter how many groups exist (the B10b Zipf
table).  This module adds the missing control loop: a
:class:`RebalanceCoordinator` that

1. **snapshots per-key load** from the clients' exponentially decayed
   load trackers (:class:`~repro.core.loadtrack.DecayingKeyLoad`), so
   the plan reflects *recent* demand, not lifetime totals,
2. **plans key moves** off the hottest shard onto the coldest, and
3. **executes each move as an escrow-style migration transaction** whose
   every step is an ordinary totally-ordered request on one shard --
   exactly the trick the cross-shard 2PC uses, so the paper's per-group
   protocol is reused untouched:

   =================  ==========  =========================================
   step               shard       effect
   =================  ==========  =========================================
   ``mig_prepare``    source      freeze: ownership dropped, state exported
                                  into the outbound escrow (kept for
                                  recovery), forward hint recorded
   ``mig_install``    dest        state installed, ownership taken
                                  (idempotent by migration id)
   *epoch bump*       --          the authoritative
                                  :class:`~repro.sharding.router.
                                  RoutingTable` is updated; from here new
                                  requests route to the destination
   ``mig_forget``     source      the outbound escrow entry is dropped
                                  (migration garbage collection)
   =================  ==========  =========================================

The coordinator only acts on **adopted** replies, so every step it
builds on is final by the paper's own guarantee (Proposition 7) -- an
optimistic ``mig_prepare`` that could still be undone can never
accumulate majority weight, hence can never be acted upon.

In-flight client requests are safe throughout: a stale client that still
routes the key to the source gets a deterministic ``WrongShard`` reply
and retries after syncing its table copy (see
:class:`~repro.core.client.ShardedOARClient`); between prepare and
install the key is owned by *no* shard and every request is redirected
until the migration lands.

**Coordinator crashes** leave the exported state parked in the source
shard's replicated outbound escrow.  A recovery coordinator (a fresh
client process handed the crashed coordinator's :attr:`journal` -- the
stand-in for the replicated config service a real deployment would keep
it in) calls :meth:`RebalanceCoordinator.resume`: it probes
``mig_status`` on the source (and, if unknown there, the destination)
and drives each half-done migration forward -- re-installing
idempotently, bumping the routing epoch if the crash hit before the
bump, and forgetting the escrow.  ``check_migration_atomicity`` verifies
the end state: every key owned by exactly one epoch-current shard, no
state lost, duplicated, or double-counted.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.client import AdoptedReply, ShardedOARClient
from repro.sharding.router import RoutingTable
from repro.statemachine.base import OpResult, SplittableMachine


@dataclass
class MigrationRecord:
    """One key move's journal entry (the coordinator's durable state).

    ``phase`` walks ``planned -> preparing -> installing -> committed ->
    forgetting -> done`` (or ``aborted`` when the source vetoes the
    export ``max_attempts`` times); a recovery coordinator resumes any
    record whose phase is not terminal.
    """

    mid: str
    key: Any
    src: int
    dst: int
    phase: str = "planned"
    state: Any = None
    attempts: int = 0
    error: str = ""

    @property
    def terminal(self) -> bool:
        return self.phase in ("done", "aborted")


@dataclass
class SplitRecord:
    """One hot-key split's journal entry.

    ``phase`` walks ``planned -> splitting -> installing -> forgetting ->
    done`` (or ``aborted``): ``split_open`` on the source exports the key
    as N fragment states (fragment 0 installed locally, the rest parked
    in the migration escrow), each escrowed fragment is ``mig_install``ed
    at its destination, the routing table commits the whole placement in
    one epoch bump, and the escrow entries are forgotten.
    """

    sid: str
    key: Any
    frags: Tuple[Any, ...]
    dsts: Tuple[int, ...]
    src: int
    phase: str = "planned"
    shipped: Tuple[Tuple[str, Any, int, Any], ...] = ()
    pending: Set[str] = field(default_factory=set)
    attempts: int = 0
    error: str = ""

    @property
    def terminal(self) -> bool:
        return self.phase in ("done", "aborted")


@dataclass
class UnsplitRecord:
    """One merge's journal entry: stray fragments are first migrated home
    by ordinary :class:`MigrationRecord` moves queued ahead of this one,
    then a single ``split_close`` on the home shard recombines them."""

    sid: str
    key: Any
    frags: Tuple[Any, ...]
    home: int
    phase: str = "planned"
    attempts: int = 0
    error: str = ""

    @property
    def terminal(self) -> bool:
        return self.phase in ("done", "aborted")


class RebalanceCoordinator:
    """Drives key migrations through a dedicated sharded client.

    Migrations run strictly one at a time: sequencing keeps the
    coordinator deterministic and bounds the number of keys that are
    ever simultaneously ownerless to one.

    Parameters
    ----------
    client:
        A dedicated :class:`~repro.core.client.ShardedOARClient` (the
        coordinator takes over its ``on_adopt`` callback); crash this
        process to crash the coordinator.
    authority:
        The cluster's authoritative epoched routing table; mutated
        (epoch bump) when a migration's install is adopted.
    observed_clients:
        Workload clients whose decayed per-key load trackers
        (:class:`~repro.core.loadtrack.DecayingKeyLoad`) feed
        :meth:`snapshot_key_load`.
    retry_delay / max_attempts:
        Pacing for ``mig_prepare`` retries when the source vetoes the
        export (e.g. a pending cross-shard escrow hold on the account).
    splitter:
        The deployment's :class:`~repro.statemachine.base.
        SplittableMachine` subclass, used by :meth:`split_key` to derive
        fragment key names; defaults to the base class (which all
        bundled splittable machines inherit the naming scheme from).
    """

    def __init__(
        self,
        client: ShardedOARClient,
        authority: RoutingTable,
        observed_clients: Iterable[Any] = (),
        retry_delay: float = 10.0,
        max_attempts: int = 5,
        splitter: type = SplittableMachine,
    ) -> None:
        self.client = client
        self.authority = authority
        self.observed_clients = list(observed_clients)
        self.retry_delay = retry_delay
        self.max_attempts = max_attempts
        self.splitter = splitter
        #: Every migration this coordinator ever started, in order; hand
        #: this to a recovery coordinator's :meth:`resume` after a crash.
        self.journal: List[Any] = []
        self.moves_committed = 0
        self.moves_aborted = 0
        self.splits_committed = 0
        self.splits_aborted = 0
        self.unsplits_committed = 0
        self.auto_splits = 0
        self._counter = itertools.count()
        self._queue: Deque[Any] = deque()
        self._active: Optional[Any] = None
        #: rid -> (protocol stage, stage context); the context carries the
        #: fragment mid for the split fan-out stages, None elsewhere.
        self._stage_of: Dict[str, Tuple[str, Any]] = {}
        self._resuming: Set[str] = set()  # mids adopted from a crashed peer
        #: Scheduled-but-not-yet-fired rebalances (attach_rebalancer's
        #: ``start_at``); the coordinator is not ``done`` while one is
        #: pending, so a run cannot quiesce out from under the timer.
        self._pending_starts = 0
        # Auto-trigger policy state (enable_auto_trigger).
        self._auto: Optional[Dict[str, Any]] = None
        self._auto_strikes = 0
        self.auto_rebalances = 0
        client.on_adopt = self._on_adopt

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def env(self) -> Any:
        return self.client.env

    @property
    def done(self) -> bool:
        """True when no migration is active, queued, or scheduled."""
        return (
            self._active is None
            and not self._queue
            and self._pending_starts == 0
        )

    # ------------------------------------------------------------------
    # Load snapshot and planning
    # ------------------------------------------------------------------

    def snapshot_key_load(self) -> Dict[Any, float]:
        """Aggregate per-key load across observed clients, decayed to now.

        Clients keep :class:`~repro.core.loadtrack.DecayingKeyLoad`
        counters, so the snapshot reflects *recent* demand: a key that
        was hot during warm-up but went cold no longer dominates the
        plan (a plain mapping still works, for tests that inject loads).
        """
        load: Dict[Any, float] = {}
        for client in self.observed_clients:
            source = client.key_load
            items = source.snapshot().items() if hasattr(source, "snapshot") else source.items()
            for key, count in items:
                load[key] = load.get(key, 0.0) + count
        return load

    def plan_moves(
        self,
        load: Optional[Dict[Any, float]] = None,
        max_moves: int = 8,
    ) -> List[Tuple[Any, int, int]]:
        """Greedy plan: repeatedly move the heaviest key that shrinks the
        hot/cold gap from the hottest shard to the coldest.

        Returns ``[(key, src, dst), ...]`` without executing anything.
        Deterministic: ties break on the key itself.  A candidate key
        must carry less load than the current hot-cold gap, otherwise
        moving it would just swap which shard is hot.
        """
        if load is None:
            load = self.snapshot_key_load()
        shard_load = [0.0] * self.authority.n_shards
        keys_by_shard: Dict[int, List[Tuple[int, Any]]] = {}
        shard_of = self.authority.shard_of
        for key, count in load.items():
            shard = shard_of(key)
            shard_load[shard] += count
            keys_by_shard.setdefault(shard, []).append((count, key))
        moved: List[Tuple[Any, int, int]] = []
        planned_away: Set[Any] = set()
        while len(moved) < max_moves:
            hot = max(range(len(shard_load)), key=lambda s: (shard_load[s], -s))
            cold = min(range(len(shard_load)), key=lambda s: (shard_load[s], s))
            gap = shard_load[hot] - shard_load[cold]
            candidates = sorted(
                (
                    (count, key)
                    for count, key in keys_by_shard.get(hot, ())
                    if 0 < count < gap and key not in planned_away
                ),
                key=lambda item: (-item[0], str(item[1])),
            )
            if not candidates:
                break
            count, key = candidates[0]
            moved.append((key, hot, cold))
            planned_away.add(key)
            shard_load[hot] -= count
            shard_load[cold] += count
            keys_by_shard.setdefault(cold, []).append((count, key))
        return moved

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def rebalance(self, max_moves: int = 8) -> List[MigrationRecord]:
        """Snapshot load, plan, and enqueue the planned migrations."""
        records = [
            self.migrate(key, dst, src=src)
            for key, src, dst in self.plan_moves(max_moves=max_moves)
        ]
        return records

    def migrate(self, key: Any, dst: int, src: Optional[int] = None) -> MigrationRecord:
        """Enqueue one explicit key move (tests and manual rebalancing)."""
        if src is None:
            src = self.authority.shard_of(key)
        record = MigrationRecord(
            mid=f"{self.client.pid}-m{next(self._counter)}",
            key=key,
            src=src,
            dst=dst,
        )
        self.journal.append(record)
        self._queue.append(record)
        self._pump()
        return record

    def split_key(
        self, key: Any, n: int = 2, dsts: Optional[Sequence[int]] = None
    ) -> SplitRecord:
        """Enqueue a hot-key split of ``key`` into ``n`` fragments.

        ``dsts`` is the per-fragment shard plan; fragment 0 always stays
        on the key's current shard (``split_open`` installs it there), so
        ``dsts[0]`` must be the source.  The default spreads fragments
        round-robin over the shards starting at the source -- with
        ``n >= n_shards`` every shard gets at least one fragment.
        """
        if n < 2:
            raise ValueError("a split needs at least two fragments")
        if key in self.authority.splits:
            raise ValueError(f"{key!r} is already split")
        src = self.authority.shard_of(key)
        if dsts is None:
            dsts = tuple((src + i) % self.authority.n_shards for i in range(n))
        else:
            dsts = tuple(dsts)
        if len(dsts) != n:
            raise ValueError(f"{n} fragments need {n} destinations, got {len(dsts)}")
        if dsts[0] != src:
            raise ValueError(
                f"fragment 0 stays on the source shard {src}, plan says {dsts[0]}"
            )
        record = SplitRecord(
            sid=f"{self.client.pid}-s{next(self._counter)}",
            key=key,
            frags=self.splitter.fragment_keys(key, n),
            dsts=dsts,
            src=src,
        )
        self.journal.append(record)
        self._queue.append(record)
        self._pump()
        return record

    def unsplit_key(self, key: Any) -> UnsplitRecord:
        """Enqueue the merge of a split key back into one logical key.

        Fragments that migrated away from fragment 0's current shard are
        first moved home by ordinary migrations queued ahead of the
        merge (the one-at-a-time queue serializes them), then a single
        ``split_close`` on the home shard recombines the states and the
        table unsplits in one epoch bump.
        """
        placements = self.authority.fragments_of(key)
        if placements is None:
            raise ValueError(f"{key!r} is not split")
        frags = tuple(frag for frag, _shard in placements)
        home = self.authority.shard_of(frags[0])
        for frag in frags:
            if self.authority.shard_of(frag) != home:
                self.migrate(frag, home)
        record = UnsplitRecord(
            sid=f"{self.client.pid}-u{next(self._counter)}",
            key=key,
            frags=frags,
            home=home,
        )
        self.journal.append(record)
        self._queue.append(record)
        self._pump()
        return record

    def schedule(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` (typically migrate/rebalance calls) at absolute
        simulated time ``when``, holding the run open until it fires.

        Scheduling migration kicks with a raw simulator timer is a
        quiescence race: a run whose drivers finish *before* ``when``
        looks done (nothing active, nothing queued), the harness drops
        into its grace window, and the migrations either never complete
        or silently race the run teardown.  Routing the timer through
        the coordinator counts it in ``_pending_starts``, which
        :attr:`done` already respects.
        """
        self._pending_starts += 1

        def fire() -> None:
            self._pending_starts -= 1
            action()
            # The action usually enqueues migrations itself; _pump is
            # idempotent and covers actions that only mutated the queue.
            self._pump()

        delay = max(0.0, when - self.env.now)
        self.env.set_timer(delay, fire)

    def enable_auto_trigger(
        self,
        check_interval: float = 25.0,
        ratio: float = 3.0,
        sustain: int = 2,
        min_load: float = 10.0,
        max_moves: int = 8,
        split_n: int = 0,
    ) -> None:
        """Fire rebalances automatically on *sustained* load imbalance.

        Replaces scheduled-time-only kicks (ROADMAP open item): every
        ``check_interval`` simulated time units the coordinator
        snapshots the decayed per-key load counters, aggregates them by
        the authority's current routing, and scores the imbalance as
        ``hottest shard load / coldest shard load``.  When the ratio
        stays at or above ``ratio`` for ``sustain`` consecutive ticks --
        a momentary spike (one hot burst, a migration mid-flight
        shuffling counters) must not trigger churn -- and no migration
        is already active, it plans and enqueues a rebalance.

        ``min_load`` is the hottest shard's minimum snapshot load for a
        tick to count: the decayed counters are near zero at start-up
        and between bursts, where any division would be noise.  The tick
        uses a raw timer on purpose (unlike :meth:`schedule`): a pending
        *policy poll* must not hold the run open -- only actual planned
        work does.

        ``split_n > 0`` arms **auto-splitting**: when the sustained
        imbalance is caused by a single key so dominant that
        :meth:`plan_moves` finds nothing to move (no candidate is
        lighter than the hot/cold gap), the hottest unsplit key is split
        into ``split_n`` fragments instead of giving up --
        migration moves heat around, splitting is the only lever that
        *divides* it.
        """
        if check_interval <= 0:
            raise ValueError("check_interval must be > 0")
        if ratio <= 1.0:
            raise ValueError("ratio must be > 1 (hot/cold imbalance factor)")
        if sustain < 1:
            raise ValueError("sustain must be >= 1")
        if split_n == 1 or split_n < 0:
            raise ValueError("split_n must be 0 (disabled) or >= 2")
        self._auto = {
            "interval": check_interval,
            "ratio": ratio,
            "sustain": sustain,
            "min_load": min_load,
            "max_moves": max_moves,
            "split_n": split_n,
        }
        self._auto_strikes = 0
        self._schedule_auto_tick()

    def _schedule_auto_tick(self) -> None:
        def tick() -> None:
            if self._auto is None or self.client.crashed:
                return
            self._auto_check()
            self._schedule_auto_tick()

        self.env.set_timer(self._auto["interval"], tick)

    def imbalance_ratio(
        self, load: Optional[Dict[Any, float]] = None
    ) -> Tuple[float, float, float]:
        """(hot/cold ratio, hottest load, coldest load) per current routing.

        A shard with zero observed load makes the ratio ``inf`` whenever
        the hottest shard saw anything at all -- maximal imbalance, not
        a division error.
        """
        if load is None:
            load = self.snapshot_key_load()
        shard_load = [0.0] * self.authority.n_shards
        shard_of = self.authority.shard_of
        for key, count in load.items():
            shard_load[shard_of(key)] += count
        hot = max(shard_load)
        cold = min(shard_load)
        if hot <= 0.0:
            return 1.0, hot, cold
        return (hot / cold if cold > 0.0 else float("inf")), hot, cold

    def _auto_check(self) -> None:
        """One policy tick: update the strike counter, maybe rebalance."""
        auto = self._auto
        load = self.snapshot_key_load()
        ratio, hot, _cold = self.imbalance_ratio(load)
        if hot < auto["min_load"] or ratio < auto["ratio"]:
            self._auto_strikes = 0
            return
        self._auto_strikes += 1
        self.env.trace(
            "rebalance_strike",
            strikes=self._auto_strikes,
            ratio=round(ratio, 3) if ratio != float("inf") else "inf",
        )
        if self._auto_strikes < auto["sustain"]:
            return
        if not self.done:
            # Migrations already queued/active: *defer* -- keep the
            # accumulated strikes so the rebalance fires on the first
            # over-threshold tick after the queue drains, instead of
            # making the hot shard re-earn the whole sustain window.
            return
        self._auto_strikes = 0
        records = [
            self.migrate(key, dst, src=src)
            for key, src, dst in self.plan_moves(load, max_moves=auto["max_moves"])
        ]
        if records:
            self.auto_rebalances += 1
            self.env.trace(
                "rebalance_auto", moves=len(records), ratio=round(ratio, 3)
                if ratio != float("inf") else "inf",
            )
        elif auto["split_n"]:
            # Sustained imbalance but nothing movable: a single dominant
            # key defeats the planner (its load exceeds the hot/cold
            # gap).  Split it.
            self._auto_split(load, auto)

    def _auto_split(self, load: Dict[Any, float], auto: Dict[str, Any]) -> None:
        parent_of = self.splitter.parent_key
        shard_load: Dict[int, float] = {}
        shard_of = self.authority.shard_of
        for key, count in load.items():
            shard = shard_of(key)
            shard_load[shard] = shard_load.get(shard, 0.0) + count
        hot_shard = max(shard_load, key=lambda s: (shard_load[s], -s))
        candidates = [
            (count, key)
            for key, count in load.items()
            if count >= auto["min_load"]
            and shard_of(key) == hot_shard  # split heat, never a cold key
            and key not in self.authority.splits
            and parent_of(key) is None  # never split a fragment
        ]
        if not candidates:
            return
        count, key = max(candidates, key=lambda item: (item[0], str(item[1])))
        self.auto_splits += 1
        self.env.trace(
            "split_auto", key=key, load=round(count, 3), n=auto["split_n"]
        )
        self.split_key(key, auto["split_n"])

    def resume(self, journal: Iterable[Any]) -> None:
        """Adopt a crashed coordinator's journal and finish its work.

        Terminal records are kept for the books; every other migration
        record is re-driven from a ``mig_status`` probe so the recovery
        is idempotent no matter where the crash hit.  Split records
        resume from the phases whose effects are replicated: a split
        that never opened restarts, one that already committed the table
        re-drives the escrow GC; a split caught *between* open and
        table-commit is surfaced as an abort (its fragment states are
        safe in the source's replicated escrow, where the conservation
        checker accounts for them) rather than silently half-finished.
        """
        for record in journal:
            self.journal.append(record)
            if record.terminal:
                continue
            if isinstance(record, SplitRecord):
                if record.phase == "planned" or record.key in self.authority.splits:
                    self._queue.append(record)
                else:
                    record.phase = "aborted"
                    record.error = "coordinator crashed mid-split"
                    self.splits_aborted += 1
                continue
            if isinstance(record, UnsplitRecord):
                record.phase = "planned"
                self._queue.append(record)
                continue
            self._resuming.add(record.mid)
            self._queue.append(record)
        self._pump()

    # ------------------------------------------------------------------
    # The migration state machine (driven by adoptions)
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        if self._active is not None or not self._queue:
            return
        self._active = self._queue.popleft()
        self._start(self._active)

    def _advance(self) -> None:
        self._active = None
        self._pump()

    def _start(self, record: Any) -> None:
        if isinstance(record, SplitRecord):
            self._start_split(record)
            return
        if isinstance(record, UnsplitRecord):
            self._start_unsplit(record)
            return
        if record.mid in self._resuming:
            self.env.trace(
                "mig_resume", mid=record.mid, key=record.key, from_phase=record.phase
            )
            record.phase = "recovering"
            self._submit(("mig_status", record.mid), record.src, "src_status")
            return
        record.phase = "preparing"
        self.env.trace(
            "mig_begin",
            mid=record.mid,
            key=record.key,
            src=record.src,
            dst=record.dst,
        )
        self._submit(
            ("mig_prepare", record.mid, record.key, record.dst),
            record.src,
            "prepare",
        )

    def _submit(
        self, op: Tuple[Any, ...], shard: int, stage: str, ctx: Any = None
    ) -> None:
        rid = self.client.submit_to_shard(op, shard)
        self._stage_of[rid] = (stage, ctx)

    def _on_adopt(self, adopted: AdoptedReply) -> None:
        staged = self._stage_of.pop(adopted.rid, None)
        record = self._active
        if staged is None or record is None:
            return
        stage, ctx = staged
        result = adopted.value
        if not isinstance(result, OpResult):
            raise RuntimeError(f"rebalancer: non-OpResult adoption {adopted!r}")
        handler = getattr(self, f"_on_{stage}")
        handler(record, result, ctx)

    # -- normal path ----------------------------------------------------

    def _on_prepare(
        self, record: MigrationRecord, result: OpResult, _ctx: Any = None
    ) -> None:
        if result.ok:
            record.state = result.value[1]  # ("exported", state)
            record.phase = "installing"
            self.env.trace("mig_prepared", mid=record.mid, key=record.key)
            self._submit(
                ("mig_install", record.mid, record.key, record.state),
                record.dst,
                "install",
            )
            return
        if "already prepared" in result.error:
            # An earlier prepare for this mid won the race -- typically
            # one that was still in flight across a crash/recovery
            # hand-off and got totally ordered after the status probe
            # answered "unknown".  The state is in the source's escrow;
            # re-probe and continue from there instead of aborting.
            self._submit(("mig_status", record.mid), record.src, "src_status")
            return
        record.attempts += 1
        record.error = result.error
        if record.attempts < self.max_attempts:
            # Transient veto (e.g. an escrow hold on the account): try
            # the same migration again after a pause.
            self.env.set_timer(self.retry_delay, lambda: self._retry(record))
            return
        self._abort(record)

    def _retry(self, record: MigrationRecord) -> None:
        if self._active is record and not record.terminal:
            self._start(record)

    def _abort(self, record: MigrationRecord) -> None:
        record.phase = "aborted"
        self.moves_aborted += 1
        self.env.trace(
            "mig_abort", mid=record.mid, key=record.key, reason=record.error
        )
        self._advance()

    def _on_install(
        self, record: MigrationRecord, result: OpResult, _ctx: Any = None
    ) -> None:
        if not result.ok:
            # Install can only fail on ownership/config errors; surface
            # it as an abort (the exported state stays in the source's
            # escrow, where the migration checker will point at it).
            record.error = result.error
            self._abort(record)
            return
        self.env.trace("mig_installed", mid=record.mid, key=record.key)
        self._commit(record)

    def _commit_table(self, record: MigrationRecord) -> None:
        """Route the key to its new home and trace the commit.

        Idempotent under recovery: the epoch is only bumped if the
        table does not already route the key to the destination.
        """
        if self.authority.shard_of(record.key) != record.dst:
            epoch = self.authority.move(record.key, record.dst)
        else:
            epoch = self.authority.epoch
        self.env.trace(
            "mig_commit",
            mid=record.mid,
            key=record.key,
            dst=record.dst,
            epoch=epoch,
        )

    def _commit(self, record: MigrationRecord) -> None:
        self._commit_table(record)
        record.phase = "forgetting"
        self._submit(("mig_forget", record.mid), record.src, "forget")

    def _on_forget(
        self, record: MigrationRecord, result: OpResult, _ctx: Any = None
    ) -> None:
        record.phase = "done"
        self.moves_committed += 1
        self.env.trace("mig_done", mid=record.mid, key=record.key)
        self._advance()

    # -- hot-key splits --------------------------------------------------

    def _start_split(self, record: SplitRecord) -> None:
        if record.phase == "forgetting":
            # Resumed past the table commit: only escrow GC is left.
            self._submit_split_forgets(record)
            return
        record.phase = "splitting"
        self.env.trace(
            "split_begin",
            sid=record.sid,
            key=record.key,
            frags=record.frags,
            dsts=record.dsts,
        )
        self._submit(
            ("split_open", record.sid, record.key, record.frags, record.dsts),
            record.src,
            "split_open",
        )

    def _on_split_open(
        self, record: SplitRecord, result: OpResult, _ctx: Any = None
    ) -> None:
        if not result.ok:
            record.attempts += 1
            record.error = result.error
            if record.attempts < self.max_attempts:
                # Transient veto (escrow hold, mid-migration ownership):
                # same pacing as a vetoed mig_prepare.
                self.env.set_timer(self.retry_delay, lambda: self._retry(record))
                return
            self._abort_split(record)
            return
        record.shipped = tuple(result.value[1])  # ("split", shipped)
        record.phase = "installing"
        record.pending = {mid for mid, _frag, _dst, _state in record.shipped}
        self.env.trace("split_opened", sid=record.sid, key=record.key)
        for mid, frag, dst, state in record.shipped:
            self._submit(("mig_install", mid, frag, state), dst, "split_install", ctx=mid)

    def _on_split_install(
        self, record: SplitRecord, result: OpResult, mid: str
    ) -> None:
        if not result.ok:
            # Ownership/config error: the fragment states stay parked in
            # the source's escrow, where the conservation checkers will
            # account for (or flag) them.
            record.error = result.error
            self._abort_split(record)
            return
        record.pending.discard(mid)
        if record.pending:
            return
        # Every fragment is installed where the plan says: commit the
        # whole placement in one epoch bump (idempotent under recovery),
        # then GC the escrow entries.
        if record.key not in self.authority.splits:
            epoch = self.authority.split(
                record.key, tuple(zip(record.frags, record.dsts))
            )
        else:
            epoch = self.authority.epoch
        self.env.trace(
            "split_commit", sid=record.sid, key=record.key, epoch=epoch
        )
        self._submit_split_forgets(record)

    def _submit_split_forgets(self, record: SplitRecord) -> None:
        record.phase = "forgetting"
        mids = [mid for mid, _frag, _dst, _state in record.shipped]
        if not mids:  # defensively: nothing was ever escrowed
            self._finish_split(record)
            return
        record.pending = set(mids)
        for mid in mids:
            self._submit(("mig_forget", mid), record.src, "split_forget", ctx=mid)

    def _on_split_forget(
        self, record: SplitRecord, result: OpResult, mid: str
    ) -> None:
        record.pending.discard(mid)
        if not record.pending:
            self._finish_split(record)

    def _finish_split(self, record: SplitRecord) -> None:
        record.phase = "done"
        self.splits_committed += 1
        self.env.trace("split_done", sid=record.sid, key=record.key)
        self._advance()

    def _abort_split(self, record: SplitRecord) -> None:
        record.phase = "aborted"
        self.splits_aborted += 1
        self.env.trace(
            "split_abort", sid=record.sid, key=record.key, reason=record.error
        )
        self._advance()

    def _start_unsplit(self, record: UnsplitRecord) -> None:
        record.phase = "merging"
        self.env.trace(
            "unsplit_begin", sid=record.sid, key=record.key, home=record.home
        )
        self._submit(
            ("split_close", record.sid, record.key, record.frags),
            record.home,
            "split_close",
        )

    def _on_split_close(
        self, record: UnsplitRecord, result: OpResult, _ctx: Any = None
    ) -> None:
        if not result.ok:
            record.attempts += 1
            record.error = result.error
            if record.attempts < self.max_attempts:
                # A fragment may still carry a borrow's escrow hold, or a
                # stray fragment's homeward migration may have aborted;
                # retry after the usual pause.
                self.env.set_timer(self.retry_delay, lambda: self._retry(record))
                return
            record.phase = "aborted"
            self.env.trace(
                "unsplit_abort", sid=record.sid, key=record.key, reason=record.error
            )
            self._advance()
            return
        if record.key in self.authority.splits:
            epoch = self.authority.unsplit(record.key, record.home)
        else:
            epoch = self.authority.epoch
        record.phase = "done"
        self.unsplits_committed += 1
        self.env.trace(
            "unsplit_done", sid=record.sid, key=record.key, epoch=epoch
        )
        self._advance()

    # -- recovery path --------------------------------------------------

    def _on_src_status(
        self, record: MigrationRecord, result: OpResult, _ctx: Any = None
    ) -> None:
        status = result.value
        if status[0] == "prepared":
            _tag, _key, _dst, state = status
            record.state = state
            record.phase = "installing"
            self._resuming.discard(record.mid)
            self.env.trace("mig_prepared", mid=record.mid, key=record.key)
            self._submit(
                ("mig_install", record.mid, record.key, record.state),
                record.dst,
                "install",
            )
            return
        # Unknown at the source: either never prepared, or already
        # forgotten (fully done).  The destination knows which.
        self._submit(("mig_status", record.mid), record.dst, "dst_status")

    def _on_dst_status(
        self, record: MigrationRecord, result: OpResult, _ctx: Any = None
    ) -> None:
        status = result.value
        self._resuming.discard(record.mid)
        if status[0] == "installed":
            # Unknown at the source but installed at the destination:
            # install and forget both landed before the crash.  Ensure
            # the epoch bump and close the record.
            self.env.trace("mig_installed", mid=record.mid, key=record.key)
            self._commit_resumed_installed(record)
            return
        # Unknown on both sides: the migration never prepared.  Restart
        # it from scratch (the key still lives on the source).
        self._start(record)

    def _commit_resumed_installed(self, record: MigrationRecord) -> None:
        # Install and forget both landed before the crash: nothing left
        # to submit, just ensure the table and close the record.
        self._commit_table(record)
        record.phase = "done"
        self.moves_committed += 1
        self.env.trace("mig_done", mid=record.mid, key=record.key)
        self._advance()


# ----------------------------------------------------------------------
# Harness glue
# ----------------------------------------------------------------------

def attach_rebalancer(
    run: Any,
    pid: str = "rb1",
    start_at: Optional[float] = None,
    max_moves: int = 8,
    retry_delay: float = 10.0,
    max_attempts: int = 5,
    auto: bool = False,
    auto_interval: float = 25.0,
    auto_ratio: float = 3.0,
    auto_sustain: int = 2,
    auto_min_load: float = 10.0,
    auto_split_n: int = 0,
) -> RebalanceCoordinator:
    """Attach a rebalance coordinator (with its own client process) to a
    built :class:`~repro.sharding.cluster.ShardedRun`.

    With ``start_at`` the coordinator snapshots load and rebalances at
    that simulated time (use a warm-up window so the counters mean
    something); with ``auto=True`` it instead polls the decayed load
    counters every ``auto_interval`` and rebalances whenever the
    hot/cold shard imbalance stays >= ``auto_ratio`` for
    ``auto_sustain`` consecutive ticks
    (:meth:`RebalanceCoordinator.enable_auto_trigger`); without either,
    call :meth:`RebalanceCoordinator.rebalance` or
    :meth:`~RebalanceCoordinator.migrate` yourself.  Designed for the
    config's ``arm`` hook::

        ShardedScenarioConfig(..., arm=lambda run: attach_rebalancer(
            run, start_at=150.0))
    """
    from repro.sharding.cluster import _machine_class

    machine_cls = _machine_class(run.config.machine)
    client = ShardedOARClient(
        pid,
        run.shard_groups,
        run.routing_table.copy(),
        key_extractor=machine_cls.keys_of,
        tx_planner=machine_cls.tx_branches,
        retry_interval=run.config.retry_interval,
    )
    run.network.start(client)
    splitter = (
        machine_cls
        if isinstance(machine_cls, type) and issubclass(machine_cls, SplittableMachine)
        else SplittableMachine
    )
    coordinator = RebalanceCoordinator(
        client,
        run.routing_table,
        observed_clients=run.clients,
        retry_delay=retry_delay,
        max_attempts=max_attempts,
        splitter=splitter,
    )
    if start_at is not None:
        # Held open via _pending_starts (see RebalanceCoordinator.
        # schedule): a run whose drivers finish before start_at must
        # not quiesce out from under the scheduled rebalance.
        coordinator.schedule(
            start_at, lambda: coordinator.rebalance(max_moves=max_moves)
        )
    if auto:
        coordinator.enable_auto_trigger(
            check_interval=auto_interval,
            ratio=auto_ratio,
            sustain=auto_sustain,
            min_load=auto_min_load,
            max_moves=max_moves,
            split_n=auto_split_n,
        )
    run.rebalancers.append(coordinator)
    return coordinator
