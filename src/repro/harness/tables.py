"""Plain-text result tables (the paper-shaped benchmark output)."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, List, Sequence


class Table:
    """A fixed-width text table with a title, for benchmark reports."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append([_render_cell(value) for value in values])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        rule = "-" * len(header)
        lines = [self.title, "=" * len(self.title), header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def results_dir() -> Path:
    """Where benchmark reports go.

    By default reports land in ``benchmarks/results/local/`` -- a
    git-ignored scratch directory -- so running the bench suite never
    dirties the working tree (the tracked reports under
    ``benchmarks/results/`` used to be rewritten on every run and kept
    landing as trailing "oops" commits).  Rewriting the *tracked*
    reports is opt-in: pass ``--update-results`` to pytest (or set
    ``REPRO_UPDATE_RESULTS=1``).  ``REPRO_RESULTS_DIR`` overrides the
    destination entirely, update flag or not.
    """
    override = os.environ.get("REPRO_RESULTS_DIR")
    update = os.environ.get("REPRO_UPDATE_RESULTS", "").strip().lower()
    if override:
        path = Path(override)
    elif update not in ("", "0", "false", "no"):
        path = Path.cwd() / "benchmarks" / "results"
    else:
        path = Path.cwd() / "benchmarks" / "results" / "local"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_result(name: str, text: str, echo: bool = True) -> Path:
    """Persist a benchmark report and (by default) print it."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    if echo:
        print(f"\n{text}\n[report written to {path}]")
    return path
