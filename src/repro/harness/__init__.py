"""Experiment harness: scenario builder, runner, and table formatting.

:func:`~repro.harness.scenario.run_scenario` assembles a full simulated
deployment (servers, clients, failure detectors, workload drivers, fault
schedule) from a declarative :class:`~repro.harness.scenario.ScenarioConfig`,
runs it to quiescence, and returns a :class:`~repro.harness.scenario.
ScenarioRun` exposing the trace, the protocol objects and one-call access
to every correctness checker.  All benchmarks, integration tests and
examples are built on it.
"""

from repro.harness.scenario import (
    ScenarioConfig,
    ScenarioRun,
    build_scenario,
    run_scenario,
)
from repro.harness.tables import Table, write_result
from repro.sharding import (
    ShardedRun,
    ShardedScenarioConfig,
    build_sharded_scenario,
    run_sharded_scenario,
)

__all__ = [
    "ScenarioConfig",
    "ScenarioRun",
    "ShardedRun",
    "ShardedScenarioConfig",
    "Table",
    "build_scenario",
    "build_sharded_scenario",
    "run_scenario",
    "run_sharded_scenario",
    "write_result",
]
