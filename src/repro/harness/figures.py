"""Figure-exact reproductions of the paper's illustrative runs.

Each ``run_figure_*`` function builds the precise scenario of the
corresponding figure -- same group size, same message arrival orders, same
crash/suspicion timing -- on the deterministic simulator, executes it and
returns a :class:`FigureRun` whose fields the tests and benchmarks assert
against the figure's outcome:

* **Figure 1(a)** -- sequencer-based Atomic Broadcast, good run: the
  replicated stack delivers ``pop`` then ``push(x)`` everywhere; the
  client's adopted ``pop -> y`` is consistent.
* **Figure 1(b)** -- sequencer-based Atomic Broadcast, inconsistent run:
  the sequencer delivers ``pop -> y``, replies, and crashes before its
  ordering message leaves; the new sequencer orders ``push(x)`` first, so
  the surviving replicas' ``pop`` returns ``x`` -- the client has adopted
  a reply that contradicts the service's final state (external
  inconsistency).
* **Figure 2** -- OAR, failure-free: two sequencer batches
  ``{m1;m2}`` and ``{m3;m4;m5}``, everything Opt-delivered, no phase 2.
* **Figure 3** -- OAR, sequencer crash without Opt-undelivery: the crash
  leaves only p2 with the ordering of ``{m3;m4}``; since the majority
  {p1, p2} Opt-delivered m3 before m4, Cnsv-order keeps that order and p3
  simply A-delivers ``{m3;m4}``.
* **Figure 4** -- OAR, sequencer crash *with* Opt-undelivery: four
  servers, only p2 received the ordering of ``{m3;m4}``; p3/p4 (wrongly)
  suspect p2 as well and the consensus decision excludes p2's optimistic
  sequence; Cnsv-order returns ``Bad = {m3;m4}``, ``New = {m4;m3}`` at
  p2, which rolls back and re-delivers in the agreed order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.broadcast.sequencer import OrderMsg, SequencerAtomicBroadcastServer
from repro.core.client import OARClient
from repro.core.messages import SeqOrder
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import ScriptedFailureDetector
from repro.faults.injection import crash_during_multicast
from repro.replication.active import FirstReplyClient
from repro.sim.latency import ConstantLatency, PerLinkLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.trace import TraceLog
from repro.statemachine import CounterMachine, StackMachine


@dataclass
class FigureRun:
    """The outcome of one figure-exact scenario."""

    name: str
    sim: Simulator
    network: SimNetwork
    servers: List[Any]
    clients: List[Any]
    detectors: Dict[str, ScriptedFailureDetector] = field(default_factory=dict)

    @property
    def trace(self) -> TraceLog:
        return self.network.trace

    @property
    def correct_servers(self) -> List[Any]:
        return [s for s in self.servers if not s.crashed]

    def server(self, pid: str) -> Any:
        return next(s for s in self.servers if s.pid == pid)

    def adopted(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for client in self.clients:
            merged.update(client.adopted)
        return merged

    def opt_delivered(self, pid: str, epoch: int = 0) -> Tuple[str, ...]:
        return tuple(
            event["rid"]
            for event in self.trace.events(kind="opt_deliver", pid=pid)
            if event["epoch"] == epoch
        )

    def a_delivered(self, pid: str, epoch: Optional[int] = None) -> Tuple[str, ...]:
        return tuple(
            event["rid"]
            for event in self.trace.events(kind="a_deliver", pid=pid)
            if epoch is None or event["epoch"] == epoch
        )

    def opt_undelivered(self, pid: str) -> Tuple[str, ...]:
        return tuple(
            event["rid"]
            for event in self.trace.events(kind="opt_undeliver", pid=pid)
        )


# ----------------------------------------------------------------------
# OAR scenarios (Figures 2, 3, 4)
# ----------------------------------------------------------------------

def _build_oar(
    n_servers: int,
    n_clients: int,
    seed: int,
    latency: Any = None,
    config: Optional[OARConfig] = None,
) -> FigureRun:
    sim = Simulator(seed=seed)
    network = SimNetwork(
        sim, latency=latency or ConstantLatency(1.0), trace_messages=False
    )
    group = [f"p{i + 1}" for i in range(n_servers)]
    detectors: Dict[str, ScriptedFailureDetector] = {}
    servers: List[OARServer] = []
    for pid in group:
        fd = ScriptedFailureDetector()
        detectors[pid] = fd
        server = OARServer(
            pid, group, CounterMachine(), fd, config or OARConfig()
        )
        servers.append(server)
        network.add_process(server)
    clients: List[OARClient] = []
    for index in range(n_clients):
        client = OARClient(f"c{index + 1}", group)
        clients.append(client)
        network.add_process(client)
    network.start_all()
    return FigureRun(
        name="oar",
        sim=sim,
        network=network,
        servers=servers,
        clients=clients,
        detectors=detectors,
    )


def run_figure_2(seed: int = 0) -> FigureRun:
    """OAR with no failure nor suspicion (Figure 2).

    Five requests in two sequencer batches ({m1;m2} then {m3;m4;m5});
    every server Opt-delivers all five in the same order; phase 2 never
    runs.
    """
    run = _build_oar(
        n_servers=3,
        n_clients=1,
        seed=seed,
        config=OARConfig(batch_interval=2.0),
    )
    run.name = "figure2"
    client = run.clients[0]
    # First batch arrives before the t=2 ordering tick, second before t=4.
    run.sim.schedule_at(0.2, lambda: client.submit(("incr",)))  # m1
    run.sim.schedule_at(0.3, lambda: client.submit(("incr",)))  # m2
    run.sim.schedule_at(2.2, lambda: client.submit(("incr",)))  # m3
    run.sim.schedule_at(2.3, lambda: client.submit(("incr",)))  # m4
    run.sim.schedule_at(2.4, lambda: client.submit(("incr",)))  # m5
    run.sim.run(until=30.0, max_events=100_000)
    return run


def run_figure_3(seed: int = 0) -> FigureRun:
    """OAR with the crash of the sequencer, but no Opt-undelivery (Figure 3).

    Three servers.  p1 orders {m1;m2} (delivered everywhere), then orders
    {m3;m4} but crashes mid-multicast so only p2 receives the ordering.
    The majority {p1, p2} Opt-delivered m3 before m4, so Cnsv-order
    returns Bad = ε everywhere; p3 A-delivers {m3;m4}.
    """
    run = _build_oar(
        n_servers=3,
        n_clients=1,
        seed=seed,
        config=OARConfig(batch_interval=2.0, consensus_collect="majority"),
    )
    run.name = "figure3"
    client = run.clients[0]
    run.sim.schedule_at(0.2, lambda: client.submit(("incr",)))  # m1
    run.sim.schedule_at(0.3, lambda: client.submit(("incr",)))  # m2
    run.sim.schedule_at(2.2, lambda: client.submit(("incr",)))  # m3
    run.sim.schedule_at(2.3, lambda: client.submit(("incr",)))  # m4

    def is_second_batch(payload: Any) -> bool:
        return isinstance(payload, SeqOrder) and len(payload.rids) == 2 and (
            payload.rids[0].endswith("-2")
        )

    crash_during_multicast(
        run.network, "p1", is_second_batch, deliver_to={"p2"}, crash=True
    )

    def suspect_p1() -> None:
        for pid in ("p2", "p3"):
            run.detectors[pid].force_suspect("p1")

    run.sim.schedule_at(8.0, suspect_p1)
    run.sim.run(until=60.0, max_events=200_000)
    return run


def run_figure_4(seed: int = 0, config: Optional[OARConfig] = None) -> FigureRun:
    """OAR with the crash of the sequencer and Opt-undelivery (Figure 4).

    Four servers.  Only p2 receives the ordering of {m3;m4}; the network
    partitions {p1, p2} away from {p3, p4}, which also wrongly suspect
    p2.  The Cnsv-order consensus (footnote-5 "unsuspected" estimate
    collection) decides from p3/p4's proposals only; their merged
    not-yet-delivered order is {m4;m3}, so p2 must Opt-undeliver m4 and
    m3 and re-deliver in the agreed order {m4;m3}.

    ``config`` overrides the protocol knobs while keeping the figure's
    required batching and footnote-5 consensus collection (used to
    replay the scenario under the execution service model, where the
    doomed suffix is undone while it may still be in a lane).
    """
    # m3 (from c1) reaches p3 slowly; m4 (from c2) reaches p3 first, so
    # p3 proposes O_notdelivered = {m4;m3} while p4 proposes {m3;m4}.
    latency = PerLinkLatency(
        ConstantLatency(1.0), {("c1", "p3"): ConstantLatency(3.0)}
    )
    if config is None:
        config = OARConfig(batch_interval=2.0, consensus_collect="unsuspected")
    else:
        config = replace(
            config, batch_interval=2.0, consensus_collect="unsuspected"
        )
    run = _build_oar(
        n_servers=4,
        n_clients=2,
        seed=seed,
        latency=latency,
        config=config,
    )
    run.name = "figure4"
    c1, c2 = run.clients
    run.sim.schedule_at(0.20, lambda: c1.submit(("incr",)))  # m1
    run.sim.schedule_at(0.30, lambda: c2.submit(("incr",)))  # m2
    run.sim.schedule_at(2.20, lambda: c1.submit(("incr",)))  # m3
    run.sim.schedule_at(2.25, lambda: c2.submit(("incr",)))  # m4

    def is_second_batch(payload: Any) -> bool:
        return isinstance(payload, SeqOrder) and len(payload.rids) == 2 and (
            "c1-1" in payload.rids
        )

    crash_during_multicast(
        run.network, "p1", is_second_batch, deliver_to={"p2"}, crash=True
    )

    def isolate_minority() -> None:
        run.network.set_partition([
            ["p1", "p2"],
            ["p3", "p4", "c1", "c2"],
        ])
        # p3 and p4 suspect the whole minority; p2 suspects only p1.
        for pid in ("p3", "p4"):
            run.detectors[pid].force_suspect("p1")
            run.detectors[pid].force_suspect("p2")
        run.detectors["p2"].force_suspect("p1")

    run.sim.schedule_at(8.0, isolate_minority)
    run.sim.schedule_at(40.0, run.network.heal)
    run.sim.run(until=120.0, max_events=400_000)
    return run


# ----------------------------------------------------------------------
# Sequencer-baseline scenarios (Figure 1)
# ----------------------------------------------------------------------

def _build_sequencer_stack(
    seed: int,
    latency: Any = None,
) -> FigureRun:
    sim = Simulator(seed=seed)
    network = SimNetwork(
        sim, latency=latency or ConstantLatency(1.0), trace_messages=False
    )
    group = ["p1", "p2", "p3"]
    detectors: Dict[str, ScriptedFailureDetector] = {}
    servers: List[SequencerAtomicBroadcastServer] = []
    for pid in group:
        fd = ScriptedFailureDetector()
        detectors[pid] = fd
        machine = StackMachine()
        machine.apply(("push", "y"))  # the figure's initial stack [y]
        server = SequencerAtomicBroadcastServer(pid, group, machine, fd)
        servers.append(server)
        network.add_process(server)
    clients: List[FirstReplyClient] = []
    for cid in ("c1", "c2"):
        client = FirstReplyClient(cid, group, reliable=False)
        clients.append(client)
        network.add_process(client)
    network.start_all()
    return FigureRun(
        name="sequencer-stack",
        sim=sim,
        network=network,
        servers=servers,
        clients=clients,
        detectors=detectors,
    )


def run_figure_1a(seed: int = 0) -> FigureRun:
    """Sequencer-based Atomic Broadcast, good run (Figure 1(a)).

    Initial stack [y].  c2's pop and c1's push(x) are sequenced
    (pop; push): every replica's pop returns y, the stack ends as [x] --
    all replies consistent.
    """
    run = _build_sequencer_stack(seed=seed)
    run.name = "figure1a"
    c1, c2 = run.clients
    run.sim.schedule_at(0.10, lambda: c2.submit(("pop",)))      # arrives first
    run.sim.schedule_at(0.30, lambda: c1.submit(("push", "x")))
    run.sim.run(until=30.0, max_events=100_000)
    return run


def run_figure_1b(seed: int = 0) -> FigureRun:
    """Sequencer-based Atomic Broadcast, inconsistent run (Figure 1(b)).

    The sequencer p1 delivers pop (reply y to c2), but crashes before its
    ordering message reaches p2/p3.  The new sequencer p2 orders what it
    sees -- push(x) first (c2's pop reaches p2 late) -- so p2/p3 deliver
    (push; pop) and their pop returns x.  The client c2 has already
    adopted y: an external inconsistency, and the replicas' stacks
    diverge from p1's.
    """
    latency = PerLinkLatency(
        ConstantLatency(1.0), {("c2", "p2"): ConstantLatency(2.5)}
    )
    run = _build_sequencer_stack(seed=seed, latency=latency)
    run.name = "figure1b"
    c1, c2 = run.clients
    pop_rid = "c2-0"
    run.sim.schedule_at(0.10, lambda: c2.submit(("pop",)))
    run.sim.schedule_at(0.30, lambda: c1.submit(("push", "x")))

    def is_pop_order(payload: Any) -> bool:
        return isinstance(payload, OrderMsg) and payload.rid == pop_rid

    crash_during_multicast(
        run.network, "p1", is_pop_order, deliver_to=set(), crash=True
    )

    def suspect_p1() -> None:
        for pid in ("p2", "p3"):
            run.detectors[pid].force_suspect("p1")

    run.sim.schedule_at(5.0, suspect_p1)
    run.sim.run(until=40.0, max_events=100_000)
    return run


def run_figure_1b_with_oar(seed: int = 0) -> FigureRun:
    """The Figure 1(b) scenario executed by OAR instead of the baseline.

    Same service (stack [y]), same request interleaving, same sequencer
    crash before any ordering escapes, same suspicion timing.  With OAR
    the client cannot adopt the doomed optimistic reply (its weight stays
    below majority); it adopts the conservative reply that matches the
    surviving replicas -- external consistency (Proposition 7).
    """
    sim = Simulator(seed=seed)
    latency = PerLinkLatency(
        ConstantLatency(1.0), {("c2", "p2"): ConstantLatency(2.5)}
    )
    network = SimNetwork(sim, latency=latency)
    group = ["p1", "p2", "p3"]
    detectors: Dict[str, ScriptedFailureDetector] = {}
    servers: List[OARServer] = []
    for pid in group:
        fd = ScriptedFailureDetector()
        detectors[pid] = fd
        machine = StackMachine()
        machine.apply(("push", "y"))
        server = OARServer(pid, group, machine, fd, OARConfig())
        servers.append(server)
        network.add_process(server)
    clients = [OARClient("c1", group), OARClient("c2", group)]
    for client in clients:
        network.add_process(client)
    network.start_all()
    run = FigureRun(
        name="figure1b-oar",
        sim=sim,
        network=network,
        servers=servers,
        clients=clients,
        detectors=detectors,
    )
    c1, c2 = clients
    pop_rid = "c2-0"
    sim.schedule_at(0.10, lambda: c2.submit(("pop",)))
    sim.schedule_at(0.30, lambda: c1.submit(("push", "x")))

    def is_pop_order(payload: Any) -> bool:
        return isinstance(payload, SeqOrder) and pop_rid in payload.rids

    crash_during_multicast(
        network, "p1", is_pop_order, deliver_to=set(), crash=True
    )

    def suspect_p1() -> None:
        for pid in ("p2", "p3"):
            detectors[pid].force_suspect("p1")

    sim.schedule_at(5.0, suspect_p1)
    sim.run(until=60.0, max_events=200_000)
    return run
