"""Declarative scenario construction and execution.

A :class:`ScenarioConfig` describes a complete deployment: protocol,
group size, state machine, latency model, failure detector, workload and
fault schedule.  :func:`run_scenario` builds it on a fresh deterministic
simulator, runs it to quiescence (all submitted requests adopted) plus a
grace period, and returns a :class:`ScenarioRun` with everything the
checkers, benchmarks and examples need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis import checkers
from repro.broadcast.ct_abcast import CTAtomicBroadcastServer
from repro.broadcast.sequencer import SequencerAtomicBroadcastServer
from repro.core.admission import TokenBucket
from repro.core.client import OARClient
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import (
    FailureDetector,
    HeartbeatFailureDetector,
    ScriptedFailureDetector,
)
from repro.faults.injection import FaultSchedule
from repro.replication.active import FirstReplyClient
from repro.replication.passive import PassiveReplicationServer
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.process import Process
from repro.sim.trace import TraceLog
from repro.statemachine import (
    BankMachine,
    CounterMachine,
    KVStoreMachine,
    StackMachine,
)
from repro.workload.drivers import ClosedLoopDriver, OpenLoopDriver
from repro.workload.openloop import PoissonProcess, SessionedOpenLoopDriver
from repro.workload.generators import (
    bank_ops,
    counter_ops,
    kv_ops,
    read_heavy_kv_ops,
    stack_ops,
)

PROTOCOLS = ("oar", "sequencer", "ct", "passive")
MACHINES = ("counter", "stack", "kv", "bank")


@dataclass
class ScenarioConfig:
    """Everything needed to reproduce one experiment run."""

    protocol: str = "oar"
    n_servers: int = 3
    n_clients: int = 1
    requests_per_client: int = 20
    machine: str = "counter"
    seed: int = 0

    #: One-way link delay model; None = constant 1.0 (one phase per hop).
    latency: Optional[LatencyModel] = None

    #: "heartbeat" (live ◇S implementation) or "scripted" (suspicions are
    #: injected explicitly -- used by figure-exact scenarios).
    fd_kind: str = "heartbeat"
    fd_interval: float = 5.0
    fd_timeout: float = 15.0

    #: OAR-specific knobs (ignored by other protocols).
    oar: OARConfig = field(default_factory=OARConfig)

    #: How clients execute read-only operations: None defers to
    #: ``oar.read_mode`` (default "sequencer", the paper's base
    #: protocol); "optimistic" / "conservative" enable the
    #: replica-local read path (OAR protocol only).
    read_mode: Optional[str] = None

    #: Replica execution service model overrides: None defers to
    #: ``oar.exec_cost`` / ``oar.exec_lanes`` (default: free inline
    #: execution).  Setting them here builds the servers with a
    #: per-operation execution cost and that many conflict-scheduled
    #: worker lanes (benchmark B13).
    exec_cost: Optional[float] = None
    exec_lanes: Optional[int] = None

    #: When set (kv machine only), the workload becomes the Zipf-skewed
    #: read-heavy mix of ``read_heavy_kv_ops`` with this read fraction
    #: over ``n_keys`` keys -- the B12 read-scaling workload.
    read_ratio: Optional[float] = None
    n_keys: int = 16
    zipf_s: float = 1.2

    #: "closed" (latency-oriented), "open" (Poisson arrivals at
    #: ``open_rate`` requests/time-unit per client) or "session" (the
    #: overload harness: an arrival process multiplexing ``n_sessions``
    #: logical sessions per client, optional client-side token bucket,
    #: streaming latency recorder -- see ``repro.workload.openloop``).
    driver: str = "closed"
    open_rate: float = 0.2
    think_time: float = 0.0
    #: All drivers start submitting at this time (warm-up windowing:
    #: B14 starts drivers after its topology change commits).
    driver_start_at: float = 0.0
    #: Session-driver knobs: the arrival process (None = Poisson at
    #: ``open_rate``), sessions per client, the client-side token bucket
    #: (``client_rate`` None disables throttling), and the warm-up cut
    #: for the latency recorder (ops submitted before ``measure_from``
    #: are excluded from percentiles).
    arrival: Optional[Any] = None
    n_sessions: int = 64
    client_rate: Optional[float] = None
    client_burst: float = 8.0
    measure_from: float = 0.0
    #: Admission-control overrides: None defers to the ``oar`` config
    #: (default: disabled; see ``OARConfig.admission_limit``).
    admission_limit: Optional[int] = None
    read_queue_limit: Optional[int] = None
    #: Client retransmission pacing (lost replies / crashed read
    #: targets); None disables retransmission.
    retry_interval: Optional[float] = None

    fault_schedule: Optional[FaultSchedule] = None

    #: Link-fault-plane installer; called with the built
    #: :class:`~repro.sim.network.SimNetwork` right after construction
    #: (e.g. ``lambda net: install_uniform_faults(net, drop=0.05)``).
    faults: Optional[Callable[[SimNetwork], None]] = None

    #: Hook for surgical fault injection; called with the built
    #: :class:`ScenarioRun` before the simulation starts (e.g. to arm a
    #: crash-during-multicast interceptor).
    arm: Optional[Callable[["ScenarioRun"], None]] = None

    #: Simulated-time and event budget.
    horizon: float = 10_000.0
    max_events: int = 2_000_000
    grace: float = 50.0
    trace_messages: bool = False
    #: "full" keeps the checker-grade protocol trace; "off" disables all
    #: tracing (zero-waste mode for throughput/soak runs -- ``check_all``
    #: and trace-based metrics need "full").
    trace_level: str = "full"

    def with_changes(self, **changes: Any) -> "ScenarioConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **changes)


@dataclass
class ScenarioRun:
    """A built (and, after ``execute``, completed) scenario."""

    config: ScenarioConfig
    sim: Simulator
    network: SimNetwork
    servers: List[Any]
    clients: List[Any]
    drivers: List[Any]
    detectors: Dict[str, FailureDetector]

    @property
    def trace(self) -> TraceLog:
        return self.network.trace

    @property
    def server_pids(self) -> List[str]:
        return [server.pid for server in self.servers]

    @property
    def correct_servers(self) -> List[Any]:
        return [s for s in self.servers if not s.crashed]

    def submitted_rids(self) -> List[str]:
        return [rid for driver in self.drivers for rid in driver.submitted]

    def adopted(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for client in self.clients:
            merged.update(client.adopted)
        return merged

    def latencies(self) -> List[float]:
        return [event["latency"] for event in self.trace.events(kind="adopt")]

    def all_done(self) -> bool:
        """Drivers finished and every live replica drained its exec lanes.

        A run is not quiescent while a live server still holds delivered
        operations in its execution engine: the machine state (and the
        outstanding replies) would still change.  Crashed servers never
        drain and are excluded, matching crash-stop semantics.
        """
        if not all(driver.done for driver in self.drivers):
            return False
        return not any(
            getattr(server, "exec_backlog", 0)
            for server in self.servers
            if not server.crashed
        )

    # ------------------------------------------------------------------

    def execute(self) -> "ScenarioRun":
        """Run to quiescence (+ grace period); returns self for chaining."""
        config = self.config
        if config.fault_schedule is not None:
            config.fault_schedule.apply(
                self.network, list(self.detectors.values())
            )
        if config.arm is not None:
            config.arm(self)
        deadline = config.horizon
        sim = self.sim
        drivers = self.drivers
        servers = self.servers

        def finished() -> bool:
            # Horizon first: it is one float compare, the driver sweep is
            # not, and this predicate runs after every event.
            if sim._now >= deadline:
                return True
            for driver in drivers:
                if not driver.done:
                    return False
            for server in servers:
                # Execution lanes still busy on a live replica: state is
                # still changing, keep running.
                if not server.crashed and getattr(server, "exec_backlog", 0):
                    return False
            return True

        sim.run_until(finished, max_events=config.max_events)
        # Grace: let replies/settlements in flight land before checking.
        sim.run(until=sim.now + config.grace, max_events=config.max_events)
        return self

    # ------------------------------------------------------------------
    # Checker bundle
    # ------------------------------------------------------------------

    def check_all(self, strict: bool = True, at_least_once: bool = True) -> None:
        """Assert every applicable paper property over this run's trace."""
        trace = self.trace
        if self.config.protocol == "oar":
            checkers.check_cnsv_order_properties(trace, len(self.servers))
            checkers.check_majority_guarantee(trace, len(self.servers))
            checkers.check_at_most_once(trace, self.servers)
            checkers.check_total_order(self.servers)
            checkers.check_replica_convergence(self.servers)
            checkers.check_external_consistency(trace, strict=strict)
            if at_least_once and self.all_done():
                # Replica-local reads are never delivered by servers --
                # they are answered, not ordered -- so they are not
                # subject to the delivery-based at-least-once property.
                # Shed requests likewise: refused deterministically,
                # deliberately never ordered.
                excluded = set()
                for client in self.clients:
                    excluded |= getattr(client, "read_rids", set())
                    excluded |= getattr(client, "shed_rids", set())
                ordered = [
                    rid for rid in self.submitted_rids() if rid not in excluded
                ]
                checkers.check_at_least_once(
                    trace, self.correct_servers, ordered
                )
            checkers.check_read_consistency(
                trace,
                self.servers,
                lambda: _make_machine(self.config.machine),
            )
            checkers.check_fault_plane_accounting(trace, self.network)
            checkers.check_admission_accounting(
                trace, self.servers, self.clients, self.drivers
            )
        else:
            checkers.check_replica_convergence(self.servers)
            checkers.check_fault_plane_accounting(trace, self.network)


_MACHINE_CLASSES = {
    "counter": CounterMachine,
    "stack": StackMachine,
    "kv": KVStoreMachine,
    "bank": BankMachine,
}


def _make_machine(kind: str) -> Any:
    if kind == "bank":  # the bank starts with seeded accounts
        return BankMachine({"alice": 1_000, "bob": 1_000, "carol": 1_000})
    cls = _MACHINE_CLASSES.get(kind)
    if cls is None:
        raise ValueError(f"unknown machine kind: {kind} (choose from {MACHINES})")
    return cls()


def _make_ops(config: ScenarioConfig, rng: random.Random) -> Iterator[Tuple[Any, ...]]:
    kind = config.machine
    if kind == "counter":
        return counter_ops()
    if kind == "stack":
        return stack_ops(rng)
    if kind == "kv":
        if config.read_ratio is not None:
            keys = tuple(f"k{i:03d}" for i in range(config.n_keys))
            return read_heavy_kv_ops(
                rng, keys, s=config.zipf_s, read_ratio=config.read_ratio
            )
        return kv_ops(rng)
    if kind == "bank":
        return bank_ops(rng)
    raise ValueError(f"unknown machine kind: {kind}")


def build_scenario(config: ScenarioConfig) -> ScenarioRun:
    """Construct (but do not run) the deployment described by ``config``."""
    if config.protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown protocol: {config.protocol} (choose from {PROTOCOLS})"
        )
    sim = Simulator(seed=config.seed)
    latency = config.latency if config.latency is not None else ConstantLatency(1.0)
    network = SimNetwork(
        sim,
        latency=latency,
        trace_messages=config.trace_messages,
        trace_level=config.trace_level,
    )
    if config.faults is not None:
        config.faults(network)

    oar_config = config.oar.with_exec_overrides(
        config.exec_cost, config.exec_lanes
    ).with_admission_overrides(config.admission_limit, config.read_queue_limit)
    group = [f"p{i + 1}" for i in range(config.n_servers)]
    detectors: Dict[str, FailureDetector] = {}

    def fd_factory(host: Process) -> FailureDetector:
        if config.fd_kind == "heartbeat":
            detector: FailureDetector = HeartbeatFailureDetector(
                host,
                monitored=group,
                interval=config.fd_interval,
                timeout=config.fd_timeout,
            )
        elif config.fd_kind == "scripted":
            detector = ScriptedFailureDetector()
        else:
            raise ValueError(f"unknown fd kind: {config.fd_kind}")
        detectors[host.pid] = detector
        return detector

    servers: List[Any] = []
    for pid in group:
        machine = _make_machine(config.machine)
        if config.protocol == "oar":
            server: Any = OARServer(pid, group, machine, fd_factory, oar_config)
        elif config.protocol == "sequencer":
            server = SequencerAtomicBroadcastServer(pid, group, machine, fd_factory)
        elif config.protocol == "ct":
            server = CTAtomicBroadcastServer(pid, group, machine, fd_factory)
        else:
            server = PassiveReplicationServer(pid, group, machine, fd_factory)
        servers.append(server)
        network.add_process(server)

    read_mode = config.read_mode or config.oar.read_mode
    clients: List[Any] = []
    for index in range(config.n_clients):
        cid = f"c{index + 1}"
        if config.protocol == "oar":
            client: Any = OARClient(
                cid,
                group,
                retry_interval=config.retry_interval,
                read_mode=read_mode,
                is_read_only=_MACHINE_CLASSES[config.machine].is_read_only,
            )
        else:
            reliable = config.protocol == "ct"
            client = FirstReplyClient(cid, group, reliable=reliable)
        clients.append(client)
        network.add_process(client)

    network.start_all()

    drivers: List[Any] = []
    for index, client in enumerate(clients):
        ops_rng = sim.child_rng(f"ops/{client.pid}")
        ops = _make_ops(config, ops_rng)
        if config.driver == "closed":
            driver: Any = ClosedLoopDriver(
                sim,
                client,
                ops,
                total=config.requests_per_client,
                think_time=config.think_time,
                start_at=config.driver_start_at,
            )
        elif config.driver == "open":
            driver = OpenLoopDriver(
                sim,
                client,
                ops,
                total=config.requests_per_client,
                rate=config.open_rate,
                rng=sim.child_rng(f"arrivals/{client.pid}"),
                start_at=config.driver_start_at,
            )
        elif config.driver == "session":
            bucket = (
                TokenBucket(config.client_rate, burst=config.client_burst)
                if config.client_rate is not None
                else None
            )
            driver = SessionedOpenLoopDriver(
                sim,
                client,
                ops,
                total=config.requests_per_client,
                arrival=(
                    config.arrival
                    if config.arrival is not None
                    else PoissonProcess(config.open_rate)
                ),
                rng=sim.child_rng(f"arrivals/{client.pid}"),
                n_sessions=config.n_sessions,
                start_at=config.driver_start_at,
                bucket=bucket,
                measure_from=config.measure_from,
            )
        else:
            raise ValueError(f"unknown driver kind: {config.driver}")
        drivers.append(driver)

    return ScenarioRun(
        config=config,
        sim=sim,
        network=network,
        servers=servers,
        clients=clients,
        drivers=drivers,
        detectors=detectors,
    )


def run_scenario(config: ScenarioConfig) -> ScenarioRun:
    """Build and execute a scenario; the usual one-call entry point."""
    return build_scenario(config).execute()
