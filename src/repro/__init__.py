"""repro -- a reproduction of "Optimistic Active Replication"
(Felber & Schiper, ICDCS 2001).

The package implements the OAR protocol and every substrate it depends on,
entirely in Python:

* :mod:`repro.core` -- the OAR client/server and the Cnsv-order
  conservative ordering (the paper's contribution, Figures 5-7).
* :mod:`repro.sim` -- a deterministic discrete-event simulator providing
  the asynchronous system model (reliable FIFO channels, crashes,
  partitions).
* :mod:`repro.failure` -- ◇S-style failure detectors.
* :mod:`repro.broadcast` -- reliable multicast, plus the two Atomic
  Broadcast baselines the paper positions itself against (sequencer-based
  and consensus-based).
* :mod:`repro.consensus` -- Chandra-Toueg ◇S consensus with the
  Maj-validity modification.
* :mod:`repro.statemachine` -- deterministic, undoable replicated state
  machines (stack, key-value store, counter, bank).
* :mod:`repro.replication` -- classic active and passive replication
  baselines.
* :mod:`repro.sharding` -- partitioned state machines: N independent OAR
  groups behind a deterministic key router, with a client-coordinated
  two-phase escrow commit for cross-shard operations.
* :mod:`repro.analysis` -- trace checkers for the paper's propositions.
* :mod:`repro.workload`, :mod:`repro.harness` -- workload generation and
  the experiment harness behind every benchmark.
* :mod:`repro.runtime` -- an asyncio host for the same protocol code
  (wall-clock measurements).

Quickstart::

    from repro import ScenarioConfig, run_scenario

    run = run_scenario(ScenarioConfig(protocol="oar", n_servers=3,
                                      n_clients=2, requests_per_client=10))
    run.check_all()                  # assert the paper's guarantees
    print(run.latencies())           # client-perceived latencies
"""

from repro.core import (
    AdoptedReply,
    MessageSequence,
    OARClient,
    OARConfig,
    OARServer,
    ShardedOARClient,
    common_prefix,
    compute_bad_new,
    merge_dedup,
)
from repro.harness import (
    ScenarioConfig,
    ScenarioRun,
    ShardedRun,
    ShardedScenarioConfig,
    run_scenario,
    run_sharded_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "AdoptedReply",
    "MessageSequence",
    "OARClient",
    "OARConfig",
    "OARServer",
    "ScenarioConfig",
    "ScenarioRun",
    "ShardedOARClient",
    "ShardedRun",
    "ShardedScenarioConfig",
    "common_prefix",
    "compute_bad_new",
    "merge_dedup",
    "run_scenario",
    "run_sharded_scenario",
    "__version__",
]
