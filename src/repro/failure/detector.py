"""Heartbeat and scripted failure detectors.

See :mod:`repro.failure` for the ◇S properties these provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Set

from repro.sim.component import Component
from repro.sim.process import Process

#: Listener signature: (pid, suspected) -- called on every transition.
SuspicionListener = Callable[[str, bool], None]


def resolve_fd(fd_or_factory: object, host: Process) -> "FailureDetector":
    """Accept either a detector instance or a ``host -> detector`` factory.

    Heartbeat detectors need their host process (they send through its
    environment), which creates a chicken-and-egg problem for callers
    building a server: pass a factory and the server resolves it against
    itself.
    """
    if isinstance(fd_or_factory, FailureDetector):
        return fd_or_factory
    if callable(fd_or_factory):
        return fd_or_factory(host)
    raise TypeError(f"not a failure detector or factory: {fd_or_factory!r}")


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Periodic liveness message exchanged between group members."""

    seq: int


class FailureDetector:
    """Common interface: query suspicions, subscribe to transitions."""

    def __init__(self) -> None:
        self._suspected: Set[str] = set()
        self._listeners: List[SuspicionListener] = []

    @property
    def suspects(self) -> Set[str]:
        """The current suspicion set D_p (a copy)."""
        return set(self._suspected)

    def is_suspected(self, pid: str) -> bool:
        """True while ``pid`` is in the suspicion set."""
        return pid in self._suspected

    def add_listener(self, listener: SuspicionListener) -> None:
        """Subscribe to (pid, suspected) transitions."""
        self._listeners.append(listener)

    def _transition(self, pid: str, suspected: bool) -> None:
        if suspected and pid not in self._suspected:
            self._suspected.add(pid)
        elif not suspected and pid in self._suspected:
            self._suspected.discard(pid)
        else:
            return
        for listener in list(self._listeners):
            listener(pid, suspected)


class ScriptedFailureDetector(FailureDetector):
    """A failure detector entirely driven by the experiment script.

    Used by the figure-exact reproductions: the scenario decides exactly
    when each process starts suspecting the sequencer, with no heartbeat
    traffic perturbing the run.
    """

    def force_suspect(self, pid: str) -> None:
        """Inject a suspicion (the experiment script plays the oracle)."""
        self._transition(pid, True)

    def force_unsuspect(self, pid: str) -> None:
        """Retract an injected suspicion."""
        self._transition(pid, False)


class HeartbeatFailureDetector(FailureDetector, Component):
    """◇S-style heartbeat failure detector.

    Every ``interval`` the owner sends a heartbeat to all monitored
    processes and checks, per monitored process, whether the last
    heartbeat from it is older than that process's current timeout.  A
    false suspicion (heartbeat received while suspected) multiplies the
    offender's timeout by ``backoff``, which yields eventual weak accuracy
    once timeouts exceed the real (post-stabilization) message delays.

    Parameters
    ----------
    host:
        The owning process (heartbeats are sent through its environment).
    monitored:
        The peers to watch (the rest of the group, typically).
    interval:
        Heartbeat period, in time units.
    timeout:
        Initial suspicion timeout.  Values close to the actual network
        delay produce aggressive (fast but mistake-prone) detection --
        the trade-off the paper discusses in Section 2.2.
    backoff:
        Multiplicative timeout increase after each false suspicion.
    """

    MESSAGE_TYPES = (Heartbeat,)

    def __init__(
        self,
        host: Process,
        monitored: Iterable[str],
        interval: float = 5.0,
        timeout: float = 15.0,
        backoff: float = 2.0,
    ) -> None:
        FailureDetector.__init__(self)
        Component.__init__(self, host)
        if interval <= 0 or timeout <= 0 or backoff < 1.0:
            raise ValueError("invalid failure-detector parameters")
        self.monitored = [pid for pid in monitored if pid != host.pid]
        self.interval = interval
        self.backoff = backoff
        self._timeout: Dict[str, float] = {pid: timeout for pid in self.monitored}
        self._last_heard: Dict[str, float] = {}
        self._sticky: Set[str] = set()
        self._seq = 0
        self._started = False

    def start(self) -> None:
        """Begin heartbeating; call from the host's ``on_start``."""
        if self._started or not self.monitored:
            return
        self._started = True
        now = self.env.now
        for pid in self.monitored:
            self._last_heard[pid] = now
        self._tick()

    def force_suspect(self, pid: str, sticky: bool = True) -> None:
        """Inject a (possibly wrong) suspicion; sticky ones ignore heartbeats."""
        if sticky:
            self._sticky.add(pid)
        self._transition(pid, True)

    def force_unsuspect(self, pid: str) -> None:
        """Retract a (possibly sticky) injected suspicion."""
        self._sticky.discard(pid)
        self._transition(pid, False)

    def current_timeout(self, pid: str) -> float:
        """The adaptive suspicion timeout currently applied to ``pid``."""
        return self._timeout[pid]

    def on_message(self, src: str, payload: Heartbeat) -> None:
        """Record liveness; recant (and widen) on a false suspicion."""
        self._last_heard[src] = self.env.now
        if self.is_suspected(src) and src not in self._sticky:
            # False suspicion: recant and widen this process's timeout.
            self._timeout[src] = self._timeout.get(src, self.interval) * self.backoff
            self._transition(src, False)

    def _tick(self) -> None:
        self._seq += 1
        beat = Heartbeat(self._seq)
        now = self.env.now
        for pid in self.monitored:
            self.env.send(pid, beat)
            silent_for = now - self._last_heard.get(pid, now)
            if silent_for > self._timeout[pid] and not self.is_suspected(pid):
                self._transition(pid, True)
        self.env.set_timer(self.interval, self._tick)
