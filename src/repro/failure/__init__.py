"""Failure detection (the ◇S oracle of the paper's system model).

The paper assumes an asynchronous system augmented with the failure
detector ◇S [CT96], which provides:

* **Strong completeness** -- every crashed process is eventually suspected
  by every correct process.
* **Eventual weak accuracy** -- eventually some correct process is never
  suspected by any correct process.

:class:`~repro.failure.detector.HeartbeatFailureDetector` realizes these
properties in the simulated (and asyncio) network through periodic
heartbeats with an adaptively increasing timeout.
:class:`~repro.failure.detector.ScriptedFailureDetector` gives experiments
byte-exact control over *when* suspicions happen, which is how the
figure-exact scenario reproductions trigger phase 2 at precise instants.
"""

from repro.failure.detector import (
    FailureDetector,
    Heartbeat,
    HeartbeatFailureDetector,
    ScriptedFailureDetector,
)

__all__ = [
    "FailureDetector",
    "Heartbeat",
    "HeartbeatFailureDetector",
    "ScriptedFailureDetector",
]
