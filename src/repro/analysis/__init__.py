"""Trace analysis: correctness checkers and statistics.

The paper's guarantees -- the Cnsv-order specification (Section 5.4), the
majority guarantee (Section 4) and Propositions 1-7 (Section 5.6,
Appendix A) -- are implemented here as machine-checkable predicates over
run traces.  Integration tests and the property-based scenario fuzzer
assert them over thousands of randomized fault schedules; the benchmark
harness uses them to score protocols (e.g. counting external
inconsistencies of the sequencer baseline vs. OAR).
"""

from repro.analysis.checkers import (
    CheckFailure,
    check_at_least_once,
    check_at_most_once,
    check_cnsv_order_properties,
    check_cross_shard_atomicity,
    check_external_consistency,
    check_majority_guarantee,
    check_replica_convergence,
    check_single_shard_properties,
    check_total_order,
    count_baseline_inconsistencies,
    reconstruct_delivered,
    subtrace,
)
from repro.analysis.stats import LatencyStats, latencies_from_trace, summarize
from repro.analysis.timeline import describe_run, render_timeline

__all__ = [
    "CheckFailure",
    "LatencyStats",
    "check_at_least_once",
    "check_at_most_once",
    "check_cnsv_order_properties",
    "check_cross_shard_atomicity",
    "check_external_consistency",
    "check_majority_guarantee",
    "check_replica_convergence",
    "check_single_shard_properties",
    "check_total_order",
    "count_baseline_inconsistencies",
    "describe_run",
    "latencies_from_trace",
    "reconstruct_delivered",
    "render_timeline",
    "subtrace",
    "summarize",
]
