"""ASCII space-time diagrams of protocol runs.

Renders a trace the way the paper draws its figures: one horizontal lane
per process, time flowing right, with markers for the protocol events.
Used by the examples and by ``benchmarks/results`` reports to make the
scenario runs directly comparable with Figures 1-4 of the paper.

Marker legend (see :data:`MARKERS`):

====== ===========================================
``.``  R-deliver (request received)
``s``  sequencer sends an ordering message
``o``  Opt-deliver (paper: white diamond)
``A``  A-deliver (conservative delivery)
``x``  Opt-undeliver (paper: grey diamond)
``P``  PhaseII starts (conservative phase entered)
``X``  crash
``^``  client submits
``*``  client adopts a reply
``!``  client retransmits
====== ===========================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import TraceLog

#: event kind -> (marker, description)
MARKERS: Dict[str, Tuple[str, str]] = {
    "r_deliver": (".", "R-deliver"),
    "seq_order": ("s", "sequencer orders"),
    "opt_deliver": ("o", "Opt-deliver"),
    "a_deliver": ("A", "A-deliver"),
    "opt_undeliver": ("x", "Opt-undeliver"),
    "phase2_start": ("P", "PhaseII"),
    "crash": ("X", "crash"),
    "submit": ("^", "submit"),
    "adopt": ("*", "adopt"),
    "retransmit": ("!", "retransmit"),
}


def render_timeline(
    trace: TraceLog,
    pids: Sequence[str],
    width: int = 72,
    start: Optional[float] = None,
    end: Optional[float] = None,
    kinds: Optional[Sequence[str]] = None,
    legend: bool = True,
) -> str:
    """Render one lane per pid over ``[start, end]`` in ``width`` columns.

    Events that would land on an occupied column slide right to the next
    free one, so dense bursts stay readable at the cost of slight
    horizontal distortion (the relative order is always preserved).
    """
    wanted = set(kinds) if kinds is not None else set(MARKERS)
    events = [
        event
        for event in trace
        if event.kind in wanted and event.pid in set(pids)
    ]
    if not events:
        return "(no events to draw)"

    t_min = start if start is not None else min(e.time for e in events)
    t_max = end if end is not None else max(e.time for e in events)
    if t_max <= t_min:
        t_max = t_min + 1.0
    span = t_max - t_min

    label_width = max(len(pid) for pid in pids) + 1
    lanes: Dict[str, List[str]] = {pid: ["-"] * width for pid in pids}
    crashed_at: Dict[str, int] = {}

    for event in sorted(events, key=lambda e: e.time):
        if not t_min <= event.time <= t_max:
            continue
        column = int((event.time - t_min) / span * (width - 1))
        lane = lanes[event.pid]
        while column < width and lane[column] != "-":
            column += 1
        if column >= width:
            column = width - 1
        marker = MARKERS[event.kind][0]
        lane[column] = marker
        if event.kind == "crash":
            crashed_at[event.pid] = column

    # After a crash, blank the rest of the lane (the paper truncates the
    # process line).
    for pid, column in crashed_at.items():
        lane = lanes[pid]
        for index in range(column + 1, width):
            if lane[index] == "-":
                lane[index] = " "

    lines = []
    for pid in pids:
        lines.append(f"{pid:>{label_width}} {''.join(lanes[pid])}")

    axis = f"{'':>{label_width}} t={t_min:<8.1f}" + " " * max(
        0, width - 20
    ) + f"t={t_max:.1f}"
    lines.append(axis)

    if legend:
        used = {event.kind for event in events}
        parts = [
            f"{MARKERS[kind][0]}={MARKERS[kind][1]}"
            for kind in MARKERS
            if kind in used
        ]
        lines.append("")
        lines.append("legend: " + "  ".join(parts))
    return "\n".join(lines)


def describe_run(trace: TraceLog, pids: Sequence[str]) -> str:
    """A compact textual synopsis to accompany a timeline."""
    counts: Dict[str, int] = {}
    for event in trace:
        if event.kind in MARKERS:
            counts[event.kind] = counts.get(event.kind, 0) + 1
    epochs = sorted(
        {event["epoch"] for event in trace.events(kind="phase2_start")}
    )
    parts = [
        f"{MARKERS[kind][1]}: {counts[kind]}"
        for kind in MARKERS
        if kind in counts
    ]
    summary = ", ".join(parts)
    if epochs:
        summary += f"; conservative phases in epoch(s) {epochs}"
    return summary
