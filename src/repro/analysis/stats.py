"""Latency statistics helpers for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (simulated time units)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    stddev: float

    def row(self) -> str:
        """One formatted table row (used by the bench harness)."""
        return (
            f"n={self.count:5d}  mean={self.mean:7.3f}  p50={self.median:7.3f}  "
            f"p95={self.p95:7.3f}  p99={self.p99:7.3f}  min={self.minimum:7.3f}  "
            f"max={self.maximum:7.3f}"
        )


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (no numpy dependency needed here)."""
    if not values:
        raise ValueError("empty sample")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def summarize(values: Sequence[float]) -> LatencyStats:
    """Compute :class:`LatencyStats` over a non-empty sample."""
    if not values:
        raise ValueError("empty sample")
    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / count
    return LatencyStats(
        count=count,
        mean=mean,
        median=percentile(values, 0.5),
        p95=percentile(values, 0.95),
        p99=percentile(values, 0.99),
        minimum=min(values),
        maximum=max(values),
        stddev=math.sqrt(variance),
    )


def latencies_from_trace(trace: TraceLog) -> List[float]:
    """Client-perceived latencies of every adoption in the trace."""
    return [event["latency"] for event in trace.events(kind="adopt")]


def adoption_breakdown(trace: TraceLog) -> Dict[str, int]:
    """How many adoptions were optimistic vs. conservative."""
    optimistic = 0
    conservative = 0
    for event in trace.events(kind="adopt"):
        if event.get("conservative"):
            conservative += 1
        else:
            optimistic += 1
    return {"optimistic": optimistic, "conservative": conservative}
