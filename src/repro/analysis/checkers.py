"""Machine-checkable forms of the paper's correctness properties.

Every checker takes the run's :class:`~repro.sim.trace.TraceLog` (plus
whatever protocol objects it needs) and raises :class:`CheckFailure` with
a precise description on violation.  Checkers are pure functions of the
trace so they work identically for simulator and asyncio runs.

Mapping to the paper:

=============================  =============================================
Paper statement                Checker
=============================  =============================================
Cnsv-order spec (Section 5.4)  :func:`check_cnsv_order_properties`
Majority guarantee (Sec. 4)    :func:`check_majority_guarantee`
Prop. 2/3 (at most once)       :func:`check_at_most_once`
Prop. 4 (at least once)        :func:`check_at_least_once`
Prop. 5 (total order)          :func:`check_total_order`,
                               :func:`check_replica_convergence`
Prop. 7 (external consistency) :func:`check_external_consistency`
Fig. 1(b) anomaly (baseline)   :func:`count_baseline_inconsistencies`
=============================  =============================================
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.sequences import MessageSequence, as_sequence, common_prefix
from repro.sim.trace import TraceEvent, TraceLog
from repro.statemachine.base import SplittableMachine


class CheckFailure(AssertionError):
    """A correctness property of the paper was violated by the run."""


#: Sentinel: a delivery event whose execution result is unknown (the op
#: was delivered but its lane never completed before the run was cut
#: off); such events are exempt from value comparisons.
_MISSING = object()


# ----------------------------------------------------------------------
# Trace reconstruction helpers
# ----------------------------------------------------------------------

def reconstruct_delivered(trace: TraceLog, pid: str) -> List[str]:
    """Replay a server's delivery events into its final delivered sequence.

    ``opt_deliver`` appends, ``opt_undeliver`` must remove the *last*
    element (the paper's footnote 2 reverse-order discipline -- enforced
    here), ``a_deliver`` appends.  The result must equal the server's
    ``current_order``; :func:`check_at_most_once` verifies both.
    """
    delivered: List[str] = []
    # The kind index keeps this O(delivery events) even on traces that
    # are dominated by other kinds (message-level tracing, heartbeats).
    deliveries = trace.events_of_kinds(
        ("opt_deliver", "a_deliver", "opt_undeliver"), pid=pid
    )
    for event in deliveries:
        if event.kind == "opt_deliver":
            delivered.append(event["rid"])
        elif event.kind == "a_deliver":
            delivered.append(event["rid"])
        elif event.kind == "opt_undeliver":
            if not delivered or delivered[-1] != event["rid"]:
                raise CheckFailure(
                    f"{pid}: opt_undeliver({event['rid']}) does not undo the "
                    f"last delivery (tail={delivered[-3:]})"
                )
            delivered.pop()
    return delivered


def settled_epochs(trace: TraceLog, pid: str) -> Set[int]:
    """Epochs whose phase 2 completed at ``pid`` (epoch e+1 started)."""
    started = {event["epoch"] for event in trace.events(kind="epoch_start", pid=pid)}
    return {epoch - 1 for epoch in started if epoch >= 1}


def _epoch_opt_orders(trace: TraceLog, epoch: int) -> Dict[str, List[str]]:
    """Per-server optimistic delivery order during one epoch."""
    orders: Dict[str, List[str]] = defaultdict(list)
    for event in trace.events(kind="opt_deliver"):
        if event["epoch"] == epoch:
            orders[event.pid].append(event["rid"])
    return dict(orders)


# ----------------------------------------------------------------------
# Cnsv-order specification (Section 5.4)
# ----------------------------------------------------------------------

def check_cnsv_order_properties(trace: TraceLog, group_size: int) -> int:
    """Validate every Cnsv-order invocation in the trace.

    Returns the number of epochs checked.  Checks Agreement, Unicity,
    Non-triviality, Validity, Undo legality, Undo consistency and Undo
    thriftiness; Termination is implied by the run reaching quiescence
    with matching propose/result pairs (also asserted).
    """
    majority = group_size // 2 + 1
    proposals: Dict[int, Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]] = (
        defaultdict(dict)
    )
    results: Dict[int, Dict[str, TraceEvent]] = defaultdict(dict)
    for event in trace.events(kind="cnsv_propose"):
        proposals[event["epoch"]][event.pid] = (
            tuple(event["o_delivered"]),
            tuple(event["o_notdelivered"]),
        )
    for event in trace.events(kind="cnsv_order"):
        results[event["epoch"]][event.pid] = event

    crashed = {event.pid for event in trace.events(kind="crash")}

    for epoch, per_pid in sorted(results.items()):
        finals: Dict[str, MessageSequence] = {}
        for pid, event in per_pid.items():
            o_dlv = as_sequence(event["o_delivered"])
            bad = as_sequence(event["bad"])
            new = as_sequence(event["new"])
            good = o_dlv.subtract(bad)
            finals[pid] = good.concat(new)

            # Unicity: New ∩ (O_delivered ⊖ Bad) = ∅.
            if new.to_set() & good.to_set():
                raise CheckFailure(
                    f"unicity violated at {pid} epoch {epoch}: "
                    f"New={new!r} overlaps Good={good!r}"
                )
            # Undo legality: Bad is the suffix of O_delivered.
            if good.concat(bad) != o_dlv:
                raise CheckFailure(
                    f"undo legality violated at {pid} epoch {epoch}: "
                    f"(O⊖Bad)⊕Bad = {good.concat(bad)!r} != O = {o_dlv!r}"
                )
            # Undo thriftiness: ⊓(Bad, New) = ε.
            if common_prefix(bad, new):
                raise CheckFailure(
                    f"undo thriftiness violated at {pid} epoch {epoch}: "
                    f"Bad={bad!r} New={new!r}"
                )
            # Validity: every New message was proposed by someone.
            proposed_union: Set[str] = set()
            for dlv, notdlv in proposals[epoch].values():
                proposed_union |= set(dlv) | set(notdlv)
            leftovers = new.to_set() - proposed_union
            if leftovers:
                raise CheckFailure(
                    f"validity violated at {pid} epoch {epoch}: "
                    f"New contains unproposed {sorted(leftovers)}"
                )

        # Agreement: identical final sequences across completing processes.
        distinct = {seq.items for seq in finals.values()}
        if len(distinct) > 1:
            raise CheckFailure(
                f"agreement violated in epoch {epoch}: {finals!r}"
            )

        # Non-triviality: anything held by a majority is delivered.
        ownership: Dict[str, int] = defaultdict(int)
        for dlv, notdlv in proposals[epoch].values():
            for rid in set(dlv) | set(notdlv):
                ownership[rid] += 1
        final_set = next(iter(finals.values())).to_set() if finals else set()
        for rid, holders in ownership.items():
            if holders >= majority and rid not in final_set:
                raise CheckFailure(
                    f"non-triviality violated in epoch {epoch}: {rid} held "
                    f"by {holders} >= {majority} processes but not delivered"
                )

        # Undo consistency: an undone message was Opt-delivered by at most
        # a minority (counted over *all* processes, including crashed
        # ones, via their opt_deliver events).
        opt_orders = _epoch_opt_orders(trace, epoch)
        for pid, event in per_pid.items():
            for rid in event["bad"]:
                holders = sum(1 for order in opt_orders.values() if rid in order)
                if holders >= majority:
                    raise CheckFailure(
                        f"undo consistency violated at {pid} epoch {epoch}: "
                        f"{rid} undone but Opt-delivered by {holders} processes"
                    )

        # Termination (finite-run form): every correct proposer got a result.
        for pid in proposals[epoch]:
            if pid not in per_pid and pid not in crashed:
                raise CheckFailure(
                    f"termination violated in epoch {epoch}: {pid} proposed "
                    f"but never received a Cnsv-order result"
                )

    return len(results)


# ----------------------------------------------------------------------
# Majority guarantee (Section 4)
# ----------------------------------------------------------------------

def check_majority_guarantee(trace: TraceLog, group_size: int) -> int:
    """If a majority Opt-delivered m1 before m2, nobody delivers m2 first.

    Checked per epoch against every server's *final* delivered sequence
    (reconstructed from the trace).  Returns the number of (epoch, pair)
    combinations examined.
    """
    majority = group_size // 2 + 1
    pids = {event.pid for event in trace.events(kind="opt_deliver")}
    pids |= {event.pid for event in trace.events(kind="a_deliver")}
    final_orders = {pid: reconstruct_delivered(trace, pid) for pid in pids}

    epochs = sorted(
        {event["epoch"] for event in trace.events(kind="opt_deliver")}
    )
    examined = 0
    for epoch in epochs:
        opt_orders = list(_epoch_opt_orders(trace, epoch).values())
        rids = sorted({rid for order in opt_orders for rid in order})
        for i, m1 in enumerate(rids):
            for m2 in rids[i + 1:]:
                before = sum(
                    1
                    for order in opt_orders
                    if m1 in order and m2 in order
                    and order.index(m1) < order.index(m2)
                )
                examined += 1
                if before < majority:
                    continue
                for pid, order in final_orders.items():
                    if m1 in order and m2 in order:
                        if order.index(m2) < order.index(m1):
                            raise CheckFailure(
                                f"majority guarantee violated: majority "
                                f"Opt-delivered {m1} before {m2} in epoch "
                                f"{epoch}, but {pid} delivered {m2} first"
                            )
    return examined


# ----------------------------------------------------------------------
# Propositions 2/3/4: at-most-once, at-least-once
# ----------------------------------------------------------------------

def check_at_most_once(trace: TraceLog, servers: Iterable[Any]) -> None:
    """No request is (finally) delivered twice; traces match server state."""
    for server in servers:
        delivered = reconstruct_delivered(trace, server.pid)
        if len(delivered) != len(set(delivered)):
            duplicates = [rid for rid in set(delivered) if delivered.count(rid) > 1]
            raise CheckFailure(
                f"{server.pid}: duplicate deliveries of {duplicates}"
            )
        state_order = _server_order(server)
        if tuple(delivered) != state_order:
            raise CheckFailure(
                f"{server.pid}: trace-reconstructed order {delivered} "
                f"differs from server state {state_order}"
            )


def check_at_least_once(
    trace: TraceLog,
    correct_servers: Iterable[Any],
    submitted_rids: Iterable[str],
) -> None:
    """Every submitted request is delivered at every correct server.

    Valid only for quiescent runs (the property is an "eventually").
    """
    expected = set(submitted_rids)
    for server in correct_servers:
        delivered = set(reconstruct_delivered(trace, server.pid))
        missing = expected - delivered
        if missing:
            raise CheckFailure(
                f"{server.pid}: requests never delivered: {sorted(missing)}"
            )


# ----------------------------------------------------------------------
# Proposition 5: total order / replica convergence
# ----------------------------------------------------------------------

def _server_order(server: Any) -> Tuple[str, ...]:
    """A server's full delivery order, protocol-agnostic."""
    if hasattr(server, "current_order"):
        return tuple(server.current_order.items)
    return tuple(server.delivered_order)


def check_total_order(servers: Sequence[Any]) -> None:
    """Correct servers' delivery orders are prefix-related (equal at quiescence)."""
    alive = [s for s in servers if not s.crashed]
    orders = {s.pid: _server_order(s) for s in alive}
    pids = sorted(orders)
    for i, p in enumerate(pids):
        for q in pids[i + 1:]:
            a, b = orders[p], orders[q]
            shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
            if longer[: len(shorter)] != shorter:
                raise CheckFailure(
                    f"total order violated between {p} and {q}: "
                    f"{a} vs {b}"
                )


def check_replica_convergence(servers: Sequence[Any]) -> None:
    """Correct servers with equal delivery orders have identical state.

    Servers with a non-empty execution backlog are skipped: with the
    parallel execution engine (``OARConfig.exec_cost > 0``) delivery and
    execution are separate instants, so a run cut off mid-flight can
    leave a replica's delivery order complete but its state mutations
    still queued in lanes -- lagging, not diverged.  Quiescent runs
    (``all_done``) have drained every live replica's lanes, so there the
    check is exactly as strong as before.
    """
    alive = [
        s
        for s in servers
        if not s.crashed and not getattr(s, "exec_backlog", 0)
    ]
    by_order: Dict[Tuple[str, ...], List[Any]] = defaultdict(list)
    for server in alive:
        by_order[_server_order(server)].append(server)
    for order, group in by_order.items():
        fingerprints = {repr(s.machine.fingerprint()) for s in group}
        if len(fingerprints) > 1:
            raise CheckFailure(
                f"replicas with identical order {order} diverge in state: "
                f"{[(s.pid, s.machine.fingerprint()) for s in group]}"
            )


# ----------------------------------------------------------------------
# Proposition 7: external consistency
# ----------------------------------------------------------------------

def check_external_consistency(
    trace: TraceLog,
    strict: bool = True,
) -> int:
    """Every adopted reply agrees with what the servers (finally) delivered.

    For each client ``adopt`` event, every ``a_deliver`` of the same
    request anywhere must carry the same position and value, and every
    ``opt_deliver`` that is never undone in its epoch must too.

    ``strict=False`` tolerates mismatching *optimistic* deliveries in
    epochs that had not settled at that server by the end of the run (the
    undo that Proposition 7 promises simply had not happened yet); the
    relaxed mode is for runs cut off mid-recovery.  Returns the number of
    adoptions checked.
    """
    adoptions = trace.events(kind="adopt")
    # Proposition 7 quantifies over *correct* processes: a crashed
    # process may well have Opt-delivered in a doomed order and died
    # before the undo -- that is exactly the Figure 4 sequencer.
    crashed = {event.pid for event in trace.events(kind="crash")}
    a_delivers: Dict[str, List[TraceEvent]] = defaultdict(list)
    for event in trace.events(kind="a_deliver"):
        if event.pid not in crashed:
            a_delivers[event["rid"]].append(event)
    opt_delivers: Dict[str, List[TraceEvent]] = defaultdict(list)
    for event in trace.events(kind="opt_deliver"):
        if event.pid not in crashed:
            opt_delivers[event["rid"]].append(event)
    undone: Set[Tuple[str, str, int]] = {
        (event.pid, event["rid"], event["epoch"])
        for event in trace.events(kind="opt_undeliver")
    }
    settled_cache: Dict[str, Set[int]] = {}

    # Lane-interleaved traces (OARConfig.exec_cost > 0) split a delivery
    # into the delivery event (order and position, no value) and an
    # ``exec_done`` event carrying the result; join the values back.  A
    # delivery with no execution (cut off mid-flight, or its undo raced
    # the run end) keeps _MISSING and is exempt from the value
    # comparison -- its position claim is still checked.
    exec_values: Dict[Tuple[str, str, int, bool], Any] = {
        (event.pid, event["rid"], event["epoch"], event["conservative"]): (
            event["value"]
        )
        for event in trace.events(kind="exec_done")
    }

    def delivered_value(event: TraceEvent, conservative: bool) -> Any:
        value = event.get("value", _MISSING)
        if value is _MISSING:
            value = exec_values.get(
                (event.pid, event["rid"], event["epoch"], conservative), _MISSING
            )
        return value

    for adoption in adoptions:
        rid = adoption["rid"]
        for event in a_delivers.get(rid, ()):
            value = delivered_value(event, True)
            if event["position"] != adoption["position"] or (
                value is not _MISSING and value != adoption["value"]
            ):
                raise CheckFailure(
                    f"external consistency violated: client adopted "
                    f"{rid} at position {adoption['position']} "
                    f"(value {adoption['value']!r}) but {event.pid} "
                    f"A-delivered it at {event['position']} "
                    f"(value {value!r})"
                )
        for event in opt_delivers.get(rid, ()):
            if (event.pid, rid, event["epoch"]) in undone:
                continue
            value = delivered_value(event, False)
            matches = event["position"] == adoption["position"] and (
                value is _MISSING or value == adoption["value"]
            )
            if matches:
                continue
            if not strict:
                settled = settled_cache.setdefault(
                    event.pid, settled_epochs(trace, event.pid)
                )
                if event["epoch"] not in settled:
                    continue  # recovery was still pending at run end
            raise CheckFailure(
                f"external consistency violated: client adopted {rid} at "
                f"position {adoption['position']} (value "
                f"{adoption['value']!r}) but {event.pid} Opt-delivered it "
                f"at {event['position']} (value {value!r}) in "
                f"epoch {event['epoch']} without undoing it"
            )
    return len(adoptions)


# ----------------------------------------------------------------------
# Sharded deployments (repro.sharding)
# ----------------------------------------------------------------------

def subtrace(trace: TraceLog, pids: Iterable[str]) -> TraceLog:
    """The sub-log of events emitted by ``pids``, preserving order.

    Sharded runs share one trace across all groups; the single-group
    checkers (epoch-keyed consensus properties, majority guarantee) are
    run per shard on the sub-log of that shard's servers plus the
    clients.
    """
    wanted = set(pids)
    filtered = TraceLog()
    append = filtered.append
    for event in trace:
        if event.pid in wanted:
            append(event)
    return filtered


def check_single_shard_properties(
    trace: TraceLog,
    servers: Sequence[Any],
    client_pids: Iterable[str],
    submitted_rids: Iterable[str],
    strict: bool = True,
    at_least_once: bool = True,
) -> None:
    """The full OAR property bundle, scoped to one shard's group.

    ``submitted_rids`` must contain only requests routed to this shard
    (single-shard operations and transaction branches alike).
    """
    shard_pids = [server.pid for server in servers]
    shard_view = subtrace(trace, list(shard_pids) + list(client_pids))
    group_size = len(servers)
    check_cnsv_order_properties(shard_view, group_size)
    check_majority_guarantee(shard_view, group_size)
    check_at_most_once(shard_view, servers)
    check_total_order(servers)
    check_replica_convergence(servers)
    check_external_consistency(shard_view, strict=strict)
    if at_least_once:
        correct = [server for server in servers if not server.crashed]
        check_at_least_once(shard_view, correct, submitted_rids)


def check_cross_shard_atomicity(
    trace: TraceLog,
    shard_servers: Sequence[Sequence[Any]],
    expected_total: Optional[int] = None,
    quiescent: bool = True,
) -> int:
    """Client-coordinated cross-shard transactions are atomic.

    Always: decision branches for one transaction are homogeneous (all
    ``tx_commit`` or all ``tx_abort``) and match the reported outcome.
    With ``quiescent=True`` additionally: every begun transaction reached
    a decision and completed; no correct server retains an escrow hold;
    and, when ``expected_total`` is given (transfer-only workloads),
    account balances plus escrow sum to it across shards -- no money is
    created or destroyed by a transfer that commits on one shard and
    aborts on the other.  Pass ``quiescent=False`` for runs cut off with
    transactions still in flight (an undecided transaction is incomplete,
    not non-atomic).  Returns the number of transactions examined.
    """
    begun = {event["txid"]: event for event in trace.events(kind="tx_begin")}
    decisions: Dict[str, List[TraceEvent]] = defaultdict(list)
    for event in trace.events(kind="tx_decide"):
        decisions[event["txid"]].append(event)
    finished = {event["txid"]: event for event in trace.events(kind="tx_adopt")}

    for txid, begin in begun.items():
        if txid not in decisions:
            if quiescent:
                raise CheckFailure(
                    f"cross-shard atomicity: {txid} (op {begin['op']!r}) "
                    f"began but never reached a commit/abort decision"
                )
            continue
        outcomes = {event["outcome"] for event in decisions[txid]}
        if len(outcomes) > 1:
            raise CheckFailure(
                f"cross-shard atomicity: {txid} has mixed decisions {outcomes}"
            )
        if txid not in finished:
            if quiescent:
                raise CheckFailure(
                    f"cross-shard atomicity: {txid} decided "
                    f"{next(iter(outcomes))} but its decision branches never "
                    f"all completed"
                )
            continue
        if finished[txid]["outcome"] not in outcomes:
            raise CheckFailure(
                f"cross-shard atomicity: {txid} finished as "
                f"{finished[txid]['outcome']} but decided {outcomes}"
            )
    for txid in decisions:
        if txid not in begun:
            raise CheckFailure(
                f"cross-shard atomicity: decision for unknown tx {txid}"
            )

    if not quiescent:
        return len(begun)

    observed_total = 0
    have_bank_state = False
    for shard_index, servers in enumerate(shard_servers):
        correct = [server for server in servers if not server.crashed]
        for server in correct:
            machine = server.machine
            if not hasattr(machine, "pending_holds"):
                continue
            have_bank_state = True
            leftovers = machine.pending_holds()
            if leftovers:
                raise CheckFailure(
                    f"cross-shard atomicity: {server.pid} (shard "
                    f"{shard_index}) retains escrow holds at quiescence: "
                    f"{sorted(leftovers)}"
                )
        if correct and hasattr(correct[0].machine, "conserved_total"):
            observed_total += correct[0].machine.conserved_total()

    if expected_total is not None and have_bank_state:
        if observed_total != expected_total:
            raise CheckFailure(
                f"cross-shard conservation violated: balances + escrow sum "
                f"to {observed_total}, expected {expected_total}"
            )
    return len(begun)


def check_migration_atomicity(
    trace: TraceLog,
    shard_servers: Sequence[Sequence[Any]],
    routing_table: Any,
    key_universe: Sequence[Any],
    expected_total: Optional[int] = None,
    quiescent: bool = True,
) -> int:
    """Live key migrations (``repro.sharding.rebalance``) are atomic.

    Safety (always checked):

    * **single owner** -- no key is owned by two shards' correct
      replicas, and the replicas of one shard agree on their ownership
      books;
    * **no key lost** -- a key owned by no shard must be parked in
      exactly one source shard's outbound migration escrow (the
      in-flight window, or a coordinator crash awaiting recovery);
    * **lifecycle order** -- a migration is installed only after it
      prepared, and committed (epoch bump) only after it installed;
    * **single install** -- each migration id is installed on at most
      one shard (no double execution of a move);
    * **conservation** (bank, when ``expected_total`` given) -- account
      balances + transfer escrow + migration escrow sum to the money
      supply, compensating for the brief install-to-forget window where
      an exported balance is counted on both shards.

    Additionally at quiescence: every begun migration reached ``done``
    or ``aborted``, no key is still in flight, no outbound escrow entry
    survives its forget, and the authoritative routing table points
    every key at the shard that actually owns it.  Pass
    ``quiescent=False`` for runs cut off mid-migration (or frozen by a
    coordinator crash before recovery): an in-flight migration is
    incomplete, not non-atomic.  Keys split into fragments
    (``routing_table.splits``) delegate every per-key obligation to
    their fragments; see :func:`check_fragment_conservation` for the
    value-conservation side of splitting.  Returns the number of
    distinct migrations begun.
    """
    begun = {event["mid"]: event for event in trace.events(kind="mig_begin")}
    prepared = {event["mid"] for event in trace.events(kind="mig_prepared")}
    installed = {event["mid"] for event in trace.events(kind="mig_installed")}
    committed = {event["mid"] for event in trace.events(kind="mig_commit")}
    finished = {event["mid"] for event in trace.events(kind="mig_done")}
    aborted = {event["mid"] for event in trace.events(kind="mig_abort")}

    for mid in installed - prepared:
        raise CheckFailure(
            f"migration atomicity: {mid} installed without a prepare"
        )
    for mid in committed - installed:
        raise CheckFailure(
            f"migration atomicity: {mid} bumped the routing epoch before "
            f"its install was adopted"
        )
    if quiescent:
        unfinished = set(begun) - finished - aborted
        if unfinished:
            raise CheckFailure(
                f"migration atomicity: migrations never completed: "
                f"{sorted(unfinished)}"
            )

    # -- replicated ownership books ------------------------------------
    owner_books: Dict[int, Any] = {}  # shard -> agreed owned-key set
    outbound_by_shard: Dict[int, Dict[str, Any]] = {}
    installed_by_shard: Dict[int, Dict[str, Any]] = {}
    unknown_shards: Set[int] = set()  # fully crashed: ownership unknowable
    for shard, servers in enumerate(shard_servers):
        correct = [server for server in servers if not server.crashed]
        if not correct:
            unknown_shards.add(shard)
            continue  # a fully-crashed shard has no authoritative state
        machines = [server.machine for server in correct]
        if not hasattr(machines[0], "owned_keys"):
            return len(begun)  # keyless machines: no ownership model
        books = {server.pid: server.machine.owned_keys() for server in correct}
        distinct = set(books.values())
        if len(distinct) > 1:
            raise CheckFailure(
                f"migration atomicity: shard {shard} replicas disagree on "
                f"ownership: {books!r}"
            )
        agreed = distinct.pop()
        if agreed is None:
            return len(begun)  # unsharded machines own everything
        owner_books[shard] = agreed
        outbound_by_shard[shard] = machines[0].outbound_migrations()
        installed_by_shard[shard] = machines[0].installed_migrations()

    # Single install: each migration id landed on at most one shard.
    seen_installs: Dict[str, int] = {}
    for shard, installs in installed_by_shard.items():
        for mid in installs:
            if mid in seen_installs:
                raise CheckFailure(
                    f"migration atomicity: {mid} installed on shards "
                    f"{seen_installs[mid]} and {shard}"
                )
            seen_installs[mid] = shard

    in_flight_keys = {
        key
        for outbound in outbound_by_shard.values()
        for key, _dst, _state in outbound.values()
    }

    # Hot-key splits (repro.statemachine.base.SplittableMachine): once a
    # split commits, the logical key is legitimately owned by no shard --
    # the single-owner / no-key-lost obligations transfer to each of its
    # fragments.  Two transient windows look like a missing key and must
    # not be declared "state lost": mid-split (split_open adopted, the
    # authority's epoch not yet bumped -- the fragments already exist in
    # owner books and escrow under fragment names) and mid-merge
    # (split_close adopted, split not yet dropped -- the merged key is
    # owned again while the table still says "split").
    splits = dict(getattr(routing_table, "splits", None) or {})
    owned_anywhere: Set[Any] = set()
    for owned in owner_books.values():
        owned_anywhere |= set(owned)

    def fragments_alive(key: Any) -> bool:
        prefix = f"{key}{SplittableMachine.SPLIT_SEP}"
        for candidate in owned_anywhere | in_flight_keys:
            text = str(candidate)
            if text.startswith(prefix) and text[len(prefix):].isdigit():
                return True
        return False

    checked: List[Tuple[Any, bool]] = []  # (key, is_fragment)
    for key in key_universe:
        placements = splits.get(key)
        if placements is None:
            checked.append((key, False))
            continue
        if key in owned_anywhere:
            if quiescent:
                raise CheckFailure(
                    f"migration atomicity: {key!r} is split per the routing "
                    f"table but a shard owns the merged key at quiescence"
                )
            continue  # mid-merge window: fragments already consumed
        checked.extend((frag, True) for frag, _dst in placements)

    for key, is_fragment in checked:
        owners = [shard for shard, owned in owner_books.items() if key in owned]
        if len(owners) > 1:
            raise CheckFailure(
                f"migration atomicity: {key!r} owned by multiple shards "
                f"{owners}"
            )
        if not owners:
            if key not in in_flight_keys:
                if not is_fragment and fragments_alive(key):
                    if quiescent:
                        raise CheckFailure(
                            f"migration atomicity: {key!r} was split into "
                            f"fragments but the split never committed to "
                            f"the routing table"
                        )
                    continue  # mid-split window: split_open in flight
                if unknown_shards:
                    continue  # the key may live on a fully-crashed shard
                raise CheckFailure(
                    f"migration atomicity: {key!r} owned by no shard and "
                    f"absent from every outbound escrow -- state lost"
                )
            if quiescent:
                raise CheckFailure(
                    f"migration atomicity: {key!r} still in flight at "
                    f"quiescence (stranded migration?)"
                )
            continue
        if quiescent and routing_table.shard_of(key) != owners[0]:
            raise CheckFailure(
                f"migration atomicity: routing table sends {key!r} to shard "
                f"{routing_table.shard_of(key)} but shard {owners[0]} owns it"
            )

    if quiescent:
        leftovers = {
            shard: sorted(outbound)
            for shard, outbound in outbound_by_shard.items()
            if outbound
        }
        if leftovers:
            raise CheckFailure(
                f"migration atomicity: outbound escrow entries survive "
                f"quiescence: {leftovers}"
            )

    # -- conservation (bank) -------------------------------------------
    # A fully-crashed shard makes its balances unobservable, not lost;
    # the sum below would come up short through no fault of the
    # migrations, so (matching the ownership logic above) skip it.
    if expected_total is not None and owner_books and not unknown_shards:
        observed = 0
        have_bank = False
        for shard, servers in enumerate(shard_servers):
            correct = [server for server in servers if not server.crashed]
            if not correct or not hasattr(correct[0].machine, "conserved_total"):
                continue
            have_bank = True
            observed += correct[0].machine.conserved_total()
        # conserved_total counts an exported balance at the source until
        # mig_forget; once the same mid is installed at the destination
        # the balance also sits in an account there.  Subtract that
        # double-counted window.
        for shard, outbound in outbound_by_shard.items():
            for mid, (key, dst, state) in outbound.items():
                if not isinstance(state, int):
                    continue
                if mid in installed_by_shard.get(dst, ()):
                    observed -= state
        if have_bank and observed != expected_total:
            raise CheckFailure(
                f"migration conservation violated: balances + escrows sum "
                f"to {observed}, expected {expected_total}"
            )
    return len(begun)


def check_fragment_conservation(
    trace: TraceLog,
    shard_servers: Sequence[Sequence[Any]],
    routing_table: Any,
    initial_values: Mapping[Any, int],
    quiescent: bool = True,
) -> int:
    """Splitting a hot key never creates or destroys value.

    For every key that was ever split
    (:class:`~repro.statemachine.base.SplittableMachine`), the logical
    value observable at the end of the run -- the sum of its fragment
    balances across shards, plus fragment value parked in migration or
    split escrow, plus fragment debits held by in-flight transfers --
    must *exactly* equal the initially placed value plus the net effect
    of every **adopted** operation on the key's family: deposits add,
    withdrawals subtract, transfers move value in or out of the family,
    and borrows between sibling fragments are family-internal so they
    cancel.  Exactness across undo/redo is inherited from adoption
    stability (Prop. 7): an operation that was Opt-delivered and later
    undone never surfaces an adopted reply, so it contributes neither a
    delta nor final state.

    Single-shard operations are joined from ``submit`` + ``adopt``
    events; cross-shard transfers (which never emit a plain ``adopt``)
    from ``tx_begin`` + ``tx_adopt`` with a ``commit`` outcome; 2PC
    branch operations (``tx_prepare``/``tx_commit``/``tx_abort``) are
    excluded by name so nothing is counted twice.

    The equality is only *enforced* on quiescent runs with every shard
    observable: before quiescence replica state may lag the adoption
    stream (execution lanes still draining), and a fully-crashed shard
    hides its fragments' balances without losing them -- both cases
    return without raising.  Returns the number of families checked.
    """
    families: Set[Any] = set(getattr(routing_table, "splits", None) or {})
    for event in trace.events(kind="split_commit"):
        families.add(event["key"])
    if not families:
        return 0

    sep = SplittableMachine.SPLIT_SEP

    def family_of(key: Any) -> Optional[Any]:
        if key in families:
            return key
        text = str(key)
        cut = text.rfind(sep)
        if cut > 0 and text[cut + len(sep):].isdigit():
            parent = text[:cut]
            if parent in families:
                return parent
        return None

    # -- expected: initial placement + net adopted deltas ---------------
    expected: Dict[Any, int] = {
        key: int(initial_values.get(key, 0)) for key in families
    }
    op_of = {event["rid"]: tuple(event["op"]) for event in trace.events(kind="submit")}
    for adoption in trace.events(kind="adopt"):
        op = op_of.get(adoption["rid"])
        if op is None:
            continue
        result = adoption["value"]
        if not getattr(result, "ok", False):
            continue
        name = op[0]
        if name == "deposit" and len(op) == 3:
            family = family_of(op[1])
            if family is not None:
                expected[family] += op[2]
        elif name == "withdraw" and len(op) == 3:
            family = family_of(op[1])
            if family is not None:
                expected[family] -= op[2]
        elif name == "transfer" and len(op) == 4:
            src_family, dst_family = family_of(op[1]), family_of(op[2])
            if src_family != dst_family:
                if src_family is not None:
                    expected[src_family] -= op[3]
                if dst_family is not None:
                    expected[dst_family] += op[3]
    tx_op = {event["txid"]: tuple(event["op"]) for event in trace.events(kind="tx_begin")}
    for event in trace.events(kind="tx_adopt"):
        if event["outcome"] != "commit":
            continue
        op = tx_op.get(event["txid"])
        if op is None or op[0] != "transfer" or len(op) != 4:
            continue
        src_family, dst_family = family_of(op[1]), family_of(op[2])
        if src_family != dst_family:
            if src_family is not None:
                expected[src_family] -= op[3]
            if dst_family is not None:
                expected[dst_family] += op[3]

    # -- observed: fragments + escrows, exactly once --------------------
    machines: Dict[int, Any] = {}
    installed_books: Dict[int, Any] = {}
    for shard, servers in enumerate(shard_servers):
        correct = [server for server in servers if not server.crashed]
        if not correct:
            return 0  # a fully-crashed shard hides its fragments
        machine = correct[0].machine
        if not hasattr(machine, "fragment_value"):
            return 0  # machine has no splittable value model
        machines[shard] = machine
        installed_books[shard] = machine.installed_migrations()

    observed: Dict[Any, int] = {key: 0 for key in families}
    for shard, machine in machines.items():
        for key in machine.owned_keys() or ():
            family = family_of(key)
            if family is None:
                continue
            value = machine.fragment_value(key)
            if isinstance(value, int):
                observed[family] += value
        for mid, (key, dst, state) in machine.outbound_migrations().items():
            family = family_of(key)
            if family is None or not isinstance(state, int):
                continue
            if mid in installed_books.get(dst, ()):
                continue  # install-to-forget window: counted at dst
            observed[family] += state
        for _txid, (kind, account, amount) in machine.pending_holds().items():
            if kind != "debit":
                continue
            family = family_of(account)
            if family is not None:
                observed[family] += amount

    if quiescent:
        mismatched = sorted(
            (key for key in families if expected[key] != observed[key]),
            key=repr,
        )
        if mismatched:
            detail = ", ".join(
                f"{key!r}: fragments+escrow sum to {observed[key]}, adopted "
                f"history implies {expected[key]}"
                for key in mismatched
            )
            raise CheckFailure(f"fragment conservation violated: {detail}")
    return len(families)


# ----------------------------------------------------------------------
# Replica-local reads (OARConfig.read_mode)
# ----------------------------------------------------------------------

def check_read_consistency(
    trace: TraceLog,
    servers: Sequence[Any],
    machine_factory: Any,
    shard: Optional[int] = None,
) -> Dict[str, int]:
    """Replica-local reads observe prefix-closed states of the final order.

    For every adopted read, the observed value must be producible by
    executing the read operation against the state reached by *some*
    prefix of the group's final delivered order (starting from the
    shard's initial machine, rebuilt via ``machine_factory``).  That is
    the prefix-closed-observation property: a read never sees a state no
    prefix of the adopted history ever passed through.

    * **Adopted-mode (conservative) reads** -- a violation raises
      :class:`CheckFailure`: a majority-agreed read value must always be
      anchored in the adopted order (undo consistency keeps doomed
      optimistic suffixes at a minority of replicas, so they can never
      win the vote).
    * **Optimistic reads** -- a value with no anchoring prefix is a
      *stale* read (the replica answered from an optimistic suffix that
      was later undone); it is counted, not failed, so staleness is a
      measurable quantity rather than a correctness bug.

    ``shard`` filters read events in a sharded run (clients tag each
    read with the shard it was routed to); ``None`` checks unsharded
    runs.  Returns ``{"reads", "optimistic", "conservative",
    "stale_optimistic"}`` counts.
    """
    reads = [
        event
        for event in trace.events(kind="read_adopt")
        if event.get("shard") == shard
    ]
    stats = {
        "reads": len(reads),
        "optimistic": 0,
        "conservative": 0,
        "stale_optimistic": 0,
    }
    if not reads:
        return stats

    # The longest correct server's final order is the adopted history
    # (total order makes every correct order a prefix of it).
    alive = [server for server in servers if not server.crashed]
    if not alive:
        return stats  # nothing authoritative to anchor reads against
    final_order = max(
        (_server_order(server) for server in alive), key=len
    )
    op_of = {event["rid"]: event["op"] for event in trace.events(kind="submit")}

    # Replay the adopted history once, probing every distinct read
    # operation at every prefix (reads are side-effect free, so probing
    # does not perturb the replay).
    read_ops = {tuple(event["op"]) for event in reads}
    machine = machine_factory()
    # Results are keyed by repr: always hashable, and OpResult reprs
    # distinguish ok/error/value exactly.
    achievable: Dict[Tuple[Any, ...], Set[str]] = {
        op: {repr(machine.apply(op))} for op in read_ops
    }
    for rid in final_order:
        op = op_of.get(rid)
        if op is None:
            continue  # a rid submitted outside the traced window
        machine.apply(tuple(op))
        for read_op in read_ops:
            achievable[read_op].add(repr(machine.apply(read_op)))

    for event in reads:
        op = tuple(event["op"])
        mode = event["mode"]
        value = event["value"]
        anchored = repr(value) in achievable[op]
        if mode == "conservative":
            stats["conservative"] += 1
            if not anchored:
                raise CheckFailure(
                    f"read consistency violated: conservative read "
                    f"{event['rid']} of {op!r} adopted {value!r}, which no "
                    f"prefix of the adopted order produces"
                )
        else:
            stats["optimistic"] += 1
            if not anchored:
                stats["stale_optimistic"] += 1
    return stats


# ----------------------------------------------------------------------
# Fault-plane accounting (link faults beyond crash-stop)
# ----------------------------------------------------------------------

_FAULT_TRACE_KINDS = (
    "msg_drop",
    "msg_dup",
    "msg_corrupt",
    "msg_jitter",
    "msg_held",
    "msg_rewrite",
    "msg_corrupt_drop",
    "heal_storm",
)


def check_fault_plane_accounting(trace: TraceLog, network: Any) -> Dict[str, int]:
    """Every injected link fault is traced and accounted for.

    Three families of assertion, all on quiescent runs:

    * **Counter/trace agreement** -- each fault counter on the installed
      :class:`~repro.sim.faultplane.FaultPlane` equals the number of its
      trace events (a fault can never be injected silently), and held
      messages are exactly the released ones plus the still-held ones.
    * **Nothing applied corrupt** -- every corrupted payload was either
      detected-and-dropped at delivery (``msg_corrupt_drop``) or is
      still held (one-way block or partition); re-verifies the checksum
      of every held envelope to prove it.
    * **Duplicates never double-execute** -- no server R-delivers (and
      therefore executes) the same rid twice, no matter how many copies
      the links produced.  Checked whether or not a plane is installed.

    When no plane is installed, asserts the zero baseline instead: no
    fault trace events, no fault counters -- the golden-run guarantee
    that fault-free behaviour is byte-identical to the benign network.
    Returns the fault counters for reporting.
    """
    # Duplicate suppression: one r_deliver per (server, rid), always.
    seen: Set[Tuple[str, str]] = set()
    for event in trace.events(kind="r_deliver"):
        key = (event.pid, event["rid"])
        if key in seen:
            raise CheckFailure(
                f"duplicate execution: {event.pid} R-delivered "
                f"{event['rid']!r} twice"
            )
        seen.add(key)

    plane = getattr(network, "fault_plane", None)
    corrupt_dropped = getattr(network, "corrupt_dropped", 0)
    if plane is None:
        if corrupt_dropped:
            raise CheckFailure(
                f"no fault plane installed but {corrupt_dropped} payloads "
                f"were dropped as corrupt"
            )
        if trace.enabled:
            for kind in _FAULT_TRACE_KINDS:
                stray = trace.events(kind=kind)
                if stray:
                    raise CheckFailure(
                        f"no fault plane installed but {len(stray)} "
                        f"{kind!r} events are in the trace"
                    )
        return {"corrupt_dropped": 0}

    stats = plane.stats()
    if trace.enabled:
        expected = {
            "dropped": "msg_drop",
            "duplicated": "msg_dup",
            "corrupted": "msg_corrupt",
            "jittered": "msg_jitter",
            "held": "msg_held",
            "rewritten": "msg_rewrite",
        }
        for counter, kind in expected.items():
            traced = len(trace.events(kind=kind))
            if stats[counter] != traced:
                raise CheckFailure(
                    f"fault accounting: counter {counter}={stats[counter]} "
                    f"but {traced} {kind!r} trace events"
                )
        released = sum(
            event["released"] for event in trace.events(kind="heal_storm")
        )
        if stats["released"] != released:
            raise CheckFailure(
                f"fault accounting: released={stats['released']} but "
                f"heal_storm events account for {released}"
            )
        traced_drops = len(trace.events(kind="msg_corrupt_drop"))
        if corrupt_dropped != traced_drops:
            raise CheckFailure(
                f"fault accounting: corrupt_dropped={corrupt_dropped} but "
                f"{traced_drops} msg_corrupt_drop trace events"
            )
    if stats["held"] != stats["released"] + stats["pending_held"]:
        raise CheckFailure(
            f"fault accounting: held={stats['held']} != "
            f"released={stats['released']} + pending={stats['pending_held']}"
        )

    # Nothing applied corrupt: every corrupted payload was dropped at
    # delivery, is still held somewhere with a failing checksum, or was
    # still in flight (scheduled past the run's cutoff) when the sim
    # stopped.
    from repro.sim.faultplane import wire_checksum

    undelivered_corrupt = 0
    undelivered = (
        list(plane.held_envelopes())
        + list(network._held)
        + list(network.in_flight_checksummed())
    )
    for envelope in undelivered:
        if (
            envelope.checksum is not None
            and wire_checksum(envelope.payload) != envelope.checksum
        ):
            undelivered_corrupt += 1
    if stats["corrupted"] != corrupt_dropped + undelivered_corrupt:
        raise CheckFailure(
            f"corrupt payload escaped: {stats['corrupted']} injected, "
            f"{corrupt_dropped} dropped at delivery, {undelivered_corrupt} "
            f"still held or in flight -- "
            f"{stats['corrupted'] - corrupt_dropped - undelivered_corrupt} "
            f"unaccounted for (applied?)"
        )
    stats["corrupt_dropped"] = corrupt_dropped
    return stats


# ----------------------------------------------------------------------
# Admission-control accounting (overload shedding, throttling)
# ----------------------------------------------------------------------

_ADMISSION_TRACE_KINDS = ("shed", "throttle", "shed_adopt")


def check_admission_accounting(
    trace: TraceLog,
    servers: Sequence[Any],
    clients: Sequence[Any],
    drivers: Sequence[Any] = (),
) -> Dict[str, int]:
    """Every admission decision is counted, traced, and conserved.

    Four families of assertion:

    * **Counter/trace agreement** -- each server's ``shed`` /
      ``reads_shed`` counter equals its ``shed`` trace events of the
      matching bulkhead class; each client's ``overloaded`` counter
      equals its ``shed_adopt`` events and its ``shed_rids`` size (a
      shed can never be decided or surfaced silently).
    * **At-most-once shedding** -- no server sheds the same write rid
      twice (the notice cache makes retransmissions hit the cached
      notice, not a fresh decision), and no client surfaces a rid twice.
    * **The conservation law** -- for every driver that exposes the
      open-loop counters (``offered`` etc.), exactly:
      ``offered == throttled + admitted + shed + in_flight`` and
      ``offered == throttled + len(submitted)``.  At quiescence
      ``in_flight == 0``, so the ISSUE's headline identity
      ``admitted + shed + throttled == offered`` is exact.
    * **The zero baseline** -- when no server config enables a limit:
      zero counters, zero sheds surfaced, and no ``shed``/``shed_adopt``
      trace events at all.  (``throttle`` events are client-side and
      gated separately on the drivers' buckets.)  This is the
      idle-plane guarantee behind the digest-identity acceptance
      criterion.

    Returns the aggregate counters for reporting.
    """
    enabled = any(
        getattr(server.config, "admission_limit", None) is not None
        or getattr(server.config, "read_queue_limit", None) is not None
        for server in servers
    )
    throttling = any(getattr(driver, "bucket", None) is not None for driver in drivers)

    shed_events: Dict[str, Dict[str, int]] = defaultdict(lambda: {"write": 0, "read": 0})
    surfaced_events: Dict[str, int] = defaultdict(int)
    shed_write_rids: Set[Tuple[str, str]] = set()
    surfaced_rids: Set[Tuple[str, str]] = set()
    throttle_events = 0
    if trace.enabled:
        for event in trace.events(kind="shed"):
            cls = event["cls"]
            shed_events[event.pid][cls] += 1
            if cls == "write":
                key = (event.pid, event["rid"])
                if key in shed_write_rids:
                    raise CheckFailure(
                        f"admission accounting: {event.pid} shed write "
                        f"{event['rid']!r} twice"
                    )
                shed_write_rids.add(key)
        for event in trace.events(kind="shed_adopt"):
            key = (event.pid, event["rid"])
            if key in surfaced_rids:
                raise CheckFailure(
                    f"admission accounting: {event.pid} surfaced shed "
                    f"{event['rid']!r} twice"
                )
            surfaced_rids.add(key)
            surfaced_events[event.pid] += 1
        throttle_events = len(trace.events(kind="throttle"))

    total_shed = 0
    total_reads_shed = 0
    for server in servers:
        shed = getattr(server, "shed", 0)
        reads_shed = getattr(server, "reads_shed", 0)
        total_shed += shed
        total_reads_shed += reads_shed
        if trace.enabled:
            counted = shed_events.get(server.pid, {"write": 0, "read": 0})
            if shed != counted["write"]:
                raise CheckFailure(
                    f"admission accounting: {server.pid} shed={shed} "
                    f"but {counted['write']} write 'shed' trace events"
                )
            if reads_shed != counted["read"]:
                raise CheckFailure(
                    f"admission accounting: {server.pid} "
                    f"reads_shed={reads_shed} but {counted['read']} "
                    f"read 'shed' trace events"
                )

    total_surfaced = 0
    for client in clients:
        overloaded = getattr(client, "overloaded", 0)
        shed_rids = getattr(client, "shed_rids", set())
        total_surfaced += overloaded
        if overloaded != len(shed_rids):
            raise CheckFailure(
                f"admission accounting: {client.pid} overloaded={overloaded} "
                f"but {len(shed_rids)} distinct shed rids"
            )
        if trace.enabled and overloaded != surfaced_events.get(client.pid, 0):
            raise CheckFailure(
                f"admission accounting: {client.pid} overloaded={overloaded} "
                f"but {surfaced_events.get(client.pid, 0)} 'shed_adopt' events"
            )

    # A surfaced shed always stems from a server-side decision; the
    # reverse need not hold (a notice can lose the race with a real
    # reply after failover, or be counted late).
    if total_surfaced > total_shed + total_reads_shed:
        raise CheckFailure(
            f"admission accounting: clients surfaced {total_surfaced} sheds "
            f"but servers only decided {total_shed + total_reads_shed}"
        )

    total_offered = 0
    total_throttled = 0
    total_admitted = 0
    total_driver_shed = 0
    for driver in drivers:
        if not hasattr(driver, "offered"):
            continue  # closed/plain-open drivers have no admission ledger
        in_flight = driver.in_flight
        if driver.offered != driver.throttled + len(driver.submitted):
            raise CheckFailure(
                f"admission accounting: driver offered={driver.offered} != "
                f"throttled={driver.throttled} + "
                f"submitted={len(driver.submitted)}"
            )
        resolved = driver.throttled + driver.admitted + driver.shed + in_flight
        if driver.offered != resolved:
            raise CheckFailure(
                f"admission accounting: driver offered={driver.offered} != "
                f"throttled={driver.throttled} + admitted={driver.admitted} "
                f"+ shed={driver.shed} + in_flight={in_flight}"
            )
        total_offered += driver.offered
        total_throttled += driver.throttled
        total_admitted += driver.admitted
        total_driver_shed += driver.shed

    if trace.enabled and (drivers or not throttling):
        expected_throttles = sum(
            getattr(driver, "throttled", 0) for driver in drivers
        )
        if throttle_events != expected_throttles:
            raise CheckFailure(
                f"admission accounting: {throttle_events} 'throttle' trace "
                f"events but drivers throttled {expected_throttles}"
            )

    if not enabled:
        if total_shed or total_reads_shed:
            raise CheckFailure(
                "admission accounting: no limits configured but servers "
                f"shed {total_shed} writes / {total_reads_shed} reads"
            )
        if total_surfaced:
            raise CheckFailure(
                "admission accounting: no limits configured but clients "
                f"surfaced {total_surfaced} sheds"
            )
        if trace.enabled:
            for kind in ("shed", "shed_adopt"):
                stray = trace.events(kind=kind)
                if stray:
                    raise CheckFailure(
                        f"admission accounting: no limits configured but "
                        f"{len(stray)} {kind!r} events are in the trace"
                    )

    return {
        "shed": total_shed,
        "reads_shed": total_reads_shed,
        "surfaced": total_surfaced,
        "offered": total_offered,
        "throttled": total_throttled,
        "admitted": total_admitted,
        "driver_shed": total_driver_shed,
    }


# ----------------------------------------------------------------------
# Baseline anomaly scoring (Figure 1(b))
# ----------------------------------------------------------------------

def count_baseline_inconsistencies(
    trace: TraceLog,
    correct_servers: Sequence[Any],
) -> int:
    """How many adopted replies the baseline run left inconsistent.

    An adoption is inconsistent when a majority of the *correct* servers'
    final states disagree with the reply the client adopted (the stale
    reply of Figure 1(b)).  For OAR this is structurally zero
    (Proposition 7); for the sequencer baseline it is not -- benchmark B2
    reports both.
    """
    final_orders = {
        server.pid: _server_order(server) for server in correct_servers
    }
    majority = len(correct_servers) // 2 + 1
    inconsistent = 0
    for adoption in trace.events(kind="adopt"):
        rid = adoption["rid"]
        disagreeing = 0
        for pid, order in final_orders.items():
            if rid not in order:
                disagreeing += 1
                continue
            position = order.index(rid) + 1
            if position != adoption["position"]:
                disagreeing += 1
        if disagreeing >= majority:
            inconsistent += 1
    return inconsistent
