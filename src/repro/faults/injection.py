"""Fault-injection primitives over the simulated network.

The key scenario tool is :func:`crash_during_multicast`: the paper's
interesting runs all hinge on a process crashing *partway through* a
multicast -- the sequencer's ordering message reaching only some replicas
(Figures 3, 4) or nobody (Figure 1(b)).  A multicast in this codebase is a
plain loop of sends (see :meth:`repro.sim.process.ProcessEnv.send_to_all`),
so an interceptor can deliver the message to a chosen subset and then
crash the sender the instant the handler finishes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Set

from repro.sim.network import SimNetwork

#: Predicate over message payloads selecting the multicast to disrupt.
PayloadMatch = Callable[[Any], bool]


class CrashDuringMulticast:
    """Interceptor: crash ``sender`` mid-multicast of a matching message.

    Once armed, the first send from ``sender`` whose payload satisfies
    ``match`` triggers: sends of that payload to destinations outside
    ``deliver_to`` are dropped, and the sender is crashed as soon as the
    current event (the multicast loop) completes -- messages to the
    allowed destinations are already in flight, everything later is lost.
    """

    def __init__(
        self,
        network: SimNetwork,
        sender: str,
        match: PayloadMatch,
        deliver_to: Iterable[str],
        crash: bool = True,
    ) -> None:
        self.network = network
        self.sender = sender
        self.match = match
        self.deliver_to: Set[str] = set(deliver_to)
        self.crash = crash
        self.triggered_at: Optional[float] = None
        self._armed = True
        network.add_interceptor(self)

    def __call__(self, src: str, dst: str, payload: Any) -> bool:
        if not self._armed or src != self.sender or not self.match(payload):
            return True
        if self.triggered_at is None:
            self.triggered_at = self.network.sim.now
            if self.crash:
                # After the multicast loop finishes (same instant, later
                # event), the sender is gone.
                self.network.sim.call_soon(self._finish)
        return dst in self.deliver_to

    def _finish(self) -> None:
        self._armed = False
        if self.crash:
            self.network.crash(self.sender)


def crash_during_multicast(
    network: SimNetwork,
    sender: str,
    match: PayloadMatch,
    deliver_to: Iterable[str],
    crash: bool = True,
) -> CrashDuringMulticast:
    """Arm a :class:`CrashDuringMulticast` interceptor and return it."""
    return CrashDuringMulticast(network, sender, match, deliver_to, crash)


@dataclass(frozen=True)
class FaultAction:
    """One timed action in a :class:`FaultSchedule`.

    ``kind`` is one of ``crash``, ``partition``, ``heal``, ``oneway``,
    ``heal_oneway``, ``suspect``, ``unsuspect``.  ``target`` is a pid for
    crash/suspect/unsuspect, a sequence of groups for partition, a
    sequence of ``(src, dst)`` link directions for oneway, and unused
    for heal/heal_oneway.  Suspicion
    actions require ``detectors`` to be passed to :meth:`FaultSchedule.apply`
    (they force the scripted/heartbeat detector of *every* process, i.e. a
    network-wide simultaneous suspicion; per-process scripting can use the
    detectors directly).
    """

    time: float
    kind: str
    target: Any = None


@dataclass
class FaultSchedule:
    """A declarative, reproducible schedule of fault events."""

    actions: List[FaultAction] = field(default_factory=list)

    def crash(self, time: float, pid: str) -> "FaultSchedule":
        """Add a crash of ``pid`` at ``time``; returns self for chaining."""
        self.actions.append(FaultAction(time, "crash", pid))
        return self

    def partition(self, time: float, groups: Sequence[Sequence[str]]) -> "FaultSchedule":
        """Add a partition into ``groups`` at ``time``."""
        self.actions.append(
            FaultAction(time, "partition", tuple(tuple(g) for g in groups))
        )
        return self

    def heal(self, time: float) -> "FaultSchedule":
        """Add a heal (release all held messages) at ``time``."""
        self.actions.append(FaultAction(time, "heal"))
        return self

    def oneway(self, time: float, pairs: Sequence[Sequence[str]]) -> "FaultSchedule":
        """Add an asymmetric partition at ``time``.

        ``pairs`` is a sequence of ``(src, dst)`` link directions to
        mute (either side may be ``"*"``); traffic on the muted
        directions is *held* by the network's fault plane, the reverse
        directions stay up.  Released by :meth:`heal_oneway`.
        """
        self.actions.append(
            FaultAction(time, "oneway", tuple(tuple(p) for p in pairs))
        )
        return self

    def heal_oneway(self, time: float) -> "FaultSchedule":
        """Heal all one-way blocks at ``time`` (a partition-heal storm:
        every held message is released in one burst)."""
        self.actions.append(FaultAction(time, "heal_oneway"))
        return self

    def suspect(self, time: float, pid: str) -> "FaultSchedule":
        """Force every detector to suspect ``pid`` at ``time``."""
        self.actions.append(FaultAction(time, "suspect", pid))
        return self

    def unsuspect(self, time: float, pid: str) -> "FaultSchedule":
        """Retract the forced suspicion of ``pid`` at ``time``."""
        self.actions.append(FaultAction(time, "unsuspect", pid))
        return self

    def apply(self, network: SimNetwork, detectors: Sequence[Any] = ()) -> None:
        """Schedule every action on the network's simulator."""
        for action in self.actions:
            network.sim.schedule_at(
                action.time, _make_action(network, detectors, action)
            )

    @property
    def crash_times(self) -> List[float]:
        return [a.time for a in self.actions if a.kind == "crash"]


def _make_action(
    network: SimNetwork, detectors: Sequence[Any], action: FaultAction
) -> Callable[[], None]:
    def run() -> None:
        if action.kind == "crash":
            network.crash(action.target)
        elif action.kind == "partition":
            network.set_partition(action.target)
        elif action.kind == "heal":
            network.heal()
        elif action.kind == "oneway":
            network.ensure_fault_plane().block_links(action.target)
        elif action.kind == "heal_oneway":
            network.ensure_fault_plane().heal()
        elif action.kind == "suspect":
            for detector in detectors:
                detector.force_suspect(action.target)
        elif action.kind == "unsuspect":
            for detector in detectors:
                detector.force_unsuspect(action.target)
        else:
            raise ValueError(f"unknown fault action: {action.kind}")

    return run


def random_fault_schedule(
    rng: random.Random,
    pids: Sequence[str],
    horizon: float,
    max_crashes: int,
    suspicion_rate: float = 0.0,
    partition_probability: float = 0.0,
    partition_duration: float = 20.0,
) -> FaultSchedule:
    """A seeded random schedule respecting the majority-correct assumption.

    At most ``max_crashes`` (must leave a majority alive) crash events at
    uniform times; optional transient wrong suspicions of live processes
    (each later retracted); optional one partition window that isolates a
    minority.
    """
    majority = len(pids) // 2 + 1
    if len(pids) - max_crashes < majority:
        raise ValueError("schedule would violate the majority-correct assumption")
    schedule = FaultSchedule()
    victims = rng.sample(list(pids), max_crashes)
    for victim in victims:
        schedule.crash(rng.uniform(horizon * 0.1, horizon * 0.8), victim)
    survivors = [pid for pid in pids if pid not in victims]
    if suspicion_rate > 0:
        for pid in survivors:
            if rng.random() < suspicion_rate:
                start = rng.uniform(horizon * 0.1, horizon * 0.7)
                schedule.suspect(start, pid)
                schedule.unsuspect(start + rng.uniform(5.0, 20.0), pid)
    if partition_probability > 0 and rng.random() < partition_probability:
        minority_size = rng.randint(1, len(pids) - majority)
        minority = rng.sample(list(pids), minority_size)
        rest = [pid for pid in pids if pid not in minority]
        start = rng.uniform(horizon * 0.1, horizon * 0.6)
        schedule.partition(start, [minority, rest])
        schedule.heal(start + partition_duration)
    schedule.actions.sort(key=lambda a: a.time)
    return schedule
