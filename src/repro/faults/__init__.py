"""Fault-injection scripting for scenario-exact and randomized runs.

* :func:`~repro.faults.injection.crash_during_multicast` -- the surgical
  tool behind Figures 1(b), 3 and 4: crash a process *while* it multicasts
  a particular message so that only a chosen subset of destinations
  receives it.
* :class:`~repro.faults.injection.FaultSchedule` -- a declarative list of
  timed crash/partition/heal/suspect actions, applied to a simulation.
* :func:`~repro.faults.injection.random_fault_schedule` -- seeded random
  schedules for soak and property testing.
"""

from repro.faults.injection import (
    CrashDuringMulticast,
    FaultAction,
    FaultSchedule,
    crash_during_multicast,
    random_fault_schedule,
)

__all__ = [
    "CrashDuringMulticast",
    "FaultAction",
    "FaultSchedule",
    "crash_during_multicast",
    "random_fault_schedule",
]
