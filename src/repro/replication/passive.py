"""Passive (primary-backup) replication (Section 2.1).

The client interacts with one replica, the *primary*; the primary executes
the request and propagates the resulting state to the secondaries, then
replies.  Consistency in a real deployment needs view-synchronous
broadcast and a membership service (the paper cites [GS97]); this
implementation uses the same lightweight suspicion-driven takeover as the
sequencer baseline, which is honest about the trade-off the paper makes:
passive replication's fail-over is where its cost hides.

Protocol (failure-free):

1. the client sends the request to every replica; non-primaries buffer it;
2. the primary applies the operation and sends ``StateUpdate`` (the
   post-operation state snapshot) to the backups;
3. backups install updates in order and ack;
4. the primary replies to the client once a majority of the group
   (including itself) has stored the update.

Fail-over: on suspecting the primary, the first unsuspected replica takes
over, installs itself as primary, and (re)processes every buffered request
it has no update for.  Duplicate execution of an update the old primary
never managed to propagate is visible as a repeated rid in the update log
-- the takeover skips rids it already has updates for, mirroring classic
primary-backup at-most-once bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.core.messages import Reply, Request
from repro.failure.detector import (
    FailureDetector,
    HeartbeatFailureDetector,
    resolve_fd,
)
from repro.sim.component import ComponentProcess
from repro.statemachine.base import StateMachine


@dataclass(frozen=True, slots=True)
class StateUpdate:
    """Primary-to-backup state propagation."""

    seqno: int
    rid: str
    value: Any
    snapshot_token: int  # identifies the snapshot payload (sent alongside)
    snapshot: Any


@dataclass(frozen=True, slots=True)
class UpdateAck:
    seqno: int


class PassiveReplicationServer(ComponentProcess):
    """One replica of a primary-backup group."""

    def __init__(
        self,
        pid: str,
        group: Sequence[str],
        machine: StateMachine,
        fd: FailureDetector,
    ) -> None:
        super().__init__(pid)
        if pid not in group:
            raise ValueError(f"{pid} not in group {group}")
        self.group: Tuple[str, ...] = tuple(group)
        self.machine = machine
        self.fd = resolve_fd(fd, self)
        fd = self.fd
        self.requests: Dict[str, Request] = {}
        self.update_log: List[StateUpdate] = []
        self._updated_rids: Set[str] = set()
        self._next_seqno = 1
        self._pending_acks: Dict[int, Set[str]] = {}
        self._pending_reply: Dict[int, Request] = {}
        self._unprocessed: List[str] = []
        if isinstance(fd, HeartbeatFailureDetector):
            self.add_component(fd)
        fd.add_listener(self._on_suspicion)

    @property
    def majority(self) -> int:
        return len(self.group) // 2 + 1

    @property
    def current_primary(self) -> str:
        for pid in self.group:
            if not self.fd.is_suspected(pid):
                return pid
        return self.group[0]

    @property
    def is_primary(self) -> bool:
        return self.current_primary == self.pid

    @property
    def delivered_order(self) -> Tuple[str, ...]:
        return tuple(update.rid for update in self.update_log)

    # ------------------------------------------------------------------

    def on_app_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Request):
            self._on_request(payload)
        elif isinstance(payload, StateUpdate):
            self._on_update(src, payload)
        elif isinstance(payload, UpdateAck):
            self._on_ack(src, payload)

    def _on_request(self, request: Request) -> None:
        if request.rid in self.requests:
            return
        self.requests[request.rid] = request
        self.env.trace("r_deliver", rid=request.rid)
        if self.is_primary:
            self._process(request)
        else:
            self._unprocessed.append(request.rid)

    def _process(self, request: Request) -> None:
        if request.rid in self._updated_rids:
            return
        result = self.machine.apply(request.op)
        seqno = self._next_seqno
        self._next_seqno += 1
        update = StateUpdate(
            seqno=seqno,
            rid=request.rid,
            value=result,
            snapshot_token=seqno,
            snapshot=self.machine.snapshot(),
        )
        self._install(update)
        self.env.trace(
            "primary_process", rid=request.rid, seqno=seqno, value=result
        )
        self._pending_acks[seqno] = {self.pid}
        self._pending_reply[seqno] = request
        for member in self.group:
            if member != self.pid:
                self.env.send(member, update)
        self._maybe_reply(seqno)

    def _install(self, update: StateUpdate) -> None:
        self.update_log.append(update)
        self._updated_rids.add(update.rid)

    def _on_update(self, src: str, update: StateUpdate) -> None:
        if update.rid in self._updated_rids:
            return
        self.machine.restore(update.snapshot)
        self._install(update)
        self._next_seqno = max(self._next_seqno, update.seqno + 1)
        self.env.trace("backup_install", rid=update.rid, seqno=update.seqno)
        self.env.send(src, UpdateAck(update.seqno))

    def _on_ack(self, src: str, ack: UpdateAck) -> None:
        acks = self._pending_acks.get(ack.seqno)
        if acks is None:
            return
        acks.add(src)
        self._maybe_reply(ack.seqno)

    def _maybe_reply(self, seqno: int) -> None:
        acks = self._pending_acks.get(seqno)
        request = self._pending_reply.get(seqno)
        if acks is None or request is None or len(acks) < self.majority:
            return
        update = next(u for u in self.update_log if u.seqno == seqno)
        del self._pending_acks[seqno]
        del self._pending_reply[seqno]
        position = self.update_log.index(update) + 1
        self.env.trace(
            "a_deliver", rid=request.rid, position=position, value=update.value,
            epoch=0,
        )
        self.env.send(
            request.client,
            Reply(
                rid=request.rid,
                value=update.value,
                position=position,
                weight=frozenset(self.group),
                epoch=0,
                conservative=True,
            ),
        )

    # ------------------------------------------------------------------

    def _on_suspicion(self, pid: str, suspected: bool) -> None:
        if not suspected or not self.is_primary:
            return
        # We just became (or remain) the primary.  First, re-reply for
        # every installed update: the old primary may have died between
        # propagating an update and answering the client (the client
        # deduplicates).  Then process everything buffered that no
        # installed update covers.
        for update in self.update_log:
            request = self.requests.get(update.rid)
            if request is None:
                continue
            position = self.update_log.index(update) + 1
            self.env.send(
                request.client,
                Reply(
                    rid=request.rid,
                    value=update.value,
                    position=position,
                    weight=frozenset(self.group),
                    epoch=0,
                    conservative=True,
                ),
            )
        backlog, self._unprocessed = self._unprocessed, []
        for rid in backlog:
            if rid not in self._updated_rids:
                self._process(self.requests[rid])
