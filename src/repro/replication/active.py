"""Classic active replication client: adopt the first reply.

With a *correct* Atomic Broadcast (e.g. the consensus-based one), all
replies are identical and the first is as good as any -- this client is
what the paper calls "the usual active replication technique" and is the
right client for :class:`~repro.broadcast.ct_abcast.CTAtomicBroadcastServer`.

Over the sequencer baseline it reproduces the client side of
Figure 1(b): the first reply may come from a sequencer whose ordering
never survives its crash.  The trace events are the same shape as
:class:`~repro.core.client.OARClient`'s, so the external-consistency
checker can score both clients identically.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.broadcast.reliable import ReliableMulticast
from repro.core.client import AdoptedReply
from repro.core.messages import Reply, Request
from repro.sim.component import ComponentProcess


class FirstReplyClient(ComponentProcess):
    """Send to all replicas; adopt whatever reply arrives first.

    Parameters
    ----------
    pid:
        Client identifier.
    servers:
        The replica group.
    reliable:
        When True, requests are R-multicast (required by servers that
        expect reliable dissemination, e.g. the CT Atomic Broadcast
        replicas); when False, requests are plain sends to every replica
        (the sequencer baseline of Figure 1).
    on_adopt:
        Optional callback fired on adoption (for closed-loop drivers).
    """

    def __init__(
        self,
        pid: str,
        servers: Sequence[str],
        reliable: bool = False,
        on_adopt: Optional[Callable[[AdoptedReply], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.servers: Tuple[str, ...] = tuple(servers)
        self.reliable = reliable
        self.on_adopt = on_adopt
        self.rmc = self.add_component(ReliableMulticast(self, self._unexpected_rdeliver))
        self._counter = itertools.count()
        self._submit_times: Dict[str, float] = {}
        self.adopted: Dict[str, AdoptedReply] = {}
        self.conflicting_replies = 0

    @property
    def outstanding(self) -> int:
        return len(self._submit_times) - len(self.adopted)

    def submit(self, op: Tuple[Any, ...]) -> str:
        rid = f"{self.pid}-{next(self._counter)}"
        request = Request(rid=rid, client=self.pid, op=tuple(op))
        self._submit_times[rid] = self.env.now
        self.env.trace("submit", rid=rid, op=request.op)
        if self.reliable:
            self.rmc.multicast(request, self.servers)
        else:
            for server in self.servers:
                self.env.send(server, request)
        return rid

    def on_app_message(self, src: str, payload: Any) -> None:
        if not isinstance(payload, Reply):
            return
        adopted = self.adopted.get(payload.rid)
        if adopted is not None:
            # Later replies that disagree with the adopted one reveal the
            # external inconsistency of the unsafe baseline.
            if (
                adopted.value != payload.value
                or adopted.position != payload.position
            ):
                self.conflicting_replies += 1
                self.env.trace(
                    "conflicting_reply",
                    rid=payload.rid,
                    adopted_value=adopted.value,
                    adopted_position=adopted.position,
                    value=payload.value,
                    position=payload.position,
                    server=src,
                )
            return
        submit_time = self._submit_times.get(payload.rid)
        if submit_time is None:
            return
        record = AdoptedReply(
            rid=payload.rid,
            value=payload.value,
            position=payload.position,
            epoch=payload.epoch,
            weight=tuple(sorted(payload.weight)),
            conservative=payload.conservative,
            submit_time=submit_time,
            adopt_time=self.env.now,
        )
        self.adopted[payload.rid] = record
        self.env.trace(
            "adopt",
            rid=payload.rid,
            value=payload.value,
            position=payload.position,
            epoch=payload.epoch,
            weight=record.weight,
            conservative=payload.conservative,
            latency=record.latency,
        )
        if self.on_adopt is not None:
            self.on_adopt(record)

    @staticmethod
    def _unexpected_rdeliver(origin: str, payload: Any) -> None:
        raise RuntimeError(
            f"client R-delivered unexpected payload from {origin}: {payload!r}"
        )
