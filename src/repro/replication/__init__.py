"""Replication techniques (Section 2.1) used as comparison baselines.

* :class:`~repro.replication.active.FirstReplyClient` -- the classic
  active-replication client: send the request to every replica, adopt the
  first reply.  Safe over a correct Atomic Broadcast; unsafe over the
  sequencer baseline (which is the paper's motivating observation).
* :mod:`repro.replication.passive` -- primary-backup (passive)
  replication: the primary executes and propagates state updates to the
  secondaries.  Included for the latency comparison and to exercise the
  fail-over discussion of Section 2.2.
"""

from repro.replication.active import FirstReplyClient
from repro.replication.passive import PassiveReplicationServer

__all__ = ["FirstReplyClient", "PassiveReplicationServer"]
