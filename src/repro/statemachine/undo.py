"""The undo log used by the OAR server for ``Opt-undeliver``.

Each optimistic delivery pushes an entry; ``Opt-undeliver`` pops entries
in reverse delivery order (the paper's footnote 2: "undelivery of messages
should generally be performed in the reverse order of delivery").  When an
epoch settles (end of phase 2), the log is cleared: A-delivered and Good
messages can never be undone (Section 4).

This is exactly the save-point discipline the conclusion (Section 6)
describes for transactional environments: one save-point per optimistic
delivery, rollback for ``Bad``, commit for ``Good``.

With the parallel execution engine (:mod:`repro.core.execution`,
``OARConfig.exec_cost > 0``) an optimistic delivery and its *execution*
are separate instants: the entry is pushed **pending** (no closure) at
delivery time, keeping the log aligned with ``O_delivered`` in delivery
order, and :meth:`resolve`\\ d with the real inverse once the op leaves
its execution lane.  Undoing a still-pending entry is a no-op on state
(the op never applied -- the engine cancels it), and resolving a tag the
log no longer holds (the epoch settled while the op was in a lane) is
silently ignored: settled entries can never be undone, so their inverses
are dead weight.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class _Entry:
    """One (tag, undo) record; ``undo`` is None while execution is pending."""

    __slots__ = ("tag", "undo")

    def __init__(self, tag: str, undo: Optional[Callable[[], None]]) -> None:
        self.tag = tag
        self.undo = undo


class UndoLog:
    """A LIFO log of (tag, undo_closure) entries."""

    def __init__(self) -> None:
        self._entries: List[_Entry] = []
        # Pending (unresolved) entries by tag; tags are unique within an
        # epoch, and the index is cleared with the entries on commit.
        self._pending: Dict[str, _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tags(self) -> List[str]:
        """Tags of pending entries, oldest first."""
        return [entry.tag for entry in self._entries]

    def push(self, tag: str, undo: Callable[[], None]) -> None:
        """Record that ``tag`` (a request id) was applied and can be undone."""
        self._entries.append(_Entry(tag, undo))

    def push_pending(self, tag: str) -> None:
        """Record that ``tag`` was *delivered* but not yet executed.

        Keeps the log aligned with the delivery order while the op waits
        in (or occupies) an execution lane; :meth:`resolve` fills in the
        inverse when the execution completes.
        """
        entry = _Entry(tag, None)
        self._entries.append(entry)
        self._pending[tag] = entry

    def resolve(self, tag: str, undo: Callable[[], None]) -> None:
        """Attach the real inverse to a pending entry.

        A no-op when the entry is gone -- the epoch settled (commit) or
        the suffix was undone while the op was still in flight; either
        way the inverse can never legally run.
        """
        entry = self._pending.pop(tag, None)
        if entry is not None:
            entry.undo = undo

    def undo_last(self, expected_tag: str) -> bool:
        """Undo the most recent entry, verifying it matches ``expected_tag``.

        The OAR server only ever undoes a *suffix* of the delivered
        sequence (undo-legality property), so out-of-order undo indicates
        a protocol bug -- fail loudly rather than corrupt state.  Returns
        True when an inverse actually ran, False when the entry was still
        pending (the op never executed, so there is nothing to revert --
        the execution engine cancelled it).
        """
        if not self._entries:
            raise RuntimeError(f"undo of {expected_tag!r} with empty undo log")
        entry = self._entries.pop()
        if entry.tag != expected_tag:
            raise RuntimeError(
                f"out-of-order undo: expected {expected_tag!r}, found {entry.tag!r}"
            )
        self._pending.pop(entry.tag, None)
        if entry.undo is None:
            return False
        entry.undo()
        return True

    def pop_last(self, expected_tag: str) -> Optional[Callable[[], None]]:
        """Pop the most recent entry *without running it*, verifying the tag.

        Same suffix discipline (and the same loud failure on
        out-of-order pops) as :meth:`undo_last`, but the inverse closure
        is returned unrun so the caller can charge its execution through
        the engine's lane model.  Returns ``None`` when the entry was
        still pending (the op never executed -- nothing to revert).
        """
        if not self._entries:
            raise RuntimeError(f"undo of {expected_tag!r} with empty undo log")
        entry = self._entries.pop()
        if entry.tag != expected_tag:
            raise RuntimeError(
                f"out-of-order undo: expected {expected_tag!r}, found {entry.tag!r}"
            )
        self._pending.pop(entry.tag, None)
        return entry.undo

    def commit(self) -> None:
        """Settle all pending entries (end of epoch): they can never be undone."""
        self._entries.clear()
        self._pending.clear()
