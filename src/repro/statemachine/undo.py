"""The undo log used by the OAR server for ``Opt-undeliver``.

Each optimistic delivery pushes an entry; ``Opt-undeliver`` pops entries
in reverse delivery order (the paper's footnote 2: "undelivery of messages
should generally be performed in the reverse order of delivery").  When an
epoch settles (end of phase 2), the log is cleared: A-delivered and Good
messages can never be undone (Section 4).

This is exactly the save-point discipline the conclusion (Section 6)
describes for transactional environments: one save-point per optimistic
delivery, rollback for ``Bad``, commit for ``Good``.
"""

from __future__ import annotations

from typing import Callable, List, Tuple


class UndoLog:
    """A LIFO log of (tag, undo_closure) entries."""

    def __init__(self) -> None:
        self._entries: List[Tuple[str, Callable[[], None]]] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tags(self) -> List[str]:
        """Tags of pending entries, oldest first."""
        return [tag for tag, _undo in self._entries]

    def push(self, tag: str, undo: Callable[[], None]) -> None:
        """Record that ``tag`` (a request id) was applied and can be undone."""
        self._entries.append((tag, undo))

    def undo_last(self, expected_tag: str) -> None:
        """Undo the most recent entry, verifying it matches ``expected_tag``.

        The OAR server only ever undoes a *suffix* of the delivered
        sequence (undo-legality property), so out-of-order undo indicates
        a protocol bug -- fail loudly rather than corrupt state.
        """
        if not self._entries:
            raise RuntimeError(f"undo of {expected_tag!r} with empty undo log")
        tag, undo = self._entries.pop()
        if tag != expected_tag:
            raise RuntimeError(
                f"out-of-order undo: expected {expected_tag!r}, found {tag!r}"
            )
        undo()

    def commit(self) -> None:
        """Settle all pending entries (end of epoch): they can never be undone."""
        self._entries.clear()
