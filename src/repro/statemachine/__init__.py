"""Deterministic replicated state machines and undo machinery.

Active replication requires servers to be deterministic (Section 2.1), and
the OAR protocol additionally requires the effects of an optimistically
processed request to be *undoable* (the ``Opt-undeliver`` primitive,
Section 4; the transactional discussion in Section 6).

This package provides:

* :class:`~repro.statemachine.base.StateMachine` -- the interface the OAR
  server programs against.
* Concrete machines: :class:`~repro.statemachine.stack.StackMachine`
  (the push/pop service of Figure 1),
  :class:`~repro.statemachine.kvstore.KVStoreMachine`,
  :class:`~repro.statemachine.counter.CounterMachine`, and
  :class:`~repro.statemachine.bank.BankMachine` (the transactional
  scenario of the paper's conclusion).
* :class:`~repro.statemachine.undo.UndoLog` -- the save-point stack used
  by the server to roll back ``Bad`` messages in reverse delivery order
  (footnote 2 of the paper).
"""

from repro.statemachine.bank import BankMachine
from repro.statemachine.base import (
    MigratableMachine,
    OpResult,
    SplittableMachine,
    StateMachine,
    WrongShard,
)
from repro.statemachine.counter import CounterMachine
from repro.statemachine.kvstore import KVStoreMachine
from repro.statemachine.stack import StackMachine
from repro.statemachine.undo import UndoLog

__all__ = [
    "BankMachine",
    "CounterMachine",
    "KVStoreMachine",
    "MigratableMachine",
    "OpResult",
    "SplittableMachine",
    "StackMachine",
    "StateMachine",
    "UndoLog",
    "WrongShard",
]
