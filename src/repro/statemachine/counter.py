"""A deterministic replicated counter -- the simplest useful state machine.

Its main role in the reproduction is as the *order-revealing* service used
by the correctness checkers: ``("incr",)`` returns the post-increment
value, which equals the request's global processing position when every
request is an increment.  This realizes the convention of the paper's
proofs (Appendix A: "the reply ... is a number whose value indicates the
order of processing of the client request").

Operations::

    ("incr",)       -> ok, new value
    ("incr", n)     -> ok, new value (add n)
    ("decr",)       -> ok, new value
    ("read",)       -> ok, current value
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.statemachine.base import OpResult, StateMachine


class CounterMachine(StateMachine):
    """An integer counter with exact inverse operations."""

    def __init__(self, initial: int = 0) -> None:
        self._value = initial

    def state(self) -> int:
        return self._value

    def restore(self, snapshot: int) -> None:
        self._value = snapshot

    def fingerprint(self) -> int:
        return self._value

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        result, _undo = self.apply_with_undo(op)
        return result

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        name = op[0] if op else None

        if name == "incr" and len(op) in (1, 2):
            amount = op[1] if len(op) == 2 else 1
            if not isinstance(amount, int):
                return self.bad_op(op), _noop
            self._value += amount
            return OpResult(ok=True, value=self._value), self._make_add(-amount)

        if name == "decr" and len(op) in (1, 2):
            amount = op[1] if len(op) == 2 else 1
            if not isinstance(amount, int):
                return self.bad_op(op), _noop
            self._value -= amount
            return OpResult(ok=True, value=self._value), self._make_add(amount)

        if name == "read" and len(op) == 1:
            return OpResult(ok=True, value=self._value), _noop

        return self.bad_op(op), _noop

    def _make_add(self, amount: int) -> Callable[[], None]:
        def undo() -> None:
            self._value += amount

        return undo


def _noop() -> None:
    """Undo of a read-only or failed operation."""
