"""A deterministic replicated counter -- the simplest useful state machine.

Its main role in the reproduction is as the *order-revealing* service used
by the correctness checkers: ``("incr",)`` returns the post-increment
value, which equals the request's global processing position when every
request is an increment.  This realizes the convention of the paper's
proofs (Appendix A: "the reply ... is a number whose value indicates the
order of processing of the client request").

Operations::

    ("incr",)       -> ok, new value
    ("incr", n)     -> ok, new value (add n)
    ("decr",)       -> ok, new value
    ("read",)       -> ok, current value

The counter is also the minimal demonstration of *commutative key
splitting* (the sharded version lives in
:class:`~repro.statemachine.base.SplittableMachine`): its value is a sum,
so it can be decomposed into fragments with disjoint conflict footprints
that the execution engine runs on separate lanes::

    ("split", n)         -> ok, n; decompose the value into n fragments
                            (error if already split or n < 2)
    ("fincr", i)         -> ok, new fragment value (add 1 to fragment i)
    ("fincr", i, amount) -> ok, new fragment value
    ("unsplit",)         -> ok, merged value (error if not split)

While split, ``incr``/``decr`` land on fragment 0 and ``read`` returns
the sum of all fragments, so the logical value is always observable.
``fincr`` ops on different fragments carry disjoint
:meth:`~repro.statemachine.base.StateMachine.conflict_footprint`\\ s;
everything else stays global.  Splitting conserves the value exactly:
``sum(fragments) == value`` at every point, across undo/redo.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple, Union

from repro.statemachine.base import OpResult, StateMachine

#: Snapshot shape: a plain int when unsplit (backward compatible), or
#: ("split", (frag0, frag1, ...)) while split.
CounterState = Union[int, Tuple[str, Tuple[int, ...]]]


class CounterMachine(StateMachine):
    """An integer counter with exact inverse operations."""

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._frags: Optional[List[int]] = None

    def state(self) -> CounterState:
        if self._frags is None:
            return self._value
        return ("split", tuple(self._frags))

    def restore(self, snapshot: CounterState) -> None:
        if snapshot.__class__ is tuple:
            self._frags = list(snapshot[1])
            self._value = 0
        else:
            self._value = snapshot
            self._frags = None

    def fingerprint(self) -> CounterState:
        return self.state()

    def value(self) -> int:
        """The logical value, regardless of split state."""
        if self._frags is None:
            return self._value
        return sum(self._frags)

    def fragments(self) -> Optional[Tuple[int, ...]]:
        """Current fragment values, or None when unsplit."""
        return None if self._frags is None else tuple(self._frags)

    @staticmethod
    def keys_of(op: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Fragment increments are keyed by fragment; the rest is global.

        The counter is unsharded, so these keys never route anywhere --
        their only effect is the derived conflict footprint: two
        ``fincr`` ops on different fragments commute and may run on
        different execution lanes, while ``split``/``unsplit``/``read``
        (and plain ``incr``) keep the global footprint and fence the
        pipeline.
        """
        if op and op[0] == "fincr" and len(op) in (2, 3):
            return (f"#f{op[1]}",)
        return ()

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        result, _undo = self.apply_with_undo(op)
        return result

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        name = op[0] if op else None

        if name == "incr" and len(op) in (1, 2):
            amount = op[1] if len(op) == 2 else 1
            if not isinstance(amount, int):
                return self.bad_op(op), _noop
            return self._add(amount)

        if name == "decr" and len(op) in (1, 2):
            amount = op[1] if len(op) == 2 else 1
            if not isinstance(amount, int):
                return self.bad_op(op), _noop
            return self._add(-amount)

        if name == "read" and len(op) == 1:
            return OpResult(ok=True, value=self.value()), _noop

        if name == "split" and len(op) == 2:
            return self._split(op[1])

        if name == "fincr" and len(op) in (2, 3):
            amount = op[2] if len(op) == 3 else 1
            return self._fincr(op[1], amount)

        if name == "unsplit" and len(op) == 1:
            return self._unsplit()

        return self.bad_op(op), _noop

    # ------------------------------------------------------------------
    # Split family
    # ------------------------------------------------------------------

    def _split(self, n: Any) -> Tuple[OpResult, Callable[[], None]]:
        if not isinstance(n, int) or n < 2:
            return OpResult(ok=False, error=f"split: need int n >= 2, got {n!r}"), _noop
        if self._frags is not None:
            return OpResult(ok=False, error="split: already split"), _noop
        value = self._value
        part, rem = divmod(value, n)
        # Fragment 0 absorbs the remainder, so the parts sum exactly.
        frags = [part + rem] + [part] * (n - 1)
        self._frags = frags
        self._value = 0

        def undo_split() -> None:
            self._frags = None
            self._value = value

        return OpResult(ok=True, value=n), undo_split

    def _fincr(self, index: Any, amount: Any) -> Tuple[OpResult, Callable[[], None]]:
        if not isinstance(amount, int):
            return self.bad_op(("fincr", index, amount)), _noop
        if self._frags is None:
            return OpResult(ok=False, error="fincr: counter is not split"), _noop
        if not isinstance(index, int) or not 0 <= index < len(self._frags):
            return OpResult(ok=False, error=f"fincr: no fragment {index!r}"), _noop
        self._frags[index] += amount

        def undo_fincr() -> None:
            self._frags[index] -= amount

        return OpResult(ok=True, value=self._frags[index]), undo_fincr

    def _unsplit(self) -> Tuple[OpResult, Callable[[], None]]:
        if self._frags is None:
            return OpResult(ok=False, error="unsplit: not split"), _noop
        frags = self._frags
        self._frags = None
        self._value = sum(frags)

        def undo_unsplit() -> None:
            self._frags = frags
            self._value = 0

        return OpResult(ok=True, value=self._value), undo_unsplit

    # ------------------------------------------------------------------

    def _add(self, amount: int) -> Tuple[OpResult, Callable[[], None]]:
        if self._frags is not None:
            # While split, plain increments land on fragment 0 (any
            # fragment would conserve the sum; 0 is the deterministic pick).
            self._frags[0] += amount

            def undo_frag() -> None:
                self._frags[0] -= amount

            return OpResult(ok=True, value=self.value()), undo_frag
        self._value += amount
        return OpResult(ok=True, value=self._value), self._make_add(-amount)

    def _make_add(self, amount: int) -> Callable[[], None]:
        def undo() -> None:
            self._value += amount

        return undo


def _noop() -> None:
    """Undo of a read-only or failed operation."""
