"""A transactional bank-accounts state machine.

This is the workload for the transactional scenario sketched in the
paper's conclusion (Section 6): operations map naturally to transactions
that can be rolled back when a message is Opt-undelivered -- each
operation here has an exact O(1) inverse, so an Opt-undeliver is the
rollback of the corresponding "transaction".

Operations::

    ("open", account)                    -> ok, 0; error if exists
    ("deposit", account, amount)         -> ok, new balance
    ("withdraw", account, amount)        -> ok, new balance; error on overdraft
    ("transfer", src, dst, amount)       -> ok, (src_balance, dst_balance);
                                            error on overdraft / missing account
    ("balance", account)                 -> ok, balance; error if missing
    ("total",)                           -> ok, sum of all balances (invariant probe)

Amounts are integers (cents); negative amounts are rejected
deterministically.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.statemachine.base import OpResult, StateMachine


class BankMachine(StateMachine):
    """Deterministic accounts map with exact inverse operations."""

    def __init__(self, initial_accounts: Dict[str, int] = None) -> None:
        self._accounts: Dict[str, int] = dict(initial_accounts or {})

    def state(self) -> Dict[str, int]:
        return self._accounts

    def restore(self, snapshot: Dict[str, int]) -> None:
        self._accounts = dict(snapshot)

    def fingerprint(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self._accounts.items()))

    def total_balance(self) -> int:
        """Conserved under deposit-free workloads; used by invariant tests."""
        return sum(self._accounts.values())

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        result, _undo = self.apply_with_undo(op)
        return result

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        name = op[0] if op else None

        if name == "open" and len(op) == 2:
            account = op[1]
            if account in self._accounts:
                return OpResult(ok=False, error=f"open: {account} exists"), _noop
            self._accounts[account] = 0

            def undo_open() -> None:
                self._accounts.pop(account, None)

            return OpResult(ok=True, value=0), undo_open

        if name == "deposit" and len(op) == 3:
            account, amount = op[1], op[2]
            error = self._check(account, amount)
            if error:
                return error, _noop
            self._accounts[account] += amount
            return (
                OpResult(ok=True, value=self._accounts[account]),
                self._make_adjust(account, -amount),
            )

        if name == "withdraw" and len(op) == 3:
            account, amount = op[1], op[2]
            error = self._check(account, amount)
            if error:
                return error, _noop
            if self._accounts[account] < amount:
                return OpResult(ok=False, error=f"withdraw: overdraft on {account}"), _noop
            self._accounts[account] -= amount
            return (
                OpResult(ok=True, value=self._accounts[account]),
                self._make_adjust(account, amount),
            )

        if name == "transfer" and len(op) == 4:
            src, dst, amount = op[1], op[2], op[3]
            error = self._check(src, amount) or self._check(dst, amount)
            if error:
                return error, _noop
            if self._accounts[src] < amount:
                return OpResult(ok=False, error=f"transfer: overdraft on {src}"), _noop
            self._accounts[src] -= amount
            self._accounts[dst] += amount

            def undo_transfer() -> None:
                self._accounts[src] += amount
                self._accounts[dst] -= amount

            return (
                OpResult(ok=True, value=(self._accounts[src], self._accounts[dst])),
                undo_transfer,
            )

        if name == "balance" and len(op) == 2:
            account = op[1]
            if account not in self._accounts:
                return OpResult(ok=False, error=f"balance: no account {account}"), _noop
            return OpResult(ok=True, value=self._accounts[account]), _noop

        if name == "total" and len(op) == 1:
            return OpResult(ok=True, value=self.total_balance()), _noop

        return self.bad_op(op), _noop

    def _check(self, account: str, amount: Any) -> OpResult:
        """Shared precondition checks; returns an error result or None."""
        if account not in self._accounts:
            return OpResult(ok=False, error=f"no account {account}")
        if not isinstance(amount, int) or amount < 0:
            return OpResult(ok=False, error=f"bad amount {amount!r}")
        return None

    def _make_adjust(self, account: str, delta: int) -> Callable[[], None]:
        def undo() -> None:
            self._accounts[account] += delta

        return undo


def _noop() -> None:
    """Undo of a read-only or failed operation."""
