"""A transactional bank-accounts state machine.

This is the workload for the transactional scenario sketched in the
paper's conclusion (Section 6): operations map naturally to transactions
that can be rolled back when a message is Opt-undelivered -- each
operation here has an exact O(1) inverse, so an Opt-undeliver is the
rollback of the corresponding "transaction".

Operations::

    ("open", account)                    -> ok, 0; error if exists
    ("deposit", account, amount)         -> ok, new balance
    ("withdraw", account, amount)        -> ok, new balance; error on overdraft
    ("transfer", src, dst, amount)       -> ok, (src_balance, dst_balance);
                                            error on overdraft / missing account
    ("balance", account)                 -> ok, balance; error if missing
    ("total",)                           -> ok, sum of all balances (invariant probe)

Amounts are integers (cents); negative amounts are rejected
deterministically.

Cross-shard transactions (``repro.sharding``) add an escrow protocol so a
transfer whose accounts live in *different* replication groups stays
atomic.  The sharded client decomposes the transfer into per-shard
branches (see :meth:`BankMachine.tx_branches`), each an ordinary
replicated request on its shard::

    ("tx_prepare", txid, "debit", account, amount)
        -> ok, remaining balance; moves the amount out of the account
           into escrow under ``txid`` (error on overdraft -- the whole
           transaction then aborts)
    ("tx_prepare", txid, "credit", account, amount)
        -> ok, current balance; records the pending credit (applied only
           at commit, so an aborting transfer never exposes funds)
    ("tx_commit", txid)                  -> ok; debit escrow is released
                                            (the money left this shard),
                                            credit is applied
    ("tx_abort", txid)                   -> ok; debit escrow returns to the
                                            account, credit is dropped

The conserved quantity under transfer-only workloads is
:meth:`conserved_total` = account balances + escrowed debits + balances
exported by in-flight key migrations, summed across all shards; the
cross-shard atomicity and migration checkers assert it.

Live rebalancing (``repro.sharding.rebalance``) migrates whole accounts
between shards via the ``mig_*`` family of
:class:`~repro.statemachine.base.MigratableMachine`; the exported state
of an account is its balance.  An account with a pending escrow hold
refuses to export (:meth:`export_blocked`), so the transfer escrow and
the migration escrow never interleave on one account.

A single *hot* account can further be split into fragment accounts
(``a001#f0``, ``a001#f1``, ...) via the ``split_open``/``split_close``
family of :class:`~repro.statemachine.base.SplittableMachine`: the
balance is a sum, so it partitions exactly.  While split, deposits are
commutative (any fragment), withdrawals run against one fragment's local
balance -- an overdraft then reports the fragment's available balance as
``("short", available)`` so the sharded client can borrow from a sibling
fragment via an ordinary transfer and retry -- and ``balance`` reads
merge-on-read (sum over fragments).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.statemachine.base import OpResult, SplittableMachine

#: One escrow entry: ("debit" | "credit", account, amount).
HoldEntry = Tuple[str, str, int]


class BankMachine(SplittableMachine):
    """Deterministic accounts map with exact inverse operations."""

    def __init__(
        self,
        initial_accounts: Dict[str, int] = None,
        owned: Optional[Iterable[str]] = None,
    ) -> None:
        self._accounts: Dict[str, int] = dict(initial_accounts or {})
        self._holds: Dict[str, HoldEntry] = {}
        self._init_migration(owned)

    def state(self) -> Dict[str, Any]:
        return {
            "accounts": self._accounts,
            "holds": self._holds,
            "migration": self._migration_state(),
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self._accounts = dict(snapshot["accounts"])
        self._holds = dict(snapshot["holds"])
        self._restore_migration(snapshot.get("migration"))

    def fingerprint(self) -> Tuple[Tuple[Any, ...], ...]:
        accounts = tuple(sorted(self._accounts.items()))
        if self._holds:
            accounts = accounts + (
                ("__holds__", tuple(sorted(self._holds.items()))),
            )
        return accounts + self._migration_fingerprint()

    def total_balance(self) -> int:
        """Conserved under deposit-free workloads; used by invariant tests."""
        return sum(self._accounts.values())

    def escrowed_total(self) -> int:
        """Funds debited but not yet committed (in flight between shards)."""
        return sum(
            amount for kind, _account, amount in self._holds.values()
            if kind == "debit"
        )

    def migrating_total(self) -> int:
        """Balances exported by migrations still in this shard's escrow."""
        return sum(
            state for _key, _dst, state in self._outbound.values()
            if isinstance(state, int)
        )

    def conserved_total(self) -> int:
        """Balances + both escrows: the cross-shard conservation invariant.

        A balance exported by ``mig_prepare`` is counted here (at the
        source) until ``mig_forget``; between ``mig_install`` and the
        forget it is briefly counted on both shards, which the migration
        checker compensates for by subtracting installed-but-unforgotten
        exports (see :func:`~repro.analysis.checkers.
        check_migration_atomicity`).
        """
        return self.total_balance() + self.escrowed_total() + self.migrating_total()

    def pending_holds(self) -> Dict[str, HoldEntry]:
        """Escrow entries of transactions not yet committed or aborted."""
        return dict(self._holds)

    # ------------------------------------------------------------------
    # Sharding hooks
    # ------------------------------------------------------------------

    @staticmethod
    def keys_of(op: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """The accounts an operation touches (its routing keys)."""
        name = op[0] if op else None
        if name in ("open", "deposit", "withdraw", "balance") and len(op) >= 2:
            return (op[1],)
        if name == "transfer" and len(op) == 4:
            return (op[1], op[2])
        if name == "tx_prepare" and len(op) == 5:
            return (op[3],)
        return ()  # total / tx_commit / tx_abort: routed explicitly

    @staticmethod
    def is_read_only(op: Tuple[Any, ...]) -> bool:
        """``balance`` and ``total`` never mutate; the tx/mig families do."""
        name = op[0] if op else None
        return (name == "balance" and len(op) == 2) or (name == "total" and len(op) == 1)

    @staticmethod
    def tx_branches(
        op: Tuple[Any, ...], txid: str
    ) -> Optional[Dict[Any, Tuple[Any, ...]]]:
        """Split a transfer into a debit and a credit prepare branch."""
        if op and op[0] == "transfer" and len(op) == 4:
            src, dst, amount = op[1], op[2], op[3]
            return {
                src: ("tx_prepare", txid, "debit", src, amount),
                dst: ("tx_prepare", txid, "credit", dst, amount),
            }
        return None

    # -- live migration (MigratableMachine) -----------------------------

    def export_key(self, key: str) -> int:
        return self._accounts.pop(key)

    def install_key(self, key: str, state: int) -> None:
        self._accounts[key] = state

    def export_blocked(self, key: str) -> Optional[str]:
        if key not in self._accounts:
            return f"no account {key}"
        for txid, (_kind, account, _amount) in self._holds.items():
            if account == key:
                return f"escrow hold {txid} pending on {key}"
        return None

    # -- hot-key splitting (SplittableMachine) --------------------------

    def split_parts(self, state: int, n: int) -> Tuple[int, ...]:
        """Partition a balance into n integer shares (exact: they sum back)."""
        part, rem = divmod(state, n)
        return (part + rem,) + (part,) * (n - 1)

    def merge_parts(self, parts: Tuple[int, ...]) -> int:
        return sum(parts)

    @classmethod
    def split_kind(cls, op: Tuple[Any, ...]) -> Optional[str]:
        """Deposits commute, withdrawals are budget-limited, balance merges.

        ``transfer`` endpoints are also commutative-in ("local") when the
        split account is the *destination*; a split *source* is budgeted
        like a withdrawal.  The client rewrite only consults this hook for
        single-key ops, so transfer is classified by
        :meth:`~repro.statemachine.base.SplittableMachine.fragment_op`
        substitution instead: both roles rewrite onto one fragment, and a
        short debit branch surfaces as a failed prepare the client
        retries after borrowing.
        """
        name = op[0] if op else None
        if name == "deposit" and len(op) == 3:
            return "local"
        if name == "withdraw" and len(op) == 3:
            return "budget"
        if name == "balance" and len(op) == 2:
            return "read"
        return None

    @classmethod
    def merge_read(cls, op: Tuple[Any, ...], values: Tuple[Any, ...]) -> int:
        """The logical balance is the sum of fragment balances."""
        return sum(values)

    def fragment_value(self, frag: str) -> Optional[int]:
        return self._accounts.get(frag)

    # ------------------------------------------------------------------

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        result, _undo = self.apply_with_undo(op)
        return result

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        # Ownership machinery only exists on sharded machines; unsharded
        # ones (owned=None) must pay nothing for it on the hot path --
        # their mig_* ops simply fall through to bad_op.
        if self._owned is not None:
            migration = self._migration_op(op)
            if migration is not None:
                return migration
            redirect = self._ownership_guard(op)
            if redirect is not None:
                return redirect
        name = op[0] if op else None

        if name == "open" and len(op) == 2:
            account = op[1]
            if account in self._accounts:
                return OpResult(ok=False, error=f"open: {account} exists"), _noop
            self._accounts[account] = 0

            def undo_open() -> None:
                self._accounts.pop(account, None)

            return OpResult(ok=True, value=0), undo_open

        if name == "deposit" and len(op) == 3:
            account, amount = op[1], op[2]
            error = self._check(account, amount)
            if error:
                return error, _noop
            self._accounts[account] += amount
            return (
                OpResult(ok=True, value=self._accounts[account]),
                self._make_adjust(account, -amount),
            )

        if name == "withdraw" and len(op) == 3:
            account, amount = op[1], op[2]
            error = self._check(account, amount)
            if error:
                return error, _noop
            if self._accounts[account] < amount:
                # The value carries the available balance so a client
                # withdrawing from a split fragment knows the shortfall
                # to borrow from a sibling (the error string is the
                # stable API; the value is advisory).
                return (
                    OpResult(
                        ok=False,
                        value=("short", self._accounts[account]),
                        error=f"withdraw: overdraft on {account}",
                    ),
                    _noop,
                )
            self._accounts[account] -= amount
            return (
                OpResult(ok=True, value=self._accounts[account]),
                self._make_adjust(account, amount),
            )

        if name == "transfer" and len(op) == 4:
            src, dst, amount = op[1], op[2], op[3]
            error = self._check(src, amount) or self._check(dst, amount)
            if error:
                return error, _noop
            if self._accounts[src] < amount:
                return OpResult(ok=False, error=f"transfer: overdraft on {src}"), _noop
            self._accounts[src] -= amount
            self._accounts[dst] += amount

            def undo_transfer() -> None:
                self._accounts[src] += amount
                self._accounts[dst] -= amount

            return (
                OpResult(ok=True, value=(self._accounts[src], self._accounts[dst])),
                undo_transfer,
            )

        if name == "balance" and len(op) == 2:
            account = op[1]
            if account not in self._accounts:
                return OpResult(ok=False, error=f"balance: no account {account}"), _noop
            return OpResult(ok=True, value=self._accounts[account]), _noop

        if name == "total" and len(op) == 1:
            return OpResult(ok=True, value=self.total_balance()), _noop

        if name == "tx_prepare" and len(op) == 5:
            return self._tx_prepare(op[1], op[2], op[3], op[4])

        if name == "tx_commit" and len(op) == 2:
            return self._tx_finish(op[1], commit=True)

        if name == "tx_abort" and len(op) == 2:
            return self._tx_finish(op[1], commit=False)

        return self.bad_op(op), _noop

    # ------------------------------------------------------------------
    # Escrow protocol (cross-shard two-phase commit branches)
    # ------------------------------------------------------------------

    def _tx_prepare(
        self, txid: str, kind: str, account: str, amount: Any
    ) -> Tuple[OpResult, Callable[[], None]]:
        if kind not in ("debit", "credit"):
            return OpResult(ok=False, error=f"tx_prepare: bad kind {kind!r}"), _noop
        if txid in self._holds:
            return OpResult(ok=False, error=f"tx_prepare: {txid} exists"), _noop
        error = self._check(account, amount)
        if error:
            return error, _noop
        if kind == "debit":
            if self._accounts[account] < amount:
                return (
                    OpResult(ok=False, error=f"tx_prepare: overdraft on {account}"),
                    _noop,
                )
            self._accounts[account] -= amount
        self._holds[txid] = (kind, account, amount)

        def undo_prepare() -> None:
            del self._holds[txid]
            if kind == "debit":
                self._accounts[account] += amount

        return OpResult(ok=True, value=self._accounts[account]), undo_prepare

    def _tx_finish(self, txid: str, commit: bool) -> Tuple[OpResult, Callable[[], None]]:
        hold = self._holds.get(txid)
        verb = "tx_commit" if commit else "tx_abort"
        if hold is None:
            return OpResult(ok=False, error=f"{verb}: no such tx {txid}"), _noop
        kind, account, amount = hold
        del self._holds[txid]
        # Commit applies a pending credit (a committed debit simply leaves
        # this shard); abort returns an escrowed debit to its account.
        applied = (commit and kind == "credit") or (not commit and kind == "debit")
        if applied:
            self._accounts[account] += amount

        def undo_finish() -> None:
            if applied:
                self._accounts[account] -= amount
            self._holds[txid] = hold

        return OpResult(ok=True, value=self._accounts[account]), undo_finish

    # ------------------------------------------------------------------

    def _check(self, account: str, amount: Any) -> OpResult:
        """Shared precondition checks; returns an error result or None."""
        if account not in self._accounts:
            return OpResult(ok=False, error=f"no account {account}")
        if not isinstance(amount, int) or amount < 0:
            return OpResult(ok=False, error=f"bad amount {amount!r}")
        return None

    def _make_adjust(self, account: str, delta: int) -> Callable[[], None]:
        def undo() -> None:
            self._accounts[account] += delta

        return undo


def _noop() -> None:
    """Undo of a read-only or failed operation."""
