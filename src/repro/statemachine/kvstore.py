"""A deterministic replicated key-value store.

Operations::

    ("set", key, value)        -> ok, previous value (or None)
    ("get", key)               -> ok, value; error if absent
    ("delete", key)            -> ok, removed value; error if absent
    ("cas", key, old, new)     -> ok, True on success; ok, False on mismatch
    ("keys",)                  -> ok, sorted tuple of keys
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.statemachine.base import OpResult, StateMachine

_ABSENT = object()  # sentinel: key had no previous binding


class KVStoreMachine(StateMachine):
    """Hash-map state machine with O(1) inverse operations."""

    def __init__(self) -> None:
        self._data: Dict[Any, Any] = {}

    def state(self) -> Dict[Any, Any]:
        return self._data

    def restore(self, snapshot: Dict[Any, Any]) -> None:
        self._data = dict(snapshot)

    def fingerprint(self) -> Tuple[Tuple[Any, Any], ...]:
        return tuple(sorted(self._data.items(), key=lambda kv: repr(kv[0])))

    @staticmethod
    def keys_of(op: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """set/get/delete/cas touch exactly op[1]; ``keys`` is global."""
        if len(op) >= 2 and op[0] in ("set", "get", "delete", "cas"):
            return (op[1],)
        return ()

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        result, _undo = self.apply_with_undo(op)
        return result

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        name = op[0] if op else None

        if name == "set" and len(op) == 3:
            _key, key, value = op[0], op[1], op[2]
            previous = self._data.get(key, _ABSENT)
            self._data[key] = value
            return (
                OpResult(ok=True, value=None if previous is _ABSENT else previous),
                self._make_restore(key, previous),
            )

        if name == "get" and len(op) == 2:
            key = op[1]
            if key not in self._data:
                return OpResult(ok=False, error=f"get: no such key {key!r}"), _noop
            return OpResult(ok=True, value=self._data[key]), _noop

        if name == "delete" and len(op) == 2:
            key = op[1]
            if key not in self._data:
                return OpResult(ok=False, error=f"delete: no such key {key!r}"), _noop
            previous = self._data.pop(key)
            return OpResult(ok=True, value=previous), self._make_restore(key, previous)

        if name == "cas" and len(op) == 4:
            key, old, new = op[1], op[2], op[3]
            current = self._data.get(key, _ABSENT)
            if current is _ABSENT or current != old:
                return OpResult(ok=True, value=False), _noop
            self._data[key] = new
            return OpResult(ok=True, value=True), self._make_restore(key, old)

        if name == "keys" and len(op) == 1:
            return (
                OpResult(ok=True, value=tuple(sorted(self._data, key=repr))),
                _noop,
            )

        return self.bad_op(op), _noop

    def _make_restore(self, key: Any, previous: Any) -> Callable[[], None]:
        def undo() -> None:
            if previous is _ABSENT:
                self._data.pop(key, None)
            else:
                self._data[key] = previous

        return undo


def _noop() -> None:
    """Undo of a read-only or failed operation."""
