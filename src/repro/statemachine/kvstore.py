"""A deterministic replicated key-value store.

Operations::

    ("set", key, value)        -> ok, previous value (or None)
    ("get", key)               -> ok, value; error if absent
    ("delete", key)            -> ok, removed value; error if absent
    ("cas", key, old, new)     -> ok, True on success; ok, False on mismatch
    ("keys",)                  -> ok, sorted tuple of keys

Sharded deployments construct the machine with an ``owned`` key set and
get the full live-migration family (``mig_prepare`` / ``mig_install`` /
``mig_status`` / ``mig_forget``) plus WrongShard redirects for keys this
shard lost -- see :class:`~repro.statemachine.base.MigratableMachine`.
The exported per-key state is ``("present", value)`` or ``("absent",)``
(an owned key may simply never have been set).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.statemachine.base import MigratableMachine, OpResult

_ABSENT = object()  # sentinel: key had no previous binding

#: Tags the composite snapshot shape so ``restore`` can tell it apart
#: from a legacy bare data dict without sniffing user-controlled keys.
_SNAPSHOT_TAG = "__kv_snapshot__"


class KVStoreMachine(MigratableMachine):
    """Hash-map state machine with O(1) inverse operations."""

    def __init__(self, owned: Optional[Iterable[Any]] = None) -> None:
        self._data: Dict[Any, Any] = {}
        self._init_migration(owned)

    def snapshot(self) -> Dict[str, Any]:
        """Deep snapshot carrying the migration/ownership books too.

        ``state()`` stays the raw data dict (the read-only view tests
        and examples index into), but a snapshot must round-trip the
        whole machine -- ownership included -- or a snapshot-based undo
        on a sharded replica would silently resurrect departed keys.
        """
        return {
            _SNAPSHOT_TAG: 1,
            "data": copy.deepcopy(self._data),
            "migration": copy.deepcopy(self._migration_state()),
        }

    def restore(self, snapshot: Dict[Any, Any]) -> None:
        if snapshot.get(_SNAPSHOT_TAG) == 1:
            self._data = dict(snapshot["data"])
            self._restore_migration(snapshot["migration"])
        else:  # legacy shape: a bare data dict
            self._data = dict(snapshot)

    def state(self) -> Dict[Any, Any]:
        return self._data

    def fingerprint(self) -> Tuple[Tuple[Any, Any], ...]:
        data = tuple(sorted(self._data.items(), key=lambda kv: repr(kv[0])))
        return data + self._migration_fingerprint()

    @staticmethod
    def keys_of(op: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """set/get/delete/cas touch exactly op[1]; ``keys`` is global."""
        if len(op) >= 2 and op[0] in ("set", "get", "delete", "cas"):
            return (op[1],)
        return ()

    @staticmethod
    def is_read_only(op: Tuple[Any, ...]) -> bool:
        """``get`` and ``keys`` never mutate; everything else might."""
        name = op[0] if op else None
        return (name == "get" and len(op) == 2) or (name == "keys" and len(op) == 1)

    @classmethod
    def exec_cost_of(cls, op: Tuple[Any, ...]) -> float:
        """``keys`` scans the whole store: charge double the base cost."""
        if op and op[0] == "keys" and len(op) == 1:
            return 2.0
        return super().exec_cost_of(op)

    # -- live migration (MigratableMachine) -----------------------------

    def export_key(self, key: Any) -> Tuple[Any, ...]:
        if key in self._data:
            return ("present", self._data.pop(key))
        return ("absent",)

    def install_key(self, key: Any, state: Tuple[Any, ...]) -> None:
        if state[0] == "present":
            self._data[key] = state[1]
        else:
            self._data.pop(key, None)

    # ------------------------------------------------------------------

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        result, _undo = self.apply_with_undo(op)
        return result

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        # Ownership machinery only exists on sharded machines; unsharded
        # ones (owned=None) must pay nothing for it on the hot path --
        # their mig_* ops simply fall through to bad_op.
        if self._owned is not None:
            migration = self._migration_op(op)
            if migration is not None:
                return migration
            redirect = self._ownership_guard(op)
            if redirect is not None:
                return redirect
        name = op[0] if op else None

        if name == "set" and len(op) == 3:
            _key, key, value = op[0], op[1], op[2]
            previous = self._data.get(key, _ABSENT)
            self._data[key] = value
            return (
                OpResult(ok=True, value=None if previous is _ABSENT else previous),
                self._make_restore(key, previous),
            )

        if name == "get" and len(op) == 2:
            key = op[1]
            if key not in self._data:
                return OpResult(ok=False, error=f"get: no such key {key!r}"), _noop
            return OpResult(ok=True, value=self._data[key]), _noop

        if name == "delete" and len(op) == 2:
            key = op[1]
            if key not in self._data:
                return OpResult(ok=False, error=f"delete: no such key {key!r}"), _noop
            previous = self._data.pop(key)
            return OpResult(ok=True, value=previous), self._make_restore(key, previous)

        if name == "cas" and len(op) == 4:
            key, old, new = op[1], op[2], op[3]
            current = self._data.get(key, _ABSENT)
            if current is _ABSENT or current != old:
                return OpResult(ok=True, value=False), _noop
            self._data[key] = new
            return OpResult(ok=True, value=True), self._make_restore(key, old)

        if name == "keys" and len(op) == 1:
            return (
                OpResult(ok=True, value=tuple(sorted(self._data, key=repr))),
                _noop,
            )

        return self.bad_op(op), _noop

    def _make_restore(self, key: Any, previous: Any) -> Callable[[], None]:
        def undo() -> None:
            if previous is _ABSENT:
                self._data.pop(key, None)
            else:
                self._data[key] = previous

        return undo


def _noop() -> None:
    """Undo of a read-only or failed operation."""
