"""The state-machine interface used by all replication protocols here.

Operations are plain tuples, e.g. ``("push", "x")`` or ``("transfer",
"alice", "bob", 25)``.  Results are :class:`OpResult` values.  A state
machine must be **deterministic**: the result and the post-state depend
only on the pre-state and the operation.  Errors (unknown operation,
failed precondition) are *returned*, never raised, because an exception at
one replica but not another would be non-determinism.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class OpResult:
    """The deterministic outcome of applying one operation.

    ``ok`` is False for failed preconditions (e.g. pop of an empty stack,
    overdraft) -- a *valid* outcome that all replicas agree on, not an
    exception.
    """

    ok: bool
    value: Any = None
    error: str = ""

    def __repr__(self) -> str:
        if self.ok:
            return f"OpResult(ok, {self.value!r})"
        return f"OpResult(err, {self.error!r})"


class StateMachine:
    """Base class for deterministic, undoable state machines."""

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        """Apply ``op`` and return its result.  Must be deterministic."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Sharding hooks (repro.sharding)
    # ------------------------------------------------------------------

    @staticmethod
    def keys_of(op: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """The data items ``op`` touches, for shard routing.

        ``()`` means the operation has no routable key (whole-state reads,
        global counters); the sharded client sends those to a fixed
        fallback shard.  Must be a pure function of the operation.
        """
        return ()

    @staticmethod
    def tx_branches(
        op: Tuple[Any, ...], txid: str
    ) -> "dict[Any, Tuple[Any, ...]] | None":
        """Decompose a multi-key ``op`` into per-key prepare branches.

        Returns ``{key: branch_op}`` where each branch is a single-key
        operation (routed to the key's shard and totally ordered there),
        or ``None`` when the operation cannot run across shards.  The
        sharded client commits the branches with a second phase of
        ``("tx_commit", txid)`` / ``("tx_abort", txid)`` requests.
        """
        return None

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        """Apply ``op`` and also return a closure that undoes it.

        The default implementation snapshots the whole state, which is
        always correct; subclasses override it with O(1) inverse
        operations where possible (see :class:`~repro.statemachine.bank.
        BankMachine`).
        """
        snapshot = self.snapshot()
        result = self.apply(op)

        def undo() -> None:
            self.restore(snapshot)

        return result, undo

    def snapshot(self) -> Any:
        """An opaque, deep copy of the current state."""
        return copy.deepcopy(self.state())

    def restore(self, snapshot: Any) -> None:
        """Replace the current state with a snapshot."""
        raise NotImplementedError

    def state(self) -> Any:
        """The raw state object (read-only use by tests/checkers)."""
        raise NotImplementedError

    def fingerprint(self) -> Any:
        """A hashable digest of the state, for replica-equality checks."""
        return repr(self.state())

    @staticmethod
    def bad_op(op: Tuple[Any, ...]) -> OpResult:
        """The deterministic result for an unrecognized operation."""
        return OpResult(ok=False, error=f"unknown operation: {op!r}")
