"""The state-machine interface used by all replication protocols here.

Operations are plain tuples, e.g. ``("push", "x")`` or ``("transfer",
"alice", "bob", 25)``.  Results are :class:`OpResult` values.  A state
machine must be **deterministic**: the result and the post-state depend
only on the pre-state and the operation.  Errors (unknown operation,
failed precondition) are *returned*, never raised, because an exception at
one replica but not another would be non-determinism.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional, Set, Tuple


@dataclass(frozen=True)
class WrongShard:
    """Deterministic "this shard does not own that key" redirect payload.

    Returned as the ``value`` of a failed :class:`OpResult` whenever an
    operation reaches a machine that no longer (or does not yet) own one
    of the operation's keys -- the replicated, totally-ordered analogue
    of an HTTP 301.  ``hint`` is the shard the key was last exported to,
    when the machine still remembers it (None otherwise); clients treat
    the hint as advisory and re-sync their routing table from the
    authority before retrying.
    """

    key: Any
    hint: Optional[int] = None


@dataclass(frozen=True)
class OpResult:
    """The deterministic outcome of applying one operation.

    ``ok`` is False for failed preconditions (e.g. pop of an empty stack,
    overdraft) -- a *valid* outcome that all replicas agree on, not an
    exception.
    """

    ok: bool
    value: Any = None
    error: str = ""

    def __repr__(self) -> str:
        if self.ok:
            return f"OpResult(ok, {self.value!r})"
        return f"OpResult(err, {self.error!r})"


class StateMachine:
    """Base class for deterministic, undoable state machines."""

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        """Apply ``op`` and return its result.  Must be deterministic."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Sharding hooks (repro.sharding)
    # ------------------------------------------------------------------

    @staticmethod
    def keys_of(op: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """The data items ``op`` touches, for shard routing.

        ``()`` means the operation has no routable key (whole-state reads,
        global counters); the sharded client sends those to a fixed
        fallback shard.  Must be a pure function of the operation --
        routing happens at the client, ownership checks at every replica,
        and the execution engine derives conflict footprints from it, so
        all three must see the same answer for the same tuple.

        This hook is also the granularity knob for everything built on
        top: a key named here is the unit of migration
        (:class:`MigratableMachine`), of conflict chaining
        (:meth:`conflict_footprint`), and of hot-key splitting
        (:class:`SplittableMachine` fragments are ordinary keys with
        their own ``keys_of`` identity).
        """
        return ()

    @classmethod
    def conflict_footprint(cls, op: Tuple[Any, ...]) -> Optional[FrozenSet[Any]]:
        """The conflict footprint of ``op`` for parallel execution.

        Two operations whose footprints are disjoint commute: applying
        them in either order yields the same results and the same
        post-state, so the execution engine
        (:mod:`repro.core.execution`) may run them concurrently.
        ``None`` means *global* -- the operation conflicts with
        everything (whole-state reads, unkeyed machines) and fences the
        entire pipeline.  The default derives the footprint from
        :meth:`keys_of`, mapping "no routable key" to global, which is
        always safe: an engine can only be *less* parallel than the
        true conflict relation, never more.
        """
        keys = cls.keys_of(op)
        return frozenset(keys) if keys else None

    @staticmethod
    def is_read_only(op: Tuple[Any, ...]) -> bool:
        """True when ``op`` cannot change state (replica-local read path).

        Read-only operations may be executed at a single replica against
        its current state and answered without submitting to the
        sequencer (``OARConfig.read_mode``).  Must be a pure function of
        the operation and *conservative*: anything not provably
        side-effect free stays False and takes the ordered path.  The
        ``mig_*``/``tx_*`` families are deliberately never classified
        read-only -- even ``mig_status`` must be totally ordered, because
        migration recovery reasons about its position in the shard's
        order.  The same goes for the ``split_*`` family: splits mutate
        ownership books and escrow, so they always ride the sequencer.
        """
        return False

    @classmethod
    def exec_cost_of(cls, op: Tuple[Any, ...]) -> float:
        """Relative execution weight of ``op`` (a multiplier on the
        engine's per-op ``exec_cost``).

        The execution service model charges ``exec_cost * exec_cost_of(op)``
        simulated time for one operation, so a machine can say that some
        operations are intrinsically heavier: a migration installs a whole
        key's exported state, a ``keys`` scan walks the entire store.  The
        default weight is ``1.0`` -- every op costs exactly ``exec_cost``,
        which preserves the pre-weight service model bit-for-bit.  Must be
        a pure function of the operation (replicas schedule by it) and
        must not be negative; ``0.0`` is legal (the op still occupies a
        lane for one zero-delay event, it does not take the inline path).
        """
        return 1.0

    @staticmethod
    def tx_branches(
        op: Tuple[Any, ...], txid: str
    ) -> "dict[Any, Tuple[Any, ...]] | None":
        """Decompose a multi-key ``op`` into per-key prepare branches.

        Returns ``{key: branch_op}`` where each branch is a single-key
        operation (routed to the key's shard and totally ordered there),
        or ``None`` when the operation cannot run across shards.  The
        sharded client commits the branches with a second phase of
        ``("tx_commit", txid)`` / ``("tx_abort", txid)`` requests.
        """
        return None

    def export_key(self, key: Any) -> Any:
        """Detach and return one key's state for live migration.

        The returned value is the opaque, deterministic payload that
        :meth:`install_key` accepts on the destination shard; after
        export the key's state is gone from this machine.  Machines that
        support live rebalancing (``repro.sharding.rebalance``) override
        this; the default raises, which makes migration attempts against
        non-migratable machines a loud error instead of silent data loss.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot export keys")

    def install_key(self, key: Any, state: Any) -> None:
        """Install a key's exported state (the migration receive side)."""
        raise NotImplementedError(f"{type(self).__name__} cannot install keys")

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        """Apply ``op`` and also return a closure that undoes it.

        The default implementation snapshots the whole state, which is
        always correct; subclasses override it with O(1) inverse
        operations where possible (see :class:`~repro.statemachine.bank.
        BankMachine`).
        """
        snapshot = self.snapshot()
        result = self.apply(op)

        def undo() -> None:
            self.restore(snapshot)

        return result, undo

    def snapshot(self) -> Any:
        """An opaque, deep copy of the current state."""
        return copy.deepcopy(self.state())

    def restore(self, snapshot: Any) -> None:
        """Replace the current state with a snapshot."""
        raise NotImplementedError

    def state(self) -> Any:
        """The raw state object (read-only use by tests/checkers)."""
        raise NotImplementedError

    def fingerprint(self) -> Any:
        """A hashable digest of the state, for replica-equality checks."""
        return repr(self.state())

    @staticmethod
    def bad_op(op: Tuple[Any, ...]) -> OpResult:
        """The deterministic result for an unrecognized operation."""
        return OpResult(ok=False, error=f"unknown operation: {op!r}")


def _noop() -> None:
    """Undo of a read-only or failed operation."""


class MigratableMachine(StateMachine):
    """Key ownership + the live-migration operation family.

    A sharded deployment gives every replica of shard *s* the same
    ``owned`` key set (the epoch-0 placement); from then on ownership
    changes only through the migration operations below, which are
    ordinary totally-ordered requests on their shard -- so all replicas
    of a group agree on ownership by the same argument they agree on any
    other state (and replica-convergence checks cover it, because the
    ownership books are part of :meth:`fingerprint`).

    The migration protocol (driven by
    :class:`~repro.sharding.rebalance.RebalanceCoordinator`)::

        ("mig_prepare", mid, key, dst)
            -> ok, ("exported", state); atomically freezes the key on
               the source: ownership is dropped, the key's state moves
               into the outbound escrow under ``mid`` (retained for
               coordinator-crash recovery), and a forward hint key->dst
               is recorded.  Fails deterministically when the key is not
               owned, the mid exists, or the machine vetoes the export
               (:meth:`export_blocked` -- e.g. a bank account with a
               pending cross-shard escrow hold).
        ("mig_install", mid, key, state)
            -> ok, ("installed",); installs the state and takes
               ownership on the destination.  Idempotent by ``mid``
               (a recovery coordinator may re-submit): a repeat returns
               ok, ("already",) without touching state.
        ("mig_status", mid)
            -> ok, ("prepared", key, dst, state) | ("installed", key)
               | ("unknown",); the read-only probe recovery uses to
               resume a half-done migration.
        ("mig_forget", mid)
            -> ok; drops the outbound escrow entry once the routing
               epoch is bumped (the migration's garbage collection).
               Idempotent: unknown mids answer ok, ("noop",).

    Any keyed operation that reaches a machine which does not own the
    key gets a deterministic :class:`WrongShard` error result -- the
    redirect the sharded client turns into a table re-sync and retry.
    Machines with ``owned=None`` (the unsharded default) own everything
    and never redirect; subclasses gate the whole dispatch behind
    ``self._owned is not None`` so unsharded hot paths pay a single
    attribute check (``mig_*`` ops then fall through to ``bad_op`` --
    still a deterministic error, just an anonymous one).
    """

    #: mid -> (key, dst shard, exported state): the outbound escrow.
    _outbound: Dict[str, Tuple[Any, int, Any]]

    def _init_migration(self, owned: Optional[Any]) -> None:
        """Call from ``__init__``; ``owned=None`` means "owns all keys"."""
        self._owned: Optional[Set[Any]] = None if owned is None else set(owned)
        self._outbound = {}
        self._installed: Dict[str, Any] = {}  # mid -> key
        self._forward: Dict[Any, int] = {}  # key -> last export destination

    # -- introspection (checkers, tests) -------------------------------

    def owns(self, key: Any) -> bool:
        return self._owned is None or key in self._owned

    def owned_keys(self) -> Optional[FrozenSet[Any]]:
        """The ownership set, or None for "owns everything" (unsharded)."""
        return None if self._owned is None else frozenset(self._owned)

    def outbound_migrations(self) -> Dict[str, Tuple[Any, int, Any]]:
        """Exported-but-not-forgotten escrow entries (mid -> key, dst, state)."""
        return dict(self._outbound)

    def installed_migrations(self) -> Dict[str, Any]:
        """Migrations installed here (mid -> key), for idempotence/recovery."""
        return dict(self._installed)

    def export_blocked(self, key: Any) -> Optional[str]:
        """A reason this key cannot be exported right now, or None.

        Subclass hook; the bank refuses while a cross-shard escrow hold
        references the account, so the two escrow protocols never
        interleave on one key.
        """
        return None

    @classmethod
    def conflict_footprint(cls, op: Tuple[Any, ...]) -> Optional[FrozenSet[Any]]:
        """Migration ops conflict with everything touching their key.

        ``mig_prepare``/``mig_install`` carry the key explicitly
        (``op[2]``): they freeze or take ownership of exactly that key,
        so they serialize against every operation on it but commute with
        operations on other keys.  ``mig_status``/``mig_forget`` are
        keyed by migration id only -- the key is not in the operation --
        so they stay global (they are rare coordinator probes; fencing
        the pipeline for them costs nothing measurable).
        """
        name = op[0] if op else None
        if name.__class__ is str and name.startswith("mig_"):
            if name in ("mig_prepare", "mig_install") and len(op) == 4:
                return frozenset((op[2],))
            return None
        return super().conflict_footprint(op)

    @classmethod
    def exec_cost_of(cls, op: Tuple[Any, ...]) -> float:
        """Migrations move whole key states, so they execute heavier.

        ``mig_prepare`` serializes a key's full state into the outbound
        escrow and ``mig_install`` deserializes it on the destination --
        both are bulk operations next to a normal single-key update, so
        they charge 4x the base ``exec_cost``.  The probe/GC half of the
        family (``mig_status``/``mig_forget``) touches only an escrow
        dict entry and stays at weight 1.
        """
        name = op[0] if op else None
        if name in ("mig_prepare", "mig_install"):
            return 4.0
        return super().exec_cost_of(op)

    # -- shared dispatch helpers ---------------------------------------

    def _wrong_shard(self, key: Any) -> Tuple[OpResult, Callable[[], None]]:
        hint = self._forward.get(key)
        return (
            OpResult(
                ok=False,
                value=WrongShard(key, hint),
                error=f"wrong_shard: {key!r} is not owned here",
            ),
            _noop,
        )

    def _ownership_guard(
        self, op: Tuple[Any, ...]
    ) -> Optional[Tuple[OpResult, Callable[[], None]]]:
        """WrongShard result if ``op`` touches a key this shard lost."""
        if self._owned is None:
            return None
        owned = self._owned
        for key in self.keys_of(op):
            if key not in owned:
                return self._wrong_shard(key)
        return None

    def _migration_fingerprint(self) -> Tuple[Any, ...]:
        """Ownership-book suffix for :meth:`fingerprint` (empty when inert)."""
        if self._owned is None and not self._outbound and not self._installed:
            return ()
        owned = () if self._owned is None else tuple(sorted(self._owned))
        return (
            ("__owned__", owned),
            ("__outbound__", tuple(sorted(self._outbound.items()))),
            ("__installed__", tuple(sorted(self._installed.items()))),
        )

    def _migration_state(self) -> Dict[str, Any]:
        return {
            "owned": None if self._owned is None else set(self._owned),
            "outbound": dict(self._outbound),
            "installed": dict(self._installed),
            "forward": dict(self._forward),
        }

    def _restore_migration(self, snapshot: Optional[Dict[str, Any]]) -> None:
        if snapshot is None:
            return
        owned = snapshot["owned"]
        self._owned = None if owned is None else set(owned)
        self._outbound = dict(snapshot["outbound"])
        self._installed = dict(snapshot["installed"])
        self._forward = dict(snapshot["forward"])

    # -- the operation family ------------------------------------------

    def _migration_op(
        self, op: Tuple[Any, ...]
    ) -> Optional[Tuple[OpResult, Callable[[], None]]]:
        """Handle a ``mig_*`` operation; None when ``op`` is not one."""
        name = op[0] if op else None
        if name.__class__ is not str or not name.startswith("mig_"):
            return None
        if name == "mig_prepare" and len(op) == 4:
            return self._mig_prepare(op[1], op[2], op[3])
        if name == "mig_install" and len(op) == 4:
            return self._mig_install(op[1], op[2], op[3])
        if name == "mig_status" and len(op) == 2:
            return self._mig_status(op[1])
        if name == "mig_forget" and len(op) == 2:
            return self._mig_forget(op[1])
        return None

    def _mig_prepare(
        self, mid: str, key: Any, dst: Any
    ) -> Tuple[OpResult, Callable[[], None]]:
        if self._owned is None:
            return OpResult(ok=False, error="mig_prepare: machine is not sharded"), _noop
        if mid in self._outbound:
            return OpResult(ok=False, error=f"mig_prepare: {mid} already prepared"), _noop
        if key not in self._owned:
            result, undo = self._wrong_shard(key)
            return OpResult(ok=False, value=result.value, error=f"mig_prepare: {result.error}"), undo
        blocked = self.export_blocked(key)
        if blocked is not None:
            return OpResult(ok=False, error=f"mig_prepare: {blocked}"), _noop
        state = self.export_key(key)
        self._owned.discard(key)
        self._outbound[mid] = (key, dst, state)
        prev_forward = self._forward.get(key)
        self._forward[key] = dst

        def undo_prepare() -> None:
            del self._outbound[mid]
            self.install_key(key, state)
            self._owned.add(key)
            if prev_forward is None:
                self._forward.pop(key, None)
            else:
                self._forward[key] = prev_forward

        return OpResult(ok=True, value=("exported", state)), undo_prepare

    def _mig_install(
        self, mid: str, key: Any, state: Any
    ) -> Tuple[OpResult, Callable[[], None]]:
        if mid in self._installed:
            return OpResult(ok=True, value=("already",)), _noop
        if self._owned is None:
            return OpResult(ok=False, error="mig_install: machine is not sharded"), _noop
        if key in self._owned:
            return OpResult(ok=False, error=f"mig_install: {key!r} already owned here"), _noop
        self.install_key(key, state)
        self._owned.add(key)
        self._installed[mid] = key
        prev_forward = self._forward.pop(key, None)

        def undo_install() -> None:
            del self._installed[mid]
            self._owned.discard(key)
            self.export_key(key)  # drop the just-installed state
            if prev_forward is not None:
                self._forward[key] = prev_forward

        return OpResult(ok=True, value=("installed",)), undo_install

    def _mig_status(self, mid: str) -> Tuple[OpResult, Callable[[], None]]:
        entry = self._outbound.get(mid)
        if entry is not None:
            key, dst, state = entry
            return OpResult(ok=True, value=("prepared", key, dst, state)), _noop
        key = self._installed.get(mid)
        if key is not None:
            return OpResult(ok=True, value=("installed", key)), _noop
        return OpResult(ok=True, value=("unknown",)), _noop

    def _mig_forget(self, mid: str) -> Tuple[OpResult, Callable[[], None]]:
        entry = self._outbound.get(mid)
        if entry is None:
            return OpResult(ok=True, value=("noop",)), _noop
        del self._outbound[mid]

        def undo_forget() -> None:
            self._outbound[mid] = entry

        return OpResult(ok=True, value=("forgotten",)), undo_forget


class SplittableMachine(MigratableMachine):
    """Hot-key splitting by escrow-partitioned commutative state.

    A single hot key is the one load imbalance migration cannot fix:
    moving the key moves the heat, and every operation on it conflicts
    with every other, so the execution engine cannot parallelize it
    either (benchmark B13's flatline).  When the key's state decomposes
    commutatively -- a counter is a sum of sub-counters, a balance is a
    sum of sub-balances -- the key can instead be **split** into N
    fragment keys ``key#f0 .. key#f<N-1>``, each an ordinary key:

    * fragments route independently (the routing table places them on
      different shards),
    * fragments have disjoint :meth:`~StateMachine.conflict_footprint`\\ s
      (the execution engine runs them on different lanes), and
    * fragments migrate/merge with the *existing* ``mig_*`` escrow
      machinery -- ``split_open`` below is ``mig_prepare`` generalized to
      export one key as N parts, and fragments reach their destination
      shards via ordinary ``mig_install``.

    Commutative ops (deposits, increments) go to any one fragment.
    Budget-limited ops (withdrawals) run against one fragment's local
    balance and may fail with a *shortfall*; the client then **borrows**
    by submitting an ordinary transfer between fragments (riding the
    cross-shard 2PC when fragments live on different shards) and retries.
    Whole-value reads **merge-on-read**: the client scatter-gathers one
    read per fragment and combines them with :meth:`merge_read`.  The
    conserved quantity -- sum of fragment values plus in-flight borrow
    escrow equals the logical value -- is checked exactly by
    :func:`repro.analysis.checkers.check_fragment_conservation`.

    The op family (coordinated by ``sharding/rebalance.py``, driven by
    adopted replies like migrations)::

        ("split_open", sid, key, (frag0..fragN-1), (dst0..dstN-1))
            -> ok, ("split", ((mid, frag, dst, part), ...))
            Runs on the key's owner.  Exports the key, partitions its
            state with split_parts, installs fragment 0 locally and
            parks fragments 1..N-1 in the outbound migration escrow
            under mids "<sid>.<i>" addressed to their dsts.
        ("split_close", sid, key, (frag0..fragN-1))
            -> ok, ("merged", state)  |  ok, ("already",)
            Runs on the shard owning *all* fragments (the coordinator
            first migrates strays home).  Exports every fragment,
            merge_parts them, reinstalls the logical key.

    Both are exactly undoable, so Opt-undeliver of a split is a rollback
    like any other.  Neither has a routable key (``keys_of`` -> ``()``),
    so they carry a *global* conflict footprint -- a split fences the
    pipeline, which is exactly right: no fragment op may overtake it.

    Subclasses implement the small hook surface below
    (:meth:`split_parts` / :meth:`merge_parts` for the state algebra,
    :meth:`split_kind` / :meth:`fragment_op` / :meth:`merge_read` /
    :meth:`fragment_value` for the client rewrite rules).
    """

    #: Separator between a logical key and its fragment index.  Keys
    #: containing this substring cannot be split (parent_key would
    #: misparse them); the key universes used here never do.
    SPLIT_SEP = "#f"

    # -- fragment naming ------------------------------------------------

    @classmethod
    def fragment_keys(cls, key: str, n: int) -> Tuple[str, ...]:
        """The N fragment keys of ``key``, in fragment-index order."""
        return tuple(f"{key}{cls.SPLIT_SEP}{i}" for i in range(n))

    @classmethod
    def parent_key(cls, key: Any) -> Optional[str]:
        """The logical key ``key`` is a fragment of, or None."""
        if key.__class__ is not str:
            return None
        sep = key.rfind(cls.SPLIT_SEP)
        if sep <= 0:
            return None
        suffix = key[sep + len(cls.SPLIT_SEP):]
        if not suffix.isdigit():
            return None
        return key[:sep]

    # -- subclass hook surface -----------------------------------------

    def split_parts(self, state: Any, n: int) -> Tuple[Any, ...]:
        """Partition an exported key state into ``n`` fragment states.

        Pure with respect to the machine (no side effects); must satisfy
        ``merge_parts(split_parts(s, n)) == s`` exactly -- conservation
        checking is exact, not approximate.
        """
        raise NotImplementedError

    def merge_parts(self, parts: Tuple[Any, ...]) -> Any:
        """Recombine fragment states into the logical key state."""
        raise NotImplementedError

    @classmethod
    def split_kind(cls, op: Tuple[Any, ...]) -> Optional[str]:
        """How ``op`` behaves when its (single) key is split.

        * ``"local"``  -- commutative; rewrite onto any one fragment
          (deposits, increments).
        * ``"budget"`` -- runs against one fragment's local budget and
          may fail with a shortfall the client resolves by borrowing
          (withdrawals).
        * ``"read"``   -- whole-value read; scatter to every fragment
          and combine with :meth:`merge_read`.
        * ``None``     -- not fragment-rewritable (multi-key ops, opens);
          the client leaves the op on the logical key, and the ownership
          guard answers WrongShard until the key is unsplit.
        """
        return None

    @classmethod
    def fragment_op(cls, op: Tuple[Any, ...], key: Any, frag: Any) -> Tuple[Any, ...]:
        """Rewrite ``op`` from the logical ``key`` onto fragment ``frag``.

        The default substitutes every occurrence of the key in the tuple,
        which is right for all the bundled machines.
        """
        return tuple(frag if part == key else part for part in op)

    @classmethod
    def merge_read(cls, op: Tuple[Any, ...], values: Tuple[Any, ...]) -> Any:
        """Combine per-fragment read values into the logical value."""
        raise NotImplementedError

    def fragment_value(self, frag: Any) -> Any:
        """Current local value of an owned fragment (checker probe)."""
        raise NotImplementedError

    # -- execution weight ----------------------------------------------

    @classmethod
    def exec_cost_of(cls, op: Tuple[Any, ...]) -> float:
        """Splits export/partition/reinstall whole key states: weight 4."""
        name = op[0] if op else None
        if name in ("split_open", "split_close"):
            return 4.0
        return super().exec_cost_of(op)

    # -- the operation family ------------------------------------------

    def _migration_op(
        self, op: Tuple[Any, ...]
    ) -> Optional[Tuple[OpResult, Callable[[], None]]]:
        handled = super()._migration_op(op)
        if handled is not None:
            return handled
        name = op[0] if op else None
        if name == "split_open" and len(op) == 5:
            return self._split_open(op[1], op[2], tuple(op[3]), tuple(op[4]))
        if name == "split_close" and len(op) == 4:
            return self._split_close(op[1], op[2], tuple(op[3]))
        return None

    def _split_open(
        self, sid: str, key: Any, frags: Tuple[Any, ...], dsts: Tuple[Any, ...]
    ) -> Tuple[OpResult, Callable[[], None]]:
        if self._owned is None:
            return OpResult(ok=False, error="split_open: machine is not sharded"), _noop
        if len(frags) < 2 or len(frags) != len(dsts):
            return OpResult(ok=False, error="split_open: bad fragment plan"), _noop
        if key not in self._owned:
            result, undo = self._wrong_shard(key)
            return (
                OpResult(ok=False, value=result.value, error=f"split_open: {result.error}"),
                undo,
            )
        blocked = self.export_blocked(key)
        if blocked is not None:
            return OpResult(ok=False, error=f"split_open: {blocked}"), _noop
        for frag in frags:
            if frag in self._owned:
                return (
                    OpResult(ok=False, error=f"split_open: fragment {frag!r} already owned"),
                    _noop,
                )
        mids = tuple(f"{sid}.{i}" for i in range(1, len(frags)))
        for mid in mids:
            if mid in self._outbound or mid in self._installed:
                return OpResult(ok=False, error=f"split_open: mid {mid} in use"), _noop

        state = self.export_key(key)
        self._owned.discard(key)
        parts = self.split_parts(state, len(frags))
        self.install_key(frags[0], parts[0])
        self._owned.add(frags[0])
        shipped = []
        for i in range(1, len(frags)):
            self._outbound[mids[i - 1]] = (frags[i], dsts[i], parts[i])
            shipped.append((mids[i - 1], frags[i], dsts[i], parts[i]))

        def undo_open() -> None:
            for mid in mids:
                del self._outbound[mid]
            self.export_key(frags[0])
            self._owned.discard(frags[0])
            self.install_key(key, state)
            self._owned.add(key)

        return OpResult(ok=True, value=("split", tuple(shipped))), undo_open

    def _split_close(
        self, sid: str, key: Any, frags: Tuple[Any, ...]
    ) -> Tuple[OpResult, Callable[[], None]]:
        if self._owned is None:
            return OpResult(ok=False, error="split_close: machine is not sharded"), _noop
        if key in self._owned:
            # The coordinator retries on crashes; a re-delivered close of
            # an already-merged key is a no-op, like a re-sent install.
            return OpResult(ok=True, value=("already",)), _noop
        if not frags:
            return OpResult(ok=False, error="split_close: bad fragment plan"), _noop
        for frag in frags:
            if frag not in self._owned:
                result, undo = self._wrong_shard(frag)
                return (
                    OpResult(
                        ok=False, value=result.value, error=f"split_close: {result.error}"
                    ),
                    undo,
                )
            blocked = self.export_blocked(frag)
            if blocked is not None:
                return OpResult(ok=False, error=f"split_close: {blocked}"), _noop

        parts = tuple(self.export_key(frag) for frag in frags)
        for frag in frags:
            self._owned.discard(frag)
        state = self.merge_parts(parts)
        self.install_key(key, state)
        self._owned.add(key)

        def undo_close() -> None:
            self.export_key(key)
            self._owned.discard(key)
            for frag, part in zip(frags, parts):
                self.install_key(frag, part)
                self._owned.add(frag)

        return OpResult(ok=True, value=("merged", state)), undo_close
