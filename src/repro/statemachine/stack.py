"""The replicated stack of Figure 1 (push/pop service).

This is the service the paper uses to illustrate the external
inconsistency of the plain sequencer-based Atomic Broadcast: interleaved
``push(x)`` and ``pop()`` requests whose results depend on the delivery
order.  Operations::

    ("push", value)  -> ok, value pushed (returns None, like the figure's '-')
    ("pop",)         -> ok, top value; error on empty stack
    ("top",)         -> ok, top value without removing; error on empty
    ("size",)        -> ok, number of elements
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from repro.statemachine.base import OpResult, StateMachine


class StackMachine(StateMachine):
    """A deterministic LIFO stack with O(1) inverse operations."""

    def __init__(self) -> None:
        self._stack: List[Any] = []

    def state(self) -> List[Any]:
        return self._stack

    def restore(self, snapshot: List[Any]) -> None:
        self._stack = list(snapshot)

    def fingerprint(self) -> Tuple[Any, ...]:
        return tuple(self._stack)

    def apply(self, op: Tuple[Any, ...]) -> OpResult:
        result, _undo = self.apply_with_undo(op)
        return result

    def apply_with_undo(self, op: Tuple[Any, ...]) -> Tuple[OpResult, Callable[[], None]]:
        name = op[0] if op else None
        if name == "push" and len(op) == 2:
            self._stack.append(op[1])

            def undo_push() -> None:
                self._stack.pop()

            return OpResult(ok=True, value=None), undo_push

        if name == "pop" and len(op) == 1:
            if not self._stack:
                return OpResult(ok=False, error="pop: empty stack"), _noop
            value = self._stack.pop()

            def undo_pop() -> None:
                self._stack.append(value)

            return OpResult(ok=True, value=value), undo_pop

        if name == "top" and len(op) == 1:
            if not self._stack:
                return OpResult(ok=False, error="top: empty stack"), _noop
            return OpResult(ok=True, value=self._stack[-1]), _noop

        if name == "size" and len(op) == 1:
            return OpResult(ok=True, value=len(self._stack)), _noop

        return self.bad_op(op), _noop


def _noop() -> None:
    """Undo of a read-only or failed operation."""
