"""Compact binary wire codec for the real (asyncio/TCP) runtime.

The simulator passes Python objects by reference, so serialization cost
is invisible there -- but over real sockets every message is encoded
once and decoded once, and the decentralised-replication literature is
unambiguous that *message cost dominates deployed replication*.  The
seed runtime pickled every frame; pickle is general but slow (it
re-discovers each dataclass's shape per message, and spells out class
paths on the wire).  This module replaces it with a registry-driven
binary codec:

* every wire dataclass in :mod:`repro.core.messages`,
  :mod:`repro.broadcast`, :mod:`repro.consensus.chandra_toueg`, and the
  result payloads (:class:`~repro.statemachine.base.OpResult` and
  friends) is registered under an integer tag (see :data:`WIRE_TAGS`);
* encode lowers each message to a flat *node* -- ``[tag, field, ...]``
  -- and hands the node tree to :mod:`marshal`, CPython's C-speed
  serializer for builtin values, so all string/int/tuple leaf work
  happens in C.  (A pure-Python ``struct``-packed layout was tried
  first and profiled: per-field bytes assembly in the interpreter caps
  out around 2x pickle, while the node+marshal split clears 3x because
  only one Python-level step runs per *field*, not per *byte*.)
* decode rebuilds each node into its frozen dataclass by hoisted slot
  descriptor ``__set__`` calls on an ``object.__new__`` instance --
  bypassing ``__init__`` (and ``object.__setattr__``'s name lookup) is
  what makes decode cheaper than pickle's reduce machinery;
* anything unregistered rides a pickle *escape hatch*: unknown objects
  become pickled leaf nodes, and a payload marshal cannot serialize at
  all (e.g. a mis-annotated field holding an open file) falls back to
  a whole-frame pickle, flagged by the leading discriminator byte.

The encoders and decoders are generated source (``exec``), one flat
function per registered class, with every helper hoisted into default
arguments.  Fields whose annotations promise marshal-native types
(``str``/``int``/``bool``/``float``/``Tuple[str, ...]`` and friends)
are passed to marshal untouched; ``Any`` fields go through the
recursive walk that converts nested registered dataclasses to nodes.

Codec choice is per cluster: ``TcpCluster(codec="binary")`` (default)
or ``codec="pickle"`` for the seed behaviour.  Both produce identical
decoded objects -- the property suite round-trips every registered
type, and a seeded scenario run is digest-identical under either codec
(see ``tests/property/test_codec_props.py``).

Caveats, shared with pickle but worth stating: marshal bytes are not
guaranteed stable across Python *versions*, so a cluster must run one
interpreter version (true of every supported deployment here), and
``decode`` is only safe on frames from trusted peers (the runtime is a
closed benchmarking backend, not an open network service).
"""

from __future__ import annotations

import marshal
import pickle
from dataclasses import fields as _dc_fields
from functools import partial
from typing import Any, Callable, Dict, List, Tuple, Type

from ..broadcast.reliable import RMsg
from ..broadcast.sequencer import OrderBatch, OrderMsg, ViewOrder
from ..consensus.chandra_toueg import CAck, CDecide, CEstimate, CNack, CProposal
from ..core.admission import Overloaded
from ..core.messages import (
    BodyBatch,
    OrderNack,
    PhaseII,
    ReadReply,
    ReadRequest,
    Reply,
    Request,
    SeqOrder,
    ShedNotice,
)
from ..core.sequences import MessageSequence
from ..failure.detector import Heartbeat
from ..statemachine.base import OpResult, WrongShard

__all__ = [
    "BinaryCodec",
    "PickleCodec",
    "WIRE_TAGS",
    "make_codec",
    "registered_types",
]

_MARSHAL_VERSION = 4
_mdumps = marshal.dumps
_mloads = marshal.loads
_pdumps = pickle.dumps
_ploads = pickle.loads
_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL

#: discriminator bytes: every encoded buffer starts with one of these.
_F_BINARY = b"\x01"
_F_PICKLE = b"\x00"

# Node tags.  Registered classes use 0..N (list position in NODE_DEC);
# structural marks are negative so they can never collide.
_M_LIST = -1  #: a real ``list`` payload (bare lists are class nodes)
_M_MSGSEQ = -2  #: a :class:`MessageSequence`
_M_PICKLE = -3  #: an unregistered object, pickled as a leaf
_M_FSET = -4  #: a frozenset whose items needed node conversion
_M_DICT = -5  #: a dict whose *keys* needed node conversion

#: registered class -> node encoder ``f(obj) -> list``
_NODE_ENC: Dict[type, Callable[[Any], list]] = {}
#: node tag -> decoder ``f(node) -> obj``
_NODE_DEC: Dict[int, Callable[[list], Any]] = {}
#: registered wire class -> tag (public, for docs and tests)
WIRE_TAGS: Dict[type, int] = {}


def _walk(x: Any) -> Any:
    """Lower one value to its marshal-ready form (identity for leaves)."""
    t = x.__class__
    if t is str or t is int:
        return x
    f = _NODE_ENC.get(t)
    if f is not None:
        return f(x)
    if t is tuple:
        for i, c in enumerate(x):
            w = _walk(c)
            if w is not c:
                out = list(x[:i])
                out.append(w)
                for c in x[i + 1 :]:
                    out.append(_walk(c))
                return tuple(out)
        return x
    if x is None or t is bool or t is float or t is bytes or t is complex:
        return x
    if t is frozenset:
        for c in x:
            if _walk(c) is not c:
                return [_M_FSET, *map(_walk, x)]
        return x
    if t is dict:
        if any(_walk(k) is not k for k in x):
            out = [_M_DICT]
            for k, v in x.items():
                out.append(_walk(k))
                out.append(_walk(v))
            return out
        if any(_walk(v) is not v for v in x.values()):
            return {k: _walk(v) for k, v in x.items()}
        return x
    if t is list:
        return [_M_LIST, *map(_walk, x)]
    if t is MessageSequence:
        return [_M_MSGSEQ, *map(_walk, x.items)]
    return [_M_PICKLE, _pdumps(x, protocol=_PICKLE_PROTO)]


def _unwalk(x: Any) -> Any:
    """Invert :func:`_walk`: rebuild class nodes, keep leaves as-is."""
    t = x.__class__
    if t is list:
        return _NODE_DEC[x[0]](x)
    if t is tuple:
        for i, c in enumerate(x):
            w = _unwalk(c)
            if w is not c:
                out = list(x[:i])
                out.append(w)
                for c in x[i + 1 :]:
                    out.append(_unwalk(c))
                return tuple(out)
        return x
    if t is dict:
        for k, v in x.items():
            if _unwalk(v) is not v:
                return {k: _unwalk(v) for k, v in x.items()}
        return x
    return x


def _un_list(x: list) -> list:
    return [_unwalk(c) for c in x[1:]]


def _un_msgseq(x: list) -> MessageSequence:
    return MessageSequence(_unwalk(c) for c in x[1:])


def _un_pickle(x: list) -> Any:
    return _ploads(x[1])


def _un_fset(x: list) -> frozenset:
    return frozenset(_unwalk(c) for c in x[1:])


def _un_dict(x: list) -> dict:
    it = iter(x[1:])
    return {_unwalk(k): _unwalk(v) for k, v in zip(it, it)}


_NODE_DEC[_M_LIST] = _un_list
_NODE_DEC[_M_MSGSEQ] = _un_msgseq
_NODE_DEC[_M_PICKLE] = _un_pickle
_NODE_DEC[_M_FSET] = _un_fset
_NODE_DEC[_M_DICT] = _un_dict


# ---------------------------------------------------------------------------
# Per-class codegen
# ---------------------------------------------------------------------------

#: annotations whose values marshal serializes natively, so the codec
#: passes them through without walking.  A field that lies about its
#: annotation still round-trips (marshal doesn't care) unless the value
#: is unmarshalable, in which case the whole frame takes the pickle
#: escape -- slow but correct.
_TRUSTED = {
    "str",
    "int",
    "bool",
    "float",
    "bytes",
    "Tuple[str, ...]",
    # Optionals of native types: marshal serializes None natively.
    "Optional[int]",
    "Optional[str]",
    # Operation tuples are native values (strings/ints/nested tuples) in
    # every shipped state machine; an exotic op containing a non-native
    # object makes ``marshal.dumps`` raise and the frame takes the
    # whole-frame pickle escape -- slower, still correct.
    "Tuple[Any, ...]",
}
#: annotations stored as a tuple node but rebuilt as a frozenset --
#: marshal serializes frozensets natively but ~2x slower than tuples.
_AS_TUPLE = {"FrozenSet[str]": "frozenset"}


def _register(cls: type, tag: int) -> None:
    """Generate and install the node encoder/decoder pair for ``cls``."""
    if tag in _NODE_DEC or cls in WIRE_TAGS:
        raise ValueError(f"duplicate codec registration: {cls.__name__}/{tag}")
    field_list = [(f.name, f.type) for f in _dc_fields(cls)]

    ns: Dict[str, Any] = {
        "_w": _walk,
        "_u": _unwalk,
        "_mk": partial(object.__new__, cls),
    }
    slot_setters = all(
        hasattr(cls.__dict__.get(n), "__set__") for n, _ in field_list
    )
    if slot_setters:
        for i, (name, _t) in enumerate(field_list):
            ns[f"_s{i}"] = cls.__dict__[name].__set__
    else:
        ns["_og"] = object.__getattribute__

    # -- encoder: one flat list literal ------------------------------------
    items = [str(tag)]
    for name, typ in field_list:
        if typ in _TRUSTED:
            items.append(f"v.{name}")
        elif typ in _AS_TUPLE:
            items.append(f"tuple(v.{name})")
        else:
            items.append(f"_w(v.{name})")
    enc_src = f"def _enc(v, _w=_w):\n    return [{', '.join(items)}]\n"

    # -- decoder: new instance + hoisted descriptor sets -------------------
    def _get(i: int, typ: str) -> str:
        if typ in _TRUSTED:
            return f"x[{i}]"
        if typ in _AS_TUPLE:
            return f"{_AS_TUPLE[typ]}(x[{i}])"
        return f"_u(x[{i}])"

    body: List[str] = ["    m = _mk()"]
    if slot_setters:
        for i, (name, typ) in enumerate(field_list):
            body.append(f"    _s{i}(m, {_get(i + 1, typ)})")
        setter_args = ", ".join(f"_s{i}=_s{i}" for i in range(len(field_list)))
        dec_args = f"x, _mk=_mk, _u=_u, {setter_args}"
    else:
        pairs = ", ".join(
            f"'{name}': {_get(i + 1, typ)}"
            for i, (name, typ) in enumerate(field_list)
        )
        body.append(f"    _og(m, '__dict__').update({{{pairs}}})")
        dec_args = "x, _mk=_mk, _u=_u, _og=_og"
    body.append("    return m")
    dec_src = f"def _dec({dec_args}):\n" + "\n".join(body) + "\n"

    exec(enc_src, ns)
    exec(dec_src, ns)
    _NODE_ENC[cls] = ns["_enc"]
    _NODE_DEC[tag] = ns["_dec"]
    WIRE_TAGS[cls] = tag


#: Registration order is the wire contract -- append only, never reorder.
_WIRE_CLASSES: Tuple[Type[Any], ...] = (
    Request,
    Reply,
    ReadRequest,
    ReadReply,
    ShedNotice,
    SeqOrder,
    OrderNack,
    BodyBatch,
    PhaseII,
    RMsg,
    OrderMsg,
    OrderBatch,
    ViewOrder,
    CEstimate,
    CProposal,
    CAck,
    CNack,
    CDecide,
    OpResult,
    WrongShard,
    Overloaded,
    Heartbeat,
)

for _i, _cls in enumerate(_WIRE_CLASSES):
    _register(_cls, _i)


def registered_types() -> Tuple[Type[Any], ...]:
    """All wire classes with a specialized (non-escape-hatch) encoding."""
    return _WIRE_CLASSES


# ---------------------------------------------------------------------------
# Codec objects
# ---------------------------------------------------------------------------


class BinaryCodec:
    """The compact tagged binary codec (default for real backends)."""

    name = "binary"

    @staticmethod
    def encode(obj: Any) -> bytes:
        try:
            return _F_BINARY + _mdumps(_walk(obj), _MARSHAL_VERSION)
        except (ValueError, RecursionError):
            return _F_PICKLE + _pdumps(obj, protocol=_PICKLE_PROTO)

    @staticmethod
    def decode(buf: bytes) -> Any:
        if buf[0]:
            return _unwalk(_mloads(buf[1:]))
        return _ploads(buf[1:])

    @staticmethod
    def encode_frame(src: str, payload: Any) -> bytes:
        """One wire frame body: the source pid and the payload together."""
        try:
            return _F_BINARY + _mdumps((src, _walk(payload)), _MARSHAL_VERSION)
        except (ValueError, RecursionError):
            return _F_PICKLE + _pdumps((src, payload), protocol=_PICKLE_PROTO)

    @staticmethod
    def decode_frame(buf: bytes) -> Tuple[str, Any]:
        if buf[0]:
            src, node = _mloads(buf[1:])
            # Inline the hot case (payload is a registered-class node)
            # to skip one dispatch layer per frame.
            if node.__class__ is list:
                return src, _NODE_DEC[node[0]](node)
            return src, _unwalk(node)
        return _ploads(buf[1:])


class PickleCodec:
    """The seed runtime's pickle framing, kept as a per-cluster option."""

    name = "pickle"

    @staticmethod
    def encode(obj: Any) -> bytes:
        return _pdumps(obj, protocol=_PICKLE_PROTO)

    decode = staticmethod(_ploads)

    @staticmethod
    def encode_frame(src: str, payload: Any) -> bytes:
        return _pdumps((src, payload), protocol=_PICKLE_PROTO)

    @staticmethod
    def decode_frame(buf: bytes) -> Tuple[str, Any]:
        return _ploads(buf)


_CODECS = {"binary": BinaryCodec, "pickle": PickleCodec}


def make_codec(spec: Any = "binary") -> Any:
    """Resolve a codec spec: ``"binary"``, ``"pickle"``, or a codec object."""
    if isinstance(spec, str):
        try:
            return _CODECS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown codec {spec!r}; expected one of {sorted(_CODECS)}"
            ) from None
    if hasattr(spec, "encode") and hasattr(spec, "decode"):
        return spec
    raise TypeError(f"codec spec must be a name or codec object, got {spec!r}")
