"""In-process asyncio host for protocol processes.

Each process gets an inbox queue and a pump task that delivers one
message at a time (the same mutual-exclusion discipline as the
simulator).  Sends are queue puts, optionally after a fixed ``link_delay``
(constant, so FIFO per channel is preserved -- the paper's channel model).
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.sim.process import Process, ProcessEnv
from repro.sim.trace import TraceLog


class AsyncioTimerHandle:
    """Duck-type of :class:`repro.sim.loop.TimerHandle` over asyncio."""

    __slots__ = ("_handle", "cancelled", "fired", "deadline")

    def __init__(self, handle: asyncio.TimerHandle, deadline: float) -> None:
        self._handle = handle
        self.cancelled = False
        self.fired = False
        self.deadline = deadline

    def cancel(self) -> None:
        if not self.fired:
            self.cancelled = True
            self._handle.cancel()

    @property
    def active(self) -> bool:
        return not self.cancelled and not self.fired


class AsyncioEnv(ProcessEnv):
    """ProcessEnv implementation backed by an :class:`AsyncioCluster`."""

    def __init__(self, cluster: "AsyncioCluster", pid: str, seed: int) -> None:
        self._cluster = cluster
        self._pid = pid
        self._rng = random.Random(f"{seed}/{pid}")

    @property
    def pid(self) -> str:
        return self._pid

    @property
    def now(self) -> float:
        return self._cluster.now

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def peers(self) -> Sequence[str]:
        return self._cluster.pids

    def send(self, dst: str, payload: Any) -> None:
        self._cluster.route(self._pid, dst, payload)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> AsyncioTimerHandle:
        loop = self._cluster.loop
        deadline = loop.time() + delay
        handle_box: List[AsyncioTimerHandle] = []

        def fire() -> None:
            if handle_box:
                handle_box[0].fired = True
            if not self._cluster.is_crashed(self._pid):
                callback()

        timer = loop.call_later(delay, fire)
        wrapped = AsyncioTimerHandle(timer, deadline)
        handle_box.append(wrapped)
        return wrapped

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """Handle-free timer: no AsyncioTimerHandle wrapper is allocated."""

        def fire() -> None:
            if not self._cluster.is_crashed(self._pid):
                callback()

        self._cluster.loop.call_later(delay, fire)

    def trace(self, kind: str, **fields: Any) -> None:
        self._cluster.trace.record(self._cluster.now, self._pid, kind, **fields)


class AsyncioCluster:
    """Hosts processes on one asyncio event loop with queue transport.

    Usage::

        cluster = AsyncioCluster(link_delay=0.001)
        cluster.add_process(server); ...
        async def scenario():
            await cluster.start()
            ... submit requests ...
            await cluster.run_until(lambda: client.outstanding == 0)
            await cluster.shutdown()
        asyncio.run(scenario())
    """

    def __init__(
        self, link_delay: float = 0.0, seed: int = 0, trace_level: str = "full"
    ) -> None:
        self.link_delay = link_delay
        self.seed = seed
        self.trace = TraceLog(level=trace_level)
        self._processes: Dict[str, Process] = {}
        self._inboxes: Dict[str, "asyncio.Queue[Tuple[str, Any]]"] = {}
        self._pumps: List[asyncio.Task] = []
        self._crashed: set = set()
        self._started = False
        self._epoch = time.monotonic()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return asyncio.get_event_loop()

    @property
    def now(self) -> float:
        return time.monotonic() - self._epoch

    @property
    def pids(self) -> List[str]:
        return list(self._processes)

    def add_process(self, process: Process) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        if process.pid in self._processes:
            raise ValueError(f"duplicate pid: {process.pid}")
        self._processes[process.pid] = process
        self._inboxes[process.pid] = asyncio.Queue()

    def is_crashed(self, pid: str) -> bool:
        return pid in self._crashed

    def crash(self, pid: str) -> None:
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        process = self._processes.get(pid)
        if process is not None:
            process.crashed = True
            process.on_crash()
        self.trace.record(self.now, pid, "crash")

    # ------------------------------------------------------------------

    def route(self, src: str, dst: str, payload: Any) -> None:
        if src in self._crashed or dst not in self._inboxes:
            return
        if self.link_delay > 0:
            # Constant delay keeps per-channel FIFO (asyncio call_later
            # with equal delays fires in scheduling order).
            asyncio.get_event_loop().call_later(
                self.link_delay, self._inboxes[dst].put_nowait, (src, payload)
            )
        else:
            self._inboxes[dst].put_nowait((src, payload))

    async def start(self) -> None:
        self._started = True
        self._epoch = time.monotonic()
        for pid, process in self._processes.items():
            process.start(AsyncioEnv(self, pid, self.seed))
        for pid in self._processes:
            self._pumps.append(asyncio.ensure_future(self._pump(pid)))

    async def _pump(self, pid: str) -> None:
        inbox = self._inboxes[pid]
        process = self._processes[pid]
        while True:
            src, payload = await inbox.get()
            if pid in self._crashed:
                continue
            process.on_message(src, payload)

    async def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 30.0,
        poll: float = 0.002,
    ) -> bool:
        """Poll ``predicate`` until true or ``timeout`` wall-clock seconds."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            await asyncio.sleep(poll)
        return predicate()

    async def shutdown(self) -> None:
        for pump in self._pumps:
            pump.cancel()
        await asyncio.gather(*self._pumps, return_exceptions=True)
        self._pumps.clear()
