"""asyncio runtime: the same protocol code on real (wall-clock) time.

The deterministic simulator answers every correctness question; this
runtime answers the "does it actually run as a networked program"
question and carries the wall-clock throughput story (benchmark B8 and
the ``wallclock`` section of ``BENCH_perf.json``).  Two transports:

* :class:`~repro.runtime.host.AsyncioCluster` -- in-process message
  passing over asyncio queues with optional injected delay (the honest
  laptop-scale equivalent of a LAN: the paper's latencies were LAN
  round-trips, ours are event-loop hops plus the configured delay).
* :class:`~repro.runtime.tcp.TcpCluster` -- every process served on a
  real localhost TCP socket.  Frames are length-prefixed bodies from a
  per-cluster wire codec (:mod:`repro.runtime.codec`): the compact
  tagged binary codec by default, or ``codec="pickle"`` for the seed
  behaviour.  Sends coalesce into per-connection buffers; see the
  module docs for the flush and reconnect rules.

Both host the **same** :class:`~repro.sim.process.Process` subclasses as
the simulator -- the protocol code has no idea which world it lives in.
Full sharded scenarios (router, sharded clients, replica-local reads)
run over either transport through
:func:`~repro.runtime.scenario.run_runtime_scenario`, which returns a
genuine :class:`~repro.sharding.cluster.ShardedRun` view so the entire
``check_all`` checker bundle applies to wall-clock runs unchanged.
"""

from repro.runtime.codec import (
    WIRE_TAGS,
    BinaryCodec,
    PickleCodec,
    make_codec,
    registered_types,
)
from repro.runtime.host import AsyncioCluster, AsyncioEnv
from repro.runtime.scenario import (
    RuntimeScenarioConfig,
    RuntimeShardedRun,
    execute_runtime_scenario,
    run_runtime_scenario,
)
from repro.runtime.tcp import TcpCluster

__all__ = [
    "AsyncioCluster",
    "AsyncioEnv",
    "BinaryCodec",
    "PickleCodec",
    "RuntimeScenarioConfig",
    "RuntimeShardedRun",
    "TcpCluster",
    "WIRE_TAGS",
    "execute_runtime_scenario",
    "make_codec",
    "registered_types",
    "run_runtime_scenario",
]
