"""asyncio runtime: the same protocol code on real (wall-clock) time.

The deterministic simulator answers every correctness question; this
runtime answers the "does it actually run as a networked program"
question, and provides the wall-clock latency numbers of benchmark B8.
Two transports are provided:

* :class:`~repro.runtime.host.AsyncioCluster` -- in-process message
  passing over asyncio queues with optional injected delay (the honest
  laptop-scale equivalent of a LAN: the paper's latencies were LAN
  round-trips, ours are event-loop hops plus the configured delay).
* :class:`~repro.runtime.tcp.TcpCluster` -- every process is served on a
  real localhost TCP socket with length-prefixed pickled messages.

Both host the **same** :class:`~repro.sim.process.Process` subclasses as
the simulator -- the protocol code has no idea which world it lives in.
"""

from repro.runtime.host import AsyncioCluster, AsyncioEnv
from repro.runtime.tcp import TcpCluster

__all__ = ["AsyncioCluster", "AsyncioEnv", "TcpCluster"]
