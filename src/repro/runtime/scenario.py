"""Sharded-scenario parity for the real backends (asyncio queues / TCP).

The simulator is the correctness oracle; this module is the proof that
the *same* protocol objects -- ``OARServer``, ``ShardedOARClient``, the
router, the replica-local read paths, the closed/open-loop drivers --
run unmodified over real event loops and real sockets.  It mirrors
:func:`repro.sharding.cluster.build_sharded_scenario` construction
step for step, but hosts every process on an
:class:`~repro.runtime.host.AsyncioCluster` or
:class:`~repro.runtime.tcp.TcpCluster` instead of a ``SimNetwork``.

Two impedance mismatches are bridged here:

* **Time.**  Scenario configs speak simulated time units (a redirect
  delay of 5.0, a horizon of 20 000).  Wall-clock runs scale every
  time-valued knob by ``time_scale`` seconds per unit -- except the
  failure detector, whose wall-clock interval/timeout are set
  explicitly (``fd_interval``/``fd_timeout``): a scaled sim timeout can
  land under the event loop's scheduling jitter and manufacture false
  suspicions that the sim never sees.
* **Scheduling.**  The workload drivers only use the simulator's
  ``schedule_at`` / ``schedule`` / ``call_soon`` surface, so a thin
  :class:`_WallClock` adapter lets ``ClosedLoopDriver`` and
  ``OpenLoopDriver`` run verbatim over the asyncio loop.

The result object wraps a genuine
:class:`~repro.sharding.cluster.ShardedRun` whose ``network`` is the
real cluster, so ``check_all`` -- the full checker bundle, trace-based
properties included -- applies to socket runs exactly as it does to
simulated ones.

Over TCP the sequencer's order batching (``OARConfig.batch_interval``,
PR 2) defaults *on* (``tcp_batch_interval`` wall-clock seconds): over
real sockets every ordering message is a syscall, so amortizing
``SeqOrder`` traffic into ``OrderBatch`` frames is part of the
throughput story rather than an optional latency trade.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.client import ShardedOARClient
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import (
    FailureDetector,
    HeartbeatFailureDetector,
    ScriptedFailureDetector,
)
from repro.runtime.host import AsyncioCluster
from repro.runtime.tcp import TcpCluster
from repro.sharding.cluster import (
    ShardedRun,
    ShardedScenarioConfig,
    SHARDED_MACHINES,
    WORKLOADS,
    _key_universe,
    _machine_class,
    _make_machine,
    _make_ops,
)
from repro.sharding.router import RoutingTable, make_router
from repro.statemachine import SplittableMachine
from repro.workload.drivers import ClosedLoopDriver, OpenLoopDriver

BACKENDS = ("asyncio", "tcp")


class _WallClock:
    """Duck-type of the Simulator's scheduling surface over asyncio.

    Delays arrive in simulated time units and are scaled to wall-clock
    seconds; ``schedule_at`` is relative to this clock's construction
    (the drivers' time zero).
    """

    __slots__ = ("_loop", "_scale", "_epoch")

    def __init__(self, loop: asyncio.AbstractEventLoop, scale: float) -> None:
        self._loop = loop
        self._scale = scale
        self._epoch = loop.time()

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        delay = self._epoch + when * self._scale - self._loop.time()
        self._loop.call_later(max(0.0, delay), callback)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        self._loop.call_later(delay * self._scale, callback)

    def call_soon(self, callback: Callable[[], None]) -> None:
        self._loop.call_soon(callback)


@dataclass(frozen=True)
class RuntimeScenarioConfig:
    """A sharded scenario bound to a real backend.

    ``scenario`` is the same description the simulator runs; the fields
    here say how to host it on a wall clock.
    """

    scenario: ShardedScenarioConfig
    backend: str = "tcp"  #: "asyncio" (in-process queues) or "tcp"
    codec: Any = "binary"  #: TCP wire codec: "binary" | "pickle" | object
    link_delay: float = 0.0005  #: asyncio backend's per-hop delay (s)
    time_scale: float = 0.04  #: wall-clock seconds per simulated unit
    #: Wall-clock failure detector cadence (not scaled from the
    #: scenario: see module docstring).
    fd_interval: float = 0.2
    fd_timeout: float = 1.5
    #: Sequencer order batching default for TCP, in wall-clock seconds;
    #: applied only when the scenario itself leaves batching off.
    #: ``None`` keeps batching off.
    tcp_batch_interval: Optional[float] = 0.002
    #: Coalescing buffer cap forwarded to :class:`TcpCluster`
    #: (``None`` keeps the transport default; ``1`` disables coalescing
    #: -- the pre-codec baseline shape used by the perf harness).
    flush_bytes: Optional[int] = None
    #: Timed coalescing window forwarded to :class:`TcpCluster`
    #: (``None`` = flush at the turn boundary; throughput cells set a
    #: small window to trade per-hop latency for fewer syscalls).
    tcp_flush_interval: Optional[float] = None
    #: Encode-once fan-out cache on the TCP transport; the perf
    #: harness's pre-PR baseline disables it (the seed encoded per
    #: send).
    encode_cache: bool = True
    #: Receive path on the TCP transport: ``True`` dispatches parsed
    #: frames straight to the process; ``False`` restores the seed's
    #: inbox-queue + pump-task shape (pre-PR baseline cell).
    tcp_direct_dispatch: bool = True
    #: Alternative TCP cluster constructor (same keyword surface as
    #: :class:`TcpCluster`); the perf harness uses this to host the
    #: scenario on a reconstructed pre-PR transport for the baseline
    #: cell.  ``None`` uses :class:`TcpCluster`.
    tcp_cluster_factory: Optional[Callable[..., Any]] = None
    timeout: float = 60.0  #: wall-clock quiescence deadline (s)
    grace: float = 0.05  #: settle window after quiescence (s)
    #: Trace level override; ``None`` defers to the scenario's
    #: (``check_all`` needs "full"; throughput runs want "off").
    trace_level: Optional[str] = None

    def with_changes(self, **changes: Any) -> "RuntimeScenarioConfig":
        return replace(self, **changes)


@dataclass
class RuntimeShardedRun:
    """A completed wall-clock run plus its sim-shaped checker view.

    ``view`` is a real :class:`~repro.sharding.cluster.ShardedRun`
    whose ``network`` is the live cluster -- every property and the
    whole ``check_all`` bundle read through it unchanged.
    """

    config: RuntimeScenarioConfig
    cluster: Any
    view: ShardedRun
    completed: bool = False
    elapsed: float = 0.0  #: wall-clock seconds of the drive phase

    @property
    def trace(self):
        return self.cluster.trace

    @property
    def servers(self) -> List[OARServer]:
        return self.view.servers

    @property
    def clients(self) -> List[ShardedOARClient]:
        return self.view.clients

    @property
    def drivers(self) -> List[Any]:
        return self.view.drivers

    def adopted(self) -> Dict[str, Any]:
        return self.view.adopted()

    def latencies(self) -> List[float]:
        return self.view.latencies()

    def all_done(self) -> bool:
        return self.view.all_done()

    def ops_per_sec(self) -> float:
        """Adopted logical operations per wall-clock second."""
        if self.elapsed <= 0:
            return 0.0
        return len(self.view.adopted()) / self.elapsed

    def transport_stats(self) -> Dict[str, int]:
        stats = getattr(self.cluster, "stats", None)
        return stats() if callable(stats) else {}

    def check_all(self, strict: bool = True, at_least_once: bool = True) -> None:
        """The full sharded checker bundle, on the wall-clock trace."""
        self.view.check_all(strict=strict, at_least_once=at_least_once)


def _scaled_oar(config: RuntimeScenarioConfig) -> OARConfig:
    """The scenario's OAR knobs, overridden and scaled to wall clock."""
    scenario = config.scenario
    oar = scenario.oar.with_exec_overrides(
        scenario.exec_cost, scenario.exec_lanes
    ).with_admission_overrides(scenario.admission_limit, scenario.read_queue_limit)
    scale = config.time_scale

    def interval(value: Optional[float]) -> Optional[float]:
        if value is None or value == 0.0:
            return value
        return max(value * scale, OARConfig.MIN_INTERVAL)

    batch_interval = interval(oar.batch_interval)
    if (
        config.backend == "tcp"
        and not batch_interval
        and config.tcp_batch_interval
    ):
        batch_interval = max(config.tcp_batch_interval, OARConfig.MIN_INTERVAL)
    return replace(
        oar,
        batch_interval=batch_interval,
        order_cost=oar.order_cost * scale,
        read_cost=oar.read_cost * scale,
        exec_cost=oar.exec_cost * scale,
        gc_interval=interval(oar.gc_interval),
        sync_interval=interval(oar.sync_interval),
    )


def _make_cluster(config: RuntimeScenarioConfig) -> Any:
    scenario = config.scenario
    trace_level = (
        config.trace_level if config.trace_level is not None else scenario.trace_level
    )
    if config.backend == "tcp":
        kwargs: Dict[str, Any] = {}
        if config.flush_bytes is not None:
            kwargs["flush_bytes"] = config.flush_bytes
        factory = config.tcp_cluster_factory or TcpCluster
        return factory(
            seed=scenario.seed,
            codec=config.codec,
            trace_level=trace_level,
            encode_cache=config.encode_cache,
            direct_dispatch=config.tcp_direct_dispatch,
            flush_interval=config.tcp_flush_interval,
            **kwargs,
        )
    if config.backend == "asyncio":
        return AsyncioCluster(
            link_delay=config.link_delay,
            seed=scenario.seed,
            trace_level=trace_level,
        )
    raise ValueError(f"unknown backend: {config.backend} (choose from {BACKENDS})")


async def execute_runtime_scenario(
    config: RuntimeScenarioConfig,
) -> RuntimeShardedRun:
    """Build, drive to quiescence, and tear down -- inside a running loop."""
    scenario = config.scenario
    if scenario.machine not in SHARDED_MACHINES:
        raise ValueError(f"unknown machine kind: {scenario.machine}")
    if scenario.workload not in WORKLOADS:
        raise ValueError(f"unknown workload: {scenario.workload}")
    if scenario.driver not in ("closed", "open"):
        raise ValueError(
            "runtime scenarios support the closed/open drivers "
            f"(got {scenario.driver!r}; the session driver is sim-only)"
        )
    if scenario.faults is not None or scenario.fault_schedule is not None:
        raise ValueError(
            "link-fault injection is sim-only; runtime runs exercise "
            "real sockets (crash processes via cluster.crash instead)"
        )

    cluster = _make_cluster(config)
    scale = config.time_scale

    key_universe = _key_universe(scenario)
    router = make_router(scenario.router, scenario.n_shards, key_universe)
    routing_table = RoutingTable(router)
    accounts_by_shard = routing_table.placement(key_universe)

    shard_groups = tuple(
        tuple(f"s{shard}.p{i + 1}" for i in range(scenario.n_servers))
        for shard in range(scenario.n_shards)
    )

    detectors: Dict[str, FailureDetector] = {}

    def fd_factory(group: Tuple[str, ...]):
        def build(host: Any) -> FailureDetector:
            if scenario.fd_kind == "heartbeat":
                detector: FailureDetector = HeartbeatFailureDetector(
                    host,
                    monitored=group,
                    interval=config.fd_interval,
                    timeout=config.fd_timeout,
                )
            elif scenario.fd_kind == "scripted":
                detector = ScriptedFailureDetector()
            else:
                raise ValueError(f"unknown fd kind: {scenario.fd_kind}")
            detectors[host.pid] = detector
            return detector

        return build

    oar_config = _scaled_oar(config)
    shards: List[List[OARServer]] = []
    for shard, group in enumerate(shard_groups):
        servers: List[OARServer] = []
        for pid in group:
            machine = _make_machine(scenario, accounts_by_shard[shard])
            server = OARServer(pid, group, machine, fd_factory(group), oar_config)
            servers.append(server)
            cluster.add_process(server)
        shards.append(servers)

    machine_cls = _machine_class(scenario.machine)
    read_mode = scenario.read_mode or scenario.oar.read_mode
    clients: List[ShardedOARClient] = []
    for index in range(scenario.n_clients):
        client = ShardedOARClient(
            f"c{index + 1}",
            shard_groups,
            routing_table.copy(),
            key_extractor=machine_cls.keys_of,
            tx_planner=machine_cls.tx_branches,
            retry_interval=(
                scenario.retry_interval * scale
                if scenario.retry_interval is not None
                else None
            ),
            route_authority=routing_table,
            redirect_delay=scenario.redirect_delay * scale,
            max_redirects=scenario.max_redirects,
            read_mode=read_mode,
            is_read_only=machine_cls.is_read_only,
            load_half_life=(
                scenario.load_half_life * scale
                if scenario.load_half_life is not None
                else None
            ),
            splitter=(
                machine_cls
                if issubclass(machine_cls, SplittableMachine)
                else None
            ),
        )
        clients.append(client)
        cluster.add_process(client)

    await cluster.start()

    # Drivers reuse the sim's classes verbatim over the wall-clock
    # adapter; per-client op streams are seeded exactly like the sim's
    # (same child-seed derivation would need a Simulator, so we derive
    # from the scenario seed + pid directly -- determinism of the *op
    # sequence* per client is what matters for reproducibility).
    drivers: List[Any] = []
    clock = _WallClock(cluster.loop, scale)
    for client in clients:
        ops_rng = random.Random(f"{scenario.seed}/ops/{client.pid}")
        ops = _make_ops(scenario, ops_rng, key_universe, accounts_by_shard)
        if scenario.driver == "closed":
            driver: Any = ClosedLoopDriver(
                clock,
                client,
                ops,
                total=scenario.requests_per_client,
                think_time=scenario.think_time,
                start_at=scenario.driver_start_at,
            )
        else:
            driver = OpenLoopDriver(
                clock,
                client,
                ops,
                total=scenario.requests_per_client,
                rate=scenario.open_rate,
                rng=random.Random(f"{scenario.seed}/arrivals/{client.pid}"),
                start_at=scenario.driver_start_at,
            )
        drivers.append(driver)

    initial_total = None
    if scenario.machine == "bank" and scenario.workload != "hotkey":
        initial_total = scenario.initial_balance * len(key_universe)

    view = ShardedRun(
        config=scenario,
        sim=None,  # type: ignore[arg-type]  # checkers never touch it
        network=cluster,  # type: ignore[arg-type]  # duck-typed: .trace
        router=router,
        routing_table=routing_table,
        shard_groups=shard_groups,
        shards=shards,
        clients=clients,
        drivers=drivers,
        detectors=detectors,
        key_universe=key_universe,
        initial_total=initial_total,
    )
    run = RuntimeShardedRun(config=config, cluster=cluster, view=view)

    started = time.perf_counter()
    run.completed = await cluster.run_until(view.all_done, timeout=config.timeout)
    run.elapsed = time.perf_counter() - started
    if config.grace > 0:
        await asyncio.sleep(config.grace)
    await cluster.shutdown()
    return run


def run_runtime_scenario(config: RuntimeScenarioConfig) -> RuntimeShardedRun:
    """Build and execute a wall-clock scenario; the one-call entry point."""
    return asyncio.run(execute_runtime_scenario(config))
