"""Localhost TCP transport: every process behind a real socket.

Frames are length-prefixed (4-byte big-endian) bodies produced by a
per-cluster codec -- the compact binary codec from
:mod:`repro.runtime.codec` by default, or pickle (``codec="pickle"``)
for the seed behaviour.  One persistent connection is opened lazily per
directed (src, dst) pair; TCP ordering gives the FIFO channel property
of the paper's model.  This transport exists solely for loopback
benchmarking of our own processes -- it is not a trust boundary.

Two throughput mechanisms keep syscall count from scaling with op
count:

* **Write coalescing** -- sends append to a per-connection buffer and
  the buffer flushes either at the end of the current event-loop turn
  (``loop.call_soon``) or as soon as it exceeds ``flush_bytes``.  All
  frames a process emits while handling one delivery or timer (a
  request fan-out, a reply batch, a sequencer drain) therefore share
  one ``writer.write``.  ``flush_interval`` widens the window across
  turns: instead of flushing at the turn boundary, a dirty connection
  flushes at most once per interval (``loop.call_later``), trading up
  to that much latency per hop for several-fold fewer syscalls at
  saturation -- the same trade the sequencer's ``OrderBatch`` makes,
  applied at the transport.  Throughput cells opt in; the default
  (``None``) keeps the latency-preserving turn-boundary flush.
* **Encode-once fan-out** -- relay-on-first-receipt and R-multicast
  send *the same payload object* to every group member back to back,
  so a one-entry identity cache on the encoder turns an n-destination
  broadcast into one encode plus n buffer appends.

The receive side is symmetric: each accepted connection parses frames
out of bulk socket reads and dispatches them *directly* to the process
-- no inbox queue, no pump task -- so one coalesced chunk from a peer
costs one event-loop wakeup (see ``_make_connection_handler``).
``direct_dispatch=False`` restores the seed's receive shape (an inbox
queue per process drained by a pump task, one queue put + one pump
wakeup per frame) -- kept so the perf harness's pre-PR baseline cell
measures the transport this PR actually replaced.

A peer that died mid-connection is handled in the writer path: a send
that finds its cached :class:`~asyncio.StreamWriter` closed (or takes
``ConnectionResetError``/``BrokenPipeError`` on write) drops the
writer, reconnects once, and re-sends the buffered frames; a second
consecutive failure treats the destination as crashed and drops the
frames (crash-stop peers never come back under the same pid).  Every
reconnection is counted in :meth:`TcpCluster.stats`.
"""

from __future__ import annotations

import asyncio
import struct
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.codec import make_codec
from repro.runtime.host import AsyncioEnv
from repro.sim.process import Process
from repro.sim.trace import TraceLog

_HEADER = struct.Struct(">I")

#: flush as soon as a connection buffer holds this many bytes, rather
#: than waiting for the turn boundary (bounds memory under bursts).
_DEFAULT_FLUSH_BYTES = 64 * 1024
#: ask the event loop to drain a transport once its kernel-side write
#: buffer backlog passes this (backpressure guard, rarely hit on
#: loopback).
_DRAIN_THRESHOLD = 1 << 20


class _TcpEnv(AsyncioEnv):
    """AsyncioEnv whose sends go through the TCP cluster."""

    def __init__(self, cluster: "TcpCluster", pid: str, seed: int) -> None:
        super().__init__(cluster, pid, seed)  # type: ignore[arg-type]
        self._tcp = cluster

    def send(self, dst: str, payload: Any) -> None:
        self._tcp.send_frame(self.pid, dst, payload)


class _Conn:
    """Per-(src, dst) connection state: send buffer plus stream writer."""

    __slots__ = (
        "buf",
        "size",
        "scheduled",
        "writer",
        "connecting",
        "draining",
        "failures",
    )

    def __init__(self) -> None:
        self.buf: List[bytes] = []
        self.size = 0
        self.scheduled = False
        self.writer: Optional[asyncio.StreamWriter] = None
        self.connecting = False
        self.draining = False
        self.failures = 0


class TcpCluster:
    """Hosts processes on localhost TCP sockets.

    The API mirrors :class:`~repro.runtime.host.AsyncioCluster`:
    ``add_process`` everything, ``await start()``, drive the scenario,
    ``await shutdown()``.

    ``codec`` selects the wire encoding (``"binary"`` | ``"pickle"`` |
    a codec object); ``trace_level`` is forwarded to the
    :class:`~repro.sim.trace.TraceLog` (benchmarks run ``"off"`` -- at
    six-digit message rates full tracing is the bottleneck, the same
    hot-path hazard the simulator solved in its perf overhaul);
    ``flush_bytes`` caps the coalescing buffer; ``flush_interval``
    widens the coalescing window across event-loop turns (see the
    module docstring); ``direct_dispatch=False`` selects the seed's
    inbox-queue + pump-task receive path (see the module docstring).
    """

    def __init__(
        self,
        seed: int = 0,
        codec: Any = "binary",
        trace_level: str = "full",
        flush_bytes: int = _DEFAULT_FLUSH_BYTES,
        encode_cache: bool = True,
        direct_dispatch: bool = True,
        flush_interval: Optional[float] = None,
    ) -> None:
        self.seed = seed
        self.codec = make_codec(codec)
        self.trace = TraceLog(level=trace_level)
        self.flush_bytes = flush_bytes
        self.flush_interval = flush_interval
        self.encode_cache = encode_cache
        self.direct_dispatch = direct_dispatch
        self._inboxes: Dict[str, asyncio.Queue] = {}
        self._processes: Dict[str, Process] = {}
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._conns: Dict[Tuple[str, str], _Conn] = {}
        self._tasks: List[asyncio.Task] = []
        self._crashed: set = set()
        self._epoch = time.monotonic()
        self._stats: Dict[str, int] = {
            "frames_sent": 0,
            "frames_received": 0,
            "bytes_sent": 0,
            "flushes": 0,
            "reconnects": 0,
            "dropped_frames": 0,
            "encode_cache_hits": 0,
        }
        # one-entry identity cache for encode-once fan-out (holds a real
        # reference so a recycled id() can never alias a new object)
        self._enc_src: Optional[str] = None
        self._enc_obj: Any = None
        self._enc_frame: bytes = b""

    # -- interface shared with AsyncioCluster (used by AsyncioEnv) -----

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return asyncio.get_event_loop()

    @property
    def now(self) -> float:
        return time.monotonic() - self._epoch

    @property
    def pids(self) -> List[str]:
        return list(self._processes)

    def is_crashed(self, pid: str) -> bool:
        return pid in self._crashed

    def crash(self, pid: str) -> None:
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        process = self._processes.get(pid)
        if process is not None:
            process.crashed = True
            process.on_crash()
        server = self._servers.pop(pid, None)
        if server is not None:
            server.close()
        self.trace.record(self.now, pid, "crash")

    def stats(self) -> Dict[str, int]:
        """Transport counters (frames, bytes, flushes, reconnects)."""
        return dict(self._stats)

    def route(self, src: str, dst: str, payload: Any) -> None:
        # AsyncioEnv fallback path (not used: _TcpEnv overrides send).
        self.send_frame(src, dst, payload)

    # ------------------------------------------------------------------

    def add_process(self, process: Process) -> None:
        if process.pid in self._processes:
            raise ValueError(f"duplicate pid: {process.pid}")
        self._processes[process.pid] = process

    async def start(self) -> None:
        self._epoch = time.monotonic()
        for pid in self._processes:
            server = await asyncio.start_server(
                self._make_connection_handler(pid), host="127.0.0.1", port=0
            )
            self._servers[pid] = server
            address = server.sockets[0].getsockname()
            self._addresses[pid] = (address[0], address[1])
        if not self.direct_dispatch:
            for pid in self._processes:
                inbox: asyncio.Queue = asyncio.Queue()
                self._inboxes[pid] = inbox
                self._track(asyncio.ensure_future(self._pump(pid, inbox)))
        for pid, process in self._processes.items():
            process.start(_TcpEnv(self, pid, self.seed))

    async def _pump(self, pid: str, inbox: "asyncio.Queue") -> None:
        """Seed receive shape: drain an inbox queue one frame at a time."""
        process = self._processes[pid]
        crashed = self._crashed
        while True:
            src, payload = await inbox.get()
            if pid not in crashed:
                process.on_message(src, payload)

    def _make_connection_handler(self, pid: str):
        decode_frame = self.codec.decode_frame
        header_size = _HEADER.size
        unpack_from = _HEADER.unpack_from

        async def handle(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            # Frames are parsed from bulk reads and dispatched *directly*
            # to the process -- no inbox queue, no pump task.  The
            # receiving side of write coalescing: one coalesced chunk
            # from a peer is one ``read`` wakeup and one synchronous
            # dispatch loop, so per-frame event-loop overhead (queue
            # put + pump wakeup + context switch) disappears.  Mutual
            # exclusion still holds: asyncio never runs two callbacks
            # concurrently and ``on_message`` contains no await, so
            # deliveries remain one at a time per process, in
            # per-channel FIFO order (TCP + in-order parse).
            process = self._processes[pid]
            inbox = self._inboxes.get(pid)  # None on the direct path
            crashed = self._crashed
            stats = self._stats
            buf = bytearray()
            try:
                while True:
                    chunk = await reader.read(65536)
                    if not chunk:
                        break
                    buf += chunk
                    pos = 0
                    end = len(buf)
                    while end - pos >= header_size:
                        (length,) = unpack_from(buf, pos)
                        frame_end = pos + header_size + length
                        if frame_end > end:
                            break
                        src, payload = decode_frame(
                            buf[pos + header_size : frame_end]
                        )
                        pos = frame_end
                        stats["frames_received"] += 1
                        if pid not in crashed:
                            if inbox is None:
                                process.on_message(src, payload)
                            else:
                                inbox.put_nowait((src, payload))
                    if pos:
                        del buf[:pos]
            except (ConnectionResetError, asyncio.CancelledError):
                # Normal teardown paths: peer closed, or cluster shutdown
                # cancelled us mid-read.  Returning (rather than
                # re-raising CancelledError) keeps the streams machinery
                # from logging spurious tracebacks at shutdown.
                pass
            finally:
                writer.close()

        return handle

    # -- send path ------------------------------------------------------

    def send_frame(self, src: str, dst: str, payload: Any) -> None:
        if src in self._crashed or dst not in self._addresses:
            return
        if payload is self._enc_obj and src == self._enc_src:
            frame = self._enc_frame
            self._stats["encode_cache_hits"] += 1
        else:
            body = self.codec.encode_frame(src, payload)
            frame = _HEADER.pack(len(body)) + body
            if self.encode_cache:
                self._enc_src = src
                self._enc_obj = payload
                self._enc_frame = frame
        key = (src, dst)
        conn = self._conns.get(key)
        if conn is None:
            conn = self._conns[key] = _Conn()
        conn.buf.append(frame)
        conn.size += len(frame)
        self._stats["frames_sent"] += 1
        if conn.size >= self.flush_bytes:
            self._flush(key, conn)
        elif not conn.scheduled:
            conn.scheduled = True
            if self.flush_interval is None:
                self.loop.call_soon(self._flush, key, conn)
            else:
                self.loop.call_later(self.flush_interval, self._flush, key, conn)

    def _flush(self, key: Tuple[str, str], conn: _Conn) -> None:
        conn.scheduled = False
        if not conn.buf:
            return
        writer = conn.writer
        if writer is None or writer.is_closing():
            if writer is not None:
                self._writer_failed(key, conn)
                return
            self._ensure_connect(key, conn)
            return
        data = b"".join(conn.buf)
        conn.buf.clear()
        conn.size = 0
        try:
            writer.write(data)
        except (ConnectionResetError, BrokenPipeError):
            conn.buf.append(data)
            conn.size = len(data)
            self._writer_failed(key, conn)
            return
        conn.failures = 0
        self._stats["flushes"] += 1
        self._stats["bytes_sent"] += len(data)
        transport = writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > _DRAIN_THRESHOLD
            and not conn.draining
        ):
            conn.draining = True
            self._track(asyncio.ensure_future(self._drain(key, conn)))

    def _writer_failed(self, key: Tuple[str, str], conn: _Conn) -> None:
        """A cached writer turned out dead: reconnect once, then give up."""
        conn.writer = None
        conn.failures += 1
        if conn.failures > 1 or key[1] in self._crashed:
            # Second consecutive failure: crash-stop peers never come
            # back under the same pid, so drop rather than retry-loop.
            self._stats["dropped_frames"] += len(conn.buf)
            conn.buf.clear()
            conn.size = 0
            conn.failures = 0
            return
        self._stats["reconnects"] += 1
        self._ensure_connect(key, conn)

    def _track(self, task: asyncio.Task) -> None:
        self._tasks.append(task)
        if len(self._tasks) > 64:
            self._tasks = [t for t in self._tasks if not t.done()]

    def _ensure_connect(self, key: Tuple[str, str], conn: _Conn) -> None:
        if not conn.connecting:
            conn.connecting = True
            self._track(asyncio.ensure_future(self._connect(key, conn)))

    async def _connect(self, key: Tuple[str, str], conn: _Conn) -> None:
        dst = key[1]
        try:
            host, port = self._addresses[dst]
            _reader, writer = await asyncio.open_connection(host, port)
        except (OSError, KeyError):
            # Destination crashed between check and connect.
            conn.connecting = False
            self._stats["dropped_frames"] += len(conn.buf)
            conn.buf.clear()
            conn.size = 0
            return
        conn.writer = writer
        conn.connecting = False
        if conn.buf:
            self._flush(key, conn)

    async def _drain(self, key: Tuple[str, str], conn: _Conn) -> None:
        writer = conn.writer
        try:
            if writer is not None:
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            if conn.writer is writer:
                conn.writer = None
        finally:
            conn.draining = False

    # ------------------------------------------------------------------

    async def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 30.0,
        poll: float = 0.002,
    ) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            await asyncio.sleep(poll)
        return predicate()

    async def shutdown(self) -> None:
        # Flush any frames still sitting in coalescing buffers so that
        # a scenario's final replies are not lost to teardown.
        for key, conn in list(self._conns.items()):
            if conn.buf and conn.writer is not None:
                self._flush(key, conn)
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for conn in self._conns.values():
            if conn.writer is not None:
                conn.writer.close()
        self._conns.clear()
        for server in self._servers.values():
            server.close()
        for server in list(self._servers.values()):
            try:
                await server.wait_closed()
            except Exception:
                pass
        self._servers.clear()
