"""Localhost TCP transport: every process behind a real socket.

Messages are pickled and length-prefixed (4-byte big-endian).  Pickle is
acceptable here because this transport exists solely for loopback
benchmarking of our own processes -- it is not a trust boundary.  One
persistent connection is opened lazily per directed (src, dst) pair; TCP
ordering gives the FIFO channel property of the paper's model.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.runtime.host import AsyncioEnv
from repro.sim.process import Process
from repro.sim.trace import TraceLog

_HEADER = struct.Struct(">I")


class _TcpEnv(AsyncioEnv):
    """AsyncioEnv whose sends go through the TCP cluster."""

    def __init__(self, cluster: "TcpCluster", pid: str, seed: int) -> None:
        super().__init__(cluster, pid, seed)  # type: ignore[arg-type]
        self._tcp = cluster

    def send(self, dst: str, payload: Any) -> None:
        self._tcp.send_frame(self.pid, dst, payload)


class TcpCluster:
    """Hosts processes on localhost TCP sockets.

    The API mirrors :class:`~repro.runtime.host.AsyncioCluster`:
    ``add_process`` everything, ``await start()``, drive the scenario,
    ``await shutdown()``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.trace = TraceLog()
        self._processes: Dict[str, Process] = {}
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._writers: Dict[Tuple[str, str], asyncio.StreamWriter] = {}
        self._writer_locks: Dict[Tuple[str, str], asyncio.Lock] = {}
        self._inboxes: Dict[str, "asyncio.Queue[Tuple[str, Any]]"] = {}
        self._tasks: List[asyncio.Task] = []
        self._crashed: set = set()
        self._epoch = time.monotonic()

    # -- interface shared with AsyncioCluster (used by AsyncioEnv) -----

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return asyncio.get_event_loop()

    @property
    def now(self) -> float:
        return time.monotonic() - self._epoch

    @property
    def pids(self) -> List[str]:
        return list(self._processes)

    def is_crashed(self, pid: str) -> bool:
        return pid in self._crashed

    def crash(self, pid: str) -> None:
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        process = self._processes.get(pid)
        if process is not None:
            process.crashed = True
            process.on_crash()
        server = self._servers.pop(pid, None)
        if server is not None:
            server.close()
        self.trace.record(self.now, pid, "crash")

    def route(self, src: str, dst: str, payload: Any) -> None:
        # AsyncioEnv fallback path (not used: _TcpEnv overrides send).
        self.send_frame(src, dst, payload)

    # ------------------------------------------------------------------

    def add_process(self, process: Process) -> None:
        if process.pid in self._processes:
            raise ValueError(f"duplicate pid: {process.pid}")
        self._processes[process.pid] = process
        self._inboxes[process.pid] = asyncio.Queue()

    async def start(self) -> None:
        self._epoch = time.monotonic()
        for pid in self._processes:
            server = await asyncio.start_server(
                self._make_connection_handler(pid), host="127.0.0.1", port=0
            )
            self._servers[pid] = server
            address = server.sockets[0].getsockname()
            self._addresses[pid] = (address[0], address[1])
        for pid, process in self._processes.items():
            process.start(_TcpEnv(self, pid, self.seed))
        for pid in self._processes:
            self._tasks.append(asyncio.ensure_future(self._pump(pid)))

    def _make_connection_handler(self, pid: str):
        async def handle(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            try:
                while True:
                    header = await reader.readexactly(_HEADER.size)
                    (length,) = _HEADER.unpack(header)
                    body = await reader.readexactly(length)
                    src, payload = pickle.loads(body)
                    self._inboxes[pid].put_nowait((src, payload))
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
                asyncio.CancelledError,
            ):
                # Normal teardown paths: peer closed, or cluster shutdown
                # cancelled us mid-read.  Returning (rather than
                # re-raising CancelledError) keeps the streams machinery
                # from logging spurious tracebacks at shutdown.
                pass
            finally:
                writer.close()

        return handle

    def send_frame(self, src: str, dst: str, payload: Any) -> None:
        if src in self._crashed or dst not in self._addresses:
            return
        asyncio.ensure_future(self._send_frame(src, dst, payload))

    async def _send_frame(self, src: str, dst: str, payload: Any) -> None:
        key = (src, dst)
        lock = self._writer_locks.setdefault(key, asyncio.Lock())
        # The lock both serializes the lazy connect and keeps frames from
        # interleaving on the stream (FIFO per channel).
        async with lock:
            writer = self._writers.get(key)
            if writer is None or writer.is_closing():
                if dst in self._crashed:
                    return
                host, port = self._addresses[dst]
                try:
                    _reader, writer = await asyncio.open_connection(host, port)
                except OSError:
                    return  # destination crashed between check and connect
                self._writers[key] = writer
            body = pickle.dumps((src, payload))
            writer.write(_HEADER.pack(len(body)) + body)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self._writers.pop(key, None)

    async def _pump(self, pid: str) -> None:
        inbox = self._inboxes[pid]
        process = self._processes[pid]
        while True:
            src, payload = await inbox.get()
            if pid in self._crashed:
                continue
            process.on_message(src, payload)

    async def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 30.0,
        poll: float = 0.002,
    ) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            await asyncio.sleep(poll)
        return predicate()

    async def shutdown(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for server in self._servers.values():
            server.close()
        for server in list(self._servers.values()):
            try:
                await server.wait_closed()
            except Exception:
                pass
        self._servers.clear()
