"""Sequence algebra from Section 5.1 of the paper.

The OAR algorithm manipulates *sequences of messages* with four operators:

* ``seq1 (+) seq2``   -- concatenation (paper: ⊕), :meth:`MessageSequence.concat`
* ``seq1 (-) seq2``   -- all messages of seq1 not in seq2 (paper: ⊖),
  :meth:`MessageSequence.subtract`
* ``prefix(seq1, .., seqn)`` -- longest common prefix (paper: ⊓),
  :func:`common_prefix`
* ``merge(seq1, .., seqn)``  -- append all, removing duplicates (paper: ⊎),
  :func:`merge_dedup`

Sequences also convert implicitly to sets for ``in`` / intersection tests,
exactly as the paper assumes.  Elements can be any hashable value; the OAR
implementation uses request identifiers (strings).

:class:`MessageSequence` is immutable: every operator returns a new
sequence.  This keeps protocol state transitions auditable and makes the
hypothesis property tests in ``tests/property/test_sequences.py`` direct
transcriptions of the paper's definitions.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Tuple,
    TypeVar,
    Union,
)

T = TypeVar("T", bound=Hashable)

SequenceLike = Union["MessageSequence", Iterable[Hashable]]


class MessageSequence:
    """An immutable, duplicate-free sequence of hashable items.

    The paper's sequences never contain duplicates (they are sequences of
    distinct messages); the constructor enforces this by dropping repeated
    items, keeping the first occurrence -- which is also exactly the
    semantics needed by the ⊎ operator.
    """

    __slots__ = ("_items", "_index")

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        # dict.fromkeys is C-speed first-occurrence dedup in insertion
        # order -- this constructor is on the protocol hot path (every
        # ⊕/⊖ allocates a new sequence).
        seen = dict.fromkeys(items)
        self._items: Tuple[Hashable, ...] = tuple(seen)
        self._index = seen  # dict used as an ordered set for O(1) membership

    @classmethod
    def _make(
        cls, items: Tuple[Hashable, ...], index: Dict[Hashable, None]
    ) -> "MessageSequence":
        """Internal: build from a pre-deduplicated tuple + matching index.

        Skips the constructor's dedup pass; callers guarantee
        ``tuple(index) == items``.
        """
        self = object.__new__(cls)
        self._items = items
        self._index = index
        return self

    # -- basic container protocol ------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._index

    def __getitem__(self, index):
        if isinstance(index, slice):
            return MessageSequence(self._items[index])
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MessageSequence):
            return self._items == other._items
        if isinstance(other, (tuple, list)):
            return self._items == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:
        if not self._items:
            return "{ε}"
        return "{" + ";".join(str(item) for item in self._items) + "}"

    @property
    def items(self) -> Tuple[Hashable, ...]:
        """The underlying tuple (cheap, shared, immutable)."""
        return self._items

    def to_set(self) -> FrozenSet[Hashable]:
        """The implicit sequence-to-set conversion of Section 5.1."""
        return frozenset(self._items)

    def index_of(self, item: Hashable) -> int:
        """Position of ``item`` (0-based).  Raises ValueError if absent."""
        return self._items.index(item)

    # -- paper operators ----------------------------------------------

    def concat(self, other: SequenceLike) -> "MessageSequence":
        """⊕: all messages of self followed by all messages of other.

        The paper only ever concatenates disjoint sequences; if an item
        appears in both, the first occurrence wins (constructor dedup),
        which also makes ``concat`` usable as a building block for ⊎.
        """
        other_items = other.items if isinstance(other, MessageSequence) else tuple(other)
        if not other_items:
            return self
        if not self._items and isinstance(other, MessageSequence):
            return other
        # Disjoint concatenation (the paper's common case) is pure
        # C-speed dict work; overlap falls back to the dedup constructor.
        index = self._index.copy()
        before = len(index)
        other_index = dict.fromkeys(other_items)
        index.update(other_index)
        if len(index) == before + len(other_index):
            return MessageSequence._make(self._items + tuple(other_index), index)
        return MessageSequence(self._items + other_items)

    def subtract(self, other: SequenceLike) -> "MessageSequence":
        """⊖: all messages of self that are not in other (order kept)."""
        if isinstance(other, MessageSequence):
            exclude = other._index
        else:
            exclude = set(other)
        if not exclude or not self._items:
            return self
        kept = [item for item in self._items if item not in exclude]
        if len(kept) == len(self._items):
            return self
        return MessageSequence._make(tuple(kept), dict.fromkeys(kept))

    def is_prefix_of(self, other: "MessageSequence") -> bool:
        """True if self is a (possibly equal) prefix of other."""
        if len(self._items) > len(other._items):
            return False
        return other._items[: len(self._items)] == self._items

    def starts_with(self, prefix: "MessageSequence") -> bool:
        """True if ``prefix`` is a prefix of self (flipped is_prefix_of)."""
        return prefix.is_prefix_of(self)

    # -- convenience --------------------------------------------------

    def append(self, item: Hashable) -> "MessageSequence":
        """self ⊕ {item}.

        O(n) dict/tuple copies at C speed -- not the constructor's
        Python-level dedup loop -- because every Opt-delivery appends to
        ``O_delivered``.
        """
        if item in self._index:
            return self  # first occurrence wins: nothing changes
        index = self._index.copy()
        index[item] = None
        return MessageSequence._make(self._items + (item,), index)

    def suffix_from(self, index: int) -> "MessageSequence":
        """The suffix starting at position ``index``."""
        return MessageSequence(self._items[index:])

    def prefix_to(self, index: int) -> "MessageSequence":
        """The prefix of the first ``index`` items."""
        return MessageSequence(self._items[:index])


#: The empty sequence ε of the paper.
EMPTY: MessageSequence = MessageSequence()


def as_sequence(value: SequenceLike) -> MessageSequence:
    """Coerce an iterable to a :class:`MessageSequence` (no copy if already one)."""
    if isinstance(value, MessageSequence):
        return value
    return MessageSequence(value)


def common_prefix(*sequences: SequenceLike) -> MessageSequence:
    """⊓: the longest sequence that is a common prefix of all arguments.

    ``common_prefix()`` of zero arguments is the empty sequence (the paper
    never takes ⊓ of nothing, but the total function keeps callers simple).
    """
    if not sequences:
        return EMPTY
    seqs = [as_sequence(s) for s in sequences]
    shortest = min(len(s) for s in seqs)
    prefix_len = 0
    first = seqs[0]
    for position in range(shortest):
        item = first[position]
        if all(s[position] == item for s in seqs[1:]):
            prefix_len = position + 1
        else:
            break
    return first.prefix_to(prefix_len)


def merge_dedup(*sequences: SequenceLike) -> MessageSequence:
    """⊎: append all sequences together, removing duplicates.

    Defined recursively in the paper as::

        ⊎(seq1) = seq1
        ⊎(seq1, ..., seq_{i+1}) = ⊎(seq1, ..., seq_i)
                                  ⊕ (seq_{i+1} ⊖ ⊎(seq1, ..., seq_i))

    which is exactly "first occurrence wins", i.e. the constructor's
    dedup over the plain concatenation.
    """
    items = []
    for sequence in sequences:
        seq = as_sequence(sequence)
        items.extend(seq.items)
    return MessageSequence(items)
