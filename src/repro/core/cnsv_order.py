"""The conservative ordering procedure ``Cnsv-order`` (Fig. 7, Sections 5.4-5.5).

``Cnsv-order`` is solved by reduction to consensus with Maj-validity: each
process proposes the pair ``(O_delivered, O_notdelivered)``; the decision
``Dk`` is a vector of such pairs covering a majority of processes.  The
post-processing of the decision -- computing which optimistic deliveries
were *Bad* (must be undone) and which messages are *New* (must be
A-delivered) -- is a pure function of the local ``O_delivered`` and the
decision vector, implemented here exactly as Figure 7 and unit/property
tested against the specification of Section 5.4:

* Termination, Agreement, Unicity, Non-triviality, Validity,
* Undo legality (Bad is a suffix of O_delivered),
* Undo consistency (a message undone locally was Opt-delivered by at most
  a minority),
* Undo thriftiness (never undo messages just to re-deliver them in the
  same order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Tuple

from repro.core.sequences import (
    EMPTY,
    MessageSequence,
    as_sequence,
    common_prefix,
    merge_dedup,
)

#: One process's consensus proposal: (O_delivered, O_notdelivered), both
#: tuples of request ids in local order.
CnsvProposal = Tuple[Tuple[str, ...], Tuple[str, ...]]

#: The consensus decision: ((pid, proposal), ...) sorted by pid, covering a
#: majority of the group (Maj-validity).
CnsvDecision = Tuple[Tuple[str, CnsvProposal], ...]


@dataclass(frozen=True)
class CnsvOrderResult:
    """The output ``{Bad; New}`` of Cnsv-order, plus diagnostics.

    ``bad``  -- messages this process Opt-delivered in the wrong order;
    they must be Opt-undelivered in reverse delivery order.
    ``new``  -- messages to A-deliver, in delivery order.
    ``good`` -- messages Opt-delivered in the right order (kept).
    ``dlv_max`` -- the longest agreed optimistic prefix in the decision.
    """

    bad: MessageSequence
    new: MessageSequence
    good: MessageSequence
    dlv_max: MessageSequence

    @property
    def final_sequence(self) -> MessageSequence:
        """(O_delivered ⊖ Bad) ⊕ New -- the epoch's agreed delivery sequence."""
        return self.good.concat(self.new)


def compute_bad_new(
    o_delivered: MessageSequence,
    decision: CnsvDecision,
) -> CnsvOrderResult:
    """Figure 7, lines 5-19: post-process the consensus decision.

    Parameters
    ----------
    o_delivered:
        This process's ``O_delivered`` -- the messages it optimistically
        delivered during the current epoch, in delivery order.
    decision:
        The Maj-validity consensus decision ``Dk``: pairs
        ``(dlv_i, notdlv_i)`` from a majority of processes.
    """
    if not decision:
        raise ValueError("empty consensus decision")

    delivered_seqs = [as_sequence(dlv) for _pid, (dlv, _notdlv) in decision]
    notdelivered_seqs = [as_sequence(notdlv) for _pid, (_dlv, notdlv) in decision]

    # Line 5: dlvmax <- the longest dlv_i in Dk.  (By Lemma 2 the dlv_i are
    # prefix-related, so "longest" is unambiguous up to equality.)
    dlv_max = max(delivered_seqs, key=len)

    # Lines 6-11: split O_delivered into Good (correctly ordered prefix)
    # and Bad (wrongly ordered suffix), and start New with the part of
    # dlvmax not yet delivered locally.
    if o_delivered == common_prefix(o_delivered, dlv_max):
        # O_delivered is a prefix of dlvmax: nothing to undo.
        new = dlv_max.subtract(o_delivered)
        good = o_delivered
        bad = EMPTY
    else:
        good = common_prefix(o_delivered, dlv_max)
        bad = o_delivered.subtract(good)
        new = EMPTY

    # Lines 12-14: deterministically merge the not-yet-delivered sequences
    # from the decision, drop anything already ordered by dlvmax, and
    # append to New.
    notdlv = merge_dedup(*notdelivered_seqs) if notdelivered_seqs else EMPTY
    notdlv = notdlv.subtract(dlv_max)
    new = new.concat(notdlv)

    # Lines 15-19 (undo thriftiness): if Bad and New share a prefix, those
    # messages would be undone only to be re-delivered at the same
    # positions; keep them delivered instead.
    shared = common_prefix(bad, new)
    if shared:
        good = good.concat(shared)
        bad = bad.subtract(shared)
        new = new.subtract(shared)

    return CnsvOrderResult(bad=bad, new=new, good=good, dlv_max=dlv_max)


def decision_from_vector(
    vector: Sequence[Tuple[str, Any]],
) -> CnsvDecision:
    """Normalize a raw consensus decision vector into a CnsvDecision.

    The consensus layer decides tuples of ``(pid, initial_value)`` pairs;
    for Cnsv-order the initial values are ``(dlv, notdlv)`` pairs of rid
    tuples.  This helper validates the shape (fail loudly on protocol
    bugs) and fixes the ordering by pid so every process post-processes an
    identical structure.
    """
    normalized = []
    for pid, value in vector:
        if (
            not isinstance(value, tuple)
            or len(value) != 2
            or not all(isinstance(part, tuple) for part in value)
        ):
            raise TypeError(f"malformed Cnsv-order proposal from {pid}: {value!r}")
        normalized.append((pid, (tuple(value[0]), tuple(value[1]))))
    normalized.sort(key=lambda pair: pair[0])
    return tuple(normalized)
