"""The OAR server (Fig. 6): optimistic phase, conservative phase, epochs.

Each server process runs the five tasks of the paper, in mutual exclusion
(the hosting substrate delivers one event at a time):

* **Task 0**  -- buffer incoming client requests (R-delivered).
* **Task 1a** -- the sequencer orders not-yet-ordered messages and sends
  the sequence to the group (phase 1).
* **Task 1b** -- on receiving the sequencer's ordering message, the server
  Opt-delivers each request: applies it to the state machine (recording an
  undo entry), and replies to the client with weight ``{s}`` (if it *is*
  the sequencer) or ``{p, s}`` (otherwise).
* **Task 1c** -- on suspecting the sequencer, R-broadcast ``(k, PhaseII)``.
* **Task 2**  -- on R-delivering ``(k, PhaseII)``, run Cnsv-order (reduction
  to Maj-validity consensus), Opt-undeliver the ``Bad`` suffix in reverse
  order, A-deliver ``New`` with weight Π, settle the epoch, rotate the
  sequencer, and move to epoch k+1.

Two engineering details the pseudo-code leaves implicit are handled
explicitly here and stress-tested:

* An ordering message can arrive *before* the request it orders has been
  R-delivered locally (the ordering message travels one hop from the
  sequencer; the request may need a relay).  Ordered-but-unknown requests
  wait in ``_opt_pending`` and are drained as requests arrive -- in order.
* The ``New`` sequence of Cnsv-order can likewise contain requests not yet
  R-delivered locally.  Phase 2 completes only once all of them are known
  (R-multicast agreement guarantees they arrive).

The Remark of Section 5.3 (unbounded ``O_delivered`` when phase 2 is
rare) is implemented as the two garbage-collection knobs
``gc_after_requests`` / ``gc_interval``, which make the sequencer
R-broadcast a periodic PhaseII.  Benchmarks quantify the trade-off
(`benchmarks/test_ablation_gc.py`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.consensus.chandra_toueg import ConsensusManager
from repro.core.admission import traffic_class
from repro.core.execution import ExecutionEngine
from repro.core.cnsv_order import (
    CnsvOrderResult,
    compute_bad_new,
    decision_from_vector,
)
from repro.core.messages import (
    BodyBatch,
    OrderNack,
    PhaseII,
    ReadReply,
    ReadRequest,
    Reply,
    Request,
    SeqOrder,
    ShedNotice,
)
from repro.core.sequences import EMPTY, MessageSequence
from repro.broadcast.reliable import ReliableMulticast
from repro.failure.detector import (
    FailureDetector,
    HeartbeatFailureDetector,
    resolve_fd,
)
from repro.sim.component import ComponentProcess
from repro.statemachine.base import OpResult, StateMachine
from repro.statemachine.undo import UndoLog

#: Client-side read execution strategies (see ``OARConfig.read_mode``).
READ_MODES = ("sequencer", "optimistic", "conservative")


@dataclass
class OARConfig:
    """Tunable knobs of the OAR server.

    batch_interval:
        How often Task 1a runs at the sequencer.  ``0.0`` means "order
        immediately upon R-delivery" (lowest latency); a positive value
        batches requests, trading latency for fewer ordering messages.
    order_cost:
        Per-request service time at the sequencer (Task 1a).  ``0.0``
        (the default) keeps the paper's idealized instant sequencer; a
        positive value models the real bottleneck -- one ordering
        pipeline that processes requests serially at rate
        ``1/order_cost`` -- which is what caps a single group's
        throughput and what sharding (``repro.sharding``) multiplies.
    rotate_sequencer:
        Use the rotating-coordinator scheme of Section 5.3 (new sequencer
        after each phase 2).  Disabling it reproduces the "crashed
        sequencer continuously slows down the system" pathology.
    gc_after_requests / gc_interval:
        The periodic PhaseII garbage collection of the Remark in
        Section 5.3: trigger phase 2 every N optimistic deliveries or
        every T time units.  ``None`` disables (the paper's base
        algorithm).
    consensus_collect:
        Estimate-collection discipline of the Cnsv-order consensus:
        ``"majority"`` (strict [CT96]) or ``"unsuspected"`` (the paper's
        footnote 5 -- required to reproduce the Opt-undelivery of
        Figure 4 with four servers).
    read_mode:
        How clients execute read-only operations (the deployment-level
        default; scenario configs can override it per run):
        ``"sequencer"`` (the paper's base protocol: reads are ordered
        like writes), ``"optimistic"`` (one replica, chosen round-robin,
        answers from its current state -- scales with replica count, may
        observe state that is later undone), or ``"conservative"``
        (every replica answers; the client adopts a value once a
        majority of replicas agree on it -- safe by the undo-consistency
        argument, but every replica serves every read).
    read_cost:
        Per-read service time at a replica for the replica-local read
        path (``read_mode != "sequencer"``).  ``0.0`` answers instantly;
        a positive value models a replica serving reads serially at rate
        ``1/read_cost``, which is what makes read goodput scale with
        replica count measurable (benchmark B12).
    exec_cost / exec_lanes:
        The replica execution service model
        (:class:`~repro.core.execution.ExecutionEngine`).  ``exec_cost``
        is the service time one state-machine operation occupies a
        worker lane for (``0.0``, the default, executes inline at
        delivery -- the paper's free-execution idealization and the
        golden-digest fast path); ``exec_lanes`` is how many operations
        with disjoint ``keys_of`` footprints may be in service
        concurrently.  Conflicting operations are dependency-chained in
        delivered order, so results and state are byte-identical to
        serial execution; aggregate execution capacity is
        ``exec_lanes/exec_cost`` for conflict-free workloads and
        ``1/exec_cost`` for a single hot key (benchmark B13).
    """

    batch_interval: float = 0.0
    order_cost: float = 0.0
    rotate_sequencer: bool = True
    gc_after_requests: Optional[int] = None
    gc_interval: Optional[float] = None
    consensus_collect: str = "majority"
    read_mode: str = "sequencer"
    read_cost: float = 0.0
    exec_cost: float = 0.0
    exec_lanes: int = 1

    #: Admission control (``None`` disables each bound -- the default,
    #: which keeps the admission plane entirely off the hot path).
    #: ``admission_limit`` bounds the *sequencer's* unordered backlog
    #: (``|R_delivered| - |A_delivered| - |O_delivered|``): a write that
    #: R-delivers at the sequencer while the backlog is at the bound is
    #: *shed* -- answered with a deterministic
    #: :class:`~repro.core.messages.ShedNotice` instead of being
    #: ordered.  Control-plane operations (migration/split/2PC steps,
    #: see ``repro.core.admission.traffic_class``) are bulkheaded: never
    #: shed, whatever the backlog.  ``read_queue_limit`` bounds the
    #: replica-local read queue the same way (only meaningful with a
    #: positive ``read_cost``; the zero-cost path has no queue to
    #: bound).  Shed decisions are deterministic functions of replica
    #: state, so seeded runs shed identically.
    admission_limit: Optional[int] = None
    read_queue_limit: Optional[int] = None

    #: Anti-entropy period for lossy links (``None`` disables -- the
    #: paper's reliable-channel model needs none).  Every
    #: ``sync_interval`` time units the sequencer re-sends its epoch's
    #: cumulative order (repairing lost ordering messages, which travel
    #: point-to-point and are otherwise sent exactly once), and every
    #: server NACKs rids it holds order slots for without a request
    #: body; peers answer with the bodies.  Both paths are idempotent,
    #: so the knob is safe to leave on under benign links -- it simply
    #: never fires a useful repair.
    sync_interval: Optional[float] = None

    #: Verify the server's internal invariants after every task (state
    #: disjointness, undo-log alignment, request-body coverage).  Cheap
    #: enough for tests and debugging; off by default for big sweeps.
    paranoid: bool = False

    #: Smallest allowed positive batch/GC interval: a near-zero periodic
    #: timer would starve the event loop without ordering any faster
    #: than ``batch_interval = 0`` (order on every R-delivery).
    MIN_INTERVAL = 0.001

    def with_exec_overrides(
        self, exec_cost: Optional[float], exec_lanes: Optional[int]
    ) -> "OARConfig":
        """A copy with the scenario-level execution overrides applied.

        ``None`` keeps this config's value; used by both harnesses so
        the override logic lives in exactly one place.
        """
        overrides: Dict[str, Any] = {}
        if exec_cost is not None:
            overrides["exec_cost"] = exec_cost
        if exec_lanes is not None:
            overrides["exec_lanes"] = exec_lanes
        return replace(self, **overrides) if overrides else self

    def with_admission_overrides(
        self, admission_limit: Optional[int], read_queue_limit: Optional[int]
    ) -> "OARConfig":
        """A copy with the scenario-level admission overrides applied.

        ``None`` keeps this config's value (normally: disabled).  Both
        harnesses route their admission knobs through here, and the
        no-override case returns ``self`` unchanged -- the digest-
        identity guarantee for runs that never enable the plane.
        """
        overrides: Dict[str, Any] = {}
        if admission_limit is not None:
            overrides["admission_limit"] = admission_limit
        if read_queue_limit is not None:
            overrides["read_queue_limit"] = read_queue_limit
        return replace(self, **overrides) if overrides else self

    def __post_init__(self) -> None:
        if self.batch_interval < 0:
            raise ValueError("batch_interval must be >= 0")
        if self.order_cost < 0:
            raise ValueError("order_cost must be >= 0")
        if 0 < self.batch_interval < self.MIN_INTERVAL:
            raise ValueError(
                f"batch_interval {self.batch_interval} is below the "
                f"{self.MIN_INTERVAL} floor; use 0 for order-on-arrival"
            )
        if self.gc_interval is not None and self.gc_interval < self.MIN_INTERVAL:
            raise ValueError("gc_interval must be >= MIN_INTERVAL")
        if self.gc_after_requests is not None and self.gc_after_requests < 1:
            raise ValueError("gc_after_requests must be >= 1")
        if self.read_mode not in READ_MODES:
            raise ValueError(
                f"read_mode {self.read_mode!r} not in {READ_MODES}"
            )
        if self.read_cost < 0:
            raise ValueError("read_cost must be >= 0")
        if self.exec_cost < 0:
            raise ValueError("exec_cost must be >= 0")
        if not isinstance(self.exec_lanes, int) or self.exec_lanes < 1:
            raise ValueError("exec_lanes must be an integer >= 1")
        if self.sync_interval is not None and self.sync_interval < self.MIN_INTERVAL:
            raise ValueError("sync_interval must be >= MIN_INTERVAL")
        if self.admission_limit is not None and self.admission_limit < 1:
            raise ValueError("admission_limit must be >= 1 (or None to disable)")
        if self.read_queue_limit is not None and self.read_queue_limit < 1:
            raise ValueError("read_queue_limit must be >= 1 (or None to disable)")


class OARServer(ComponentProcess):
    """A server process p of the replicated service Π (Fig. 6).

    Parameters
    ----------
    pid:
        This server's identifier; must be a member of ``group``.
    group:
        Π, the ordered list of all server identifiers.  The epoch-k
        sequencer is ``group[k mod n]`` when rotation is enabled.
    machine:
        The deterministic state machine to replicate.
    fd:
        The ◇S failure-detector instance (heartbeat or scripted); used by
        Task 1c and by the consensus oracle.
    config:
        Protocol knobs; see :class:`OARConfig`.
    """

    def __init__(
        self,
        pid: str,
        group: Sequence[str],
        machine: StateMachine,
        fd: FailureDetector,
        config: Optional[OARConfig] = None,
    ) -> None:
        super().__init__(pid)
        if pid not in group:
            raise ValueError(f"{pid} not in server group {group}")
        self.group: Tuple[str, ...] = tuple(group)
        #: Fan-out targets (everyone but us), precomputed once: the
        #: ordering path sends to the same peers for every batch.
        self.peers: Tuple[str, ...] = tuple(m for m in self.group if m != pid)
        self.machine = machine
        self.fd = resolve_fd(fd, self)
        fd = self.fd
        self.config = config or OARConfig()

        # Fig. 6, lines 1-5.
        self.r_delivered: MessageSequence = EMPTY
        self.a_delivered: MessageSequence = EMPTY
        self.o_delivered: MessageSequence = EMPTY
        self.epoch = 0

        self.phase = 1
        self.sequencer_index = 0
        self.requests: Dict[str, Request] = {}
        self.undo_log = UndoLog()

        # The replica execution service model (OARConfig.exec_cost /
        # exec_lanes): every apply -- optimistic, conservative redo, and
        # read fencing -- goes through the engine.  exec_cost = 0 is the
        # inline fast path (executes synchronously at delivery, exactly
        # the pre-engine behaviour and trace shape).
        self.engine = ExecutionEngine(
            machine,
            lanes=self.config.exec_lanes,
            cost=self.config.exec_cost,
            timer=self._exec_timer,
            undo_log=self.undo_log,
        )

        # Ordered by the sequencer but not yet executable (request body
        # not R-delivered yet); drained in order by Task 0.  A deque:
        # this used to be a list drained with pop(0), which made a long
        # ordered-but-unknown backlog O(n^2) to drain (perf regression
        # guard -- keep popleft here).
        self._opt_pending: Deque[str] = deque()

        # Buffers for messages belonging to future epochs.
        self._future_orders: Dict[int, List[SeqOrder]] = {}
        self._future_phase2: Dict[int, str] = {}

        # Epoch-slot bookkeeping (loss/equivocation hardening).  The
        # sequencer numbers every rid it orders within an epoch
        # consecutively (`SeqOrder.start`); replicas accept orders only
        # contiguously (`_epoch_accepted` counts accepted slots,
        # out-of-order arrivals wait in `_order_gaps`) so a lost order
        # message can never silently shift the optimistic order.
        # `_epoch_order` is the sequencer's cumulative emission (re-sent
        # by the anti-entropy tick); `_order_slots` maps each accepted
        # rid to its sequencer-assigned slot -- the order certificate
        # optimistic replies carry for client-side equivocation
        # cross-checking.  All reset at every epoch settle.
        self._epoch_order: List[str] = []
        self._epoch_accepted = 0
        self._order_gaps: Dict[int, SeqOrder] = {}
        self._order_slots: Dict[str, int] = {}

        # Epochs for which this process already R-broadcast PhaseII.
        self._phase2_requested: Set[int] = set()

        # Pending Cnsv-order result waiting for missing New requests.
        self._pending_result: Optional[CnsvOrderResult] = None

        # Sequencer service model (OARConfig.order_cost): the epoch whose
        # batch is currently being serviced, and the frozen batch itself.
        self._order_busy_epoch: Optional[int] = None
        self._order_batch: MessageSequence = EMPTY

        self._opt_delivery_count_this_epoch = 0

        # Replica-local read path: reads waiting for this replica's read
        # service slot (OARConfig.read_cost models a serial read
        # pipeline per replica; 0 answers on arrival).
        self._read_queue: Deque[ReadRequest] = deque()
        self._read_busy = False
        self.reads_served = 0

        # Admission control (OARConfig.admission_limit /
        # read_queue_limit): shed counters by bulkhead class, plus the
        # notice cache that makes shedding idempotent under client
        # retransmission (mirroring the reply cache).
        self.shed = 0
        self.reads_shed = 0
        self._shed_cache: Dict[str, ShedNotice] = {}

        # At-most-once execution with at-least-once replies: the last
        # reply sent per request, re-sent when a client retransmission
        # R-delivers an already-known rid.  Entries are replaced when a
        # message is re-delivered after an Opt-undeliver.
        self._reply_cache: Dict[str, Reply] = {}

        self.rmc = self.add_component(ReliableMulticast(self, self._on_rdeliver))
        self.consensus = self.add_component(
            ConsensusManager(
                self, self.group, fd, collect=self.config.consensus_collect
            )
        )
        if isinstance(fd, HeartbeatFailureDetector):
            self.add_component(fd)
        fd.add_listener(self._on_suspicion)

    # ------------------------------------------------------------------
    # Introspection (used by tests, checkers and benchmarks)
    # ------------------------------------------------------------------

    @property
    def current_sequencer(self) -> str:
        """The sequencer s of the current epoch."""
        return self.group[self.sequencer_index]

    @property
    def is_sequencer(self) -> bool:
        """True when this process is the current epoch's sequencer s."""
        return self.current_sequencer == self.pid

    @property
    def settled_order(self) -> MessageSequence:
        """A_delivered: the conservatively settled global order."""
        return self.a_delivered

    @property
    def current_order(self) -> MessageSequence:
        """A_delivered ⊕ O_delivered: this server's full delivery order."""
        return self.a_delivered.concat(self.o_delivered)

    @property
    def majority(self) -> int:
        """⌈(|Π|+1)/2⌉ -- the quorum every guarantee is anchored in."""
        return len(self.group) // 2 + 1

    @property
    def exec_backlog(self) -> int:
        """Delivered-but-not-executed operations (0 on the inline path).

        Quiescence predicates use this: a run is not done while any live
        replica still has state mutations in its execution lanes.
        """
        return self.engine.backlog

    def _exec_timer(self, delay: float, callback: Any) -> Any:
        """Lane-service timer; env-bound lazily (env binds at start)."""
        return self.env.set_timer(delay, callback)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        """Start components, batch/GC timers, and trace epoch 0."""
        super().on_start()
        if self.config.batch_interval > 0:
            self._schedule_batch_tick()
        if self.config.gc_interval is not None:
            self._schedule_gc_tick()
        if self.config.sync_interval is not None:
            self._schedule_sync_tick()
        self.env.trace("epoch_start", epoch=0, sequencer=self.current_sequencer)

    def _schedule_batch_tick(self) -> None:
        def tick() -> None:
            self._maybe_order()
            self._schedule_batch_tick()

        self.env.set_timer(self.config.batch_interval, tick)

    def _schedule_gc_tick(self) -> None:
        def tick() -> None:
            if self.is_sequencer and self.phase == 1 and self.o_delivered:
                self._request_phase2("gc")
            self._schedule_gc_tick()

        self.env.set_timer(self.config.gc_interval, tick)

    def _schedule_sync_tick(self) -> None:
        def tick() -> None:
            self._sync_tick()
            self._schedule_sync_tick()

        self.env.set_timer(self.config.sync_interval, tick)

    def _sync_tick(self) -> None:
        """Anti-entropy against lossy links (OARConfig.sync_interval).

        Two repairs, both idempotent at the receiver:

        * The sequencer re-sends its epoch's *cumulative* order
          (``start=0``): ordering messages travel point-to-point and
          are otherwise sent exactly once, so one drop would desync a
          replica's optimistic order for the rest of the epoch.
        * Any server holding order slots without the request bodies
          NACKs the missing rids to its peers, who answer with a
          :class:`BodyBatch` -- covering the tail case where every
          R-multicast relay copy of a request was lost on the links to
          one replica.
        """
        if self.phase == 1 and self.is_sequencer and self._epoch_order:
            order = SeqOrder(self.epoch, tuple(self._epoch_order), 0)
            self.env.trace(
                "seq_sync", epoch=self.epoch, count=len(self._epoch_order)
            )
            send = self.env.send
            for member in self.peers:
                send(member, order)
        missing = [rid for rid in self._opt_pending if rid not in self.requests]
        result = self._pending_result
        if result is not None:
            missing.extend(
                rid for rid in result.new if rid not in self.requests
            )
        if missing:
            nack = OrderNack(self.epoch, tuple(dict.fromkeys(missing)))
            self.env.trace("order_nack", epoch=self.epoch, rids=nack.rids)
            send = self.env.send
            for member in self.peers:
                send(member, nack)

    # ------------------------------------------------------------------
    # Task 0: buffer incoming client messages (and PhaseII notifications)
    # ------------------------------------------------------------------

    def _on_rdeliver(self, origin: str, payload: Any) -> None:
        if isinstance(payload, Request):
            self._task0_request(payload)
        elif isinstance(payload, PhaseII):
            self._task2_phase2(payload)
        else:
            raise TypeError(f"unexpected R-delivered payload: {payload!r}")

    def _task0_request(self, request: Request) -> None:
        if request.rid in self.requests:
            # A client retransmission (R-multicast integrity rules out
            # duplicates of the *same* multicast): never re-execute, but
            # re-send the cached reply so the client can still adopt.
            cached = self._reply_cache.get(request.rid)
            if cached is not None:
                self.env.send(request.client, cached)
            else:
                notice = self._shed_cache.get(request.rid)
                if notice is not None:
                    self.env.send(request.client, notice)
            return
        if self._should_shed(request):
            self._shed_request(request)
            return
        self.requests[request.rid] = request
        self.r_delivered = self.r_delivered.append(request.rid)
        self.env.trace("r_deliver", rid=request.rid)
        self._drain_opt_pending()
        if self._pending_result is not None:
            self._try_finish_phase2()
        if self.config.batch_interval == 0:
            self._maybe_order()

    # ------------------------------------------------------------------
    # Admission control (OARConfig.admission_limit / read_queue_limit)
    # ------------------------------------------------------------------

    @property
    def admission_backlog(self) -> int:
        """Unordered requests queued ahead of the sequencer, O(1).

        ``|R_delivered| - |A_delivered| - |O_delivered|`` -- exact in
        the fault-free regime (every delivered rid was R-delivered
        first); clamped at zero because post-failover deliveries of
        rids this replica shed (body known, never R-delivered here) can
        make the difference go negative.
        """
        backlog = (
            len(self.r_delivered) - len(self.a_delivered) - len(self.o_delivered)
        )
        return max(0, backlog)

    def _should_shed(self, request: Request) -> bool:
        """The shed decision: a pure function of config + replica state.

        Only the current sequencer in phase 1 sheds: non-sequencers
        merely buffer bodies (cheap, and their copy is what lets a shed
        rid still be ordered by a successor sequencer -- see
        ``_shed_request``), and phase 2 defers the decision to the new
        epoch's sequencer, which sheds on arrival once its inherited
        backlog exceeds the bound.  Control-plane operations are
        bulkheaded past the check entirely.
        """
        limit = self.config.admission_limit
        if limit is None or not self.is_sequencer or self.phase != 1:
            return False
        if traffic_class(request.op) == "control":
            return False
        return self.admission_backlog >= limit

    def _shed_request(self, request: Request) -> None:
        """Refuse a write deterministically: notice now, never ordered.

        The body is still recorded in ``self.requests``: (a) it makes
        the rid hit the at-most-once dedup branch, so retransmissions
        re-send the cached notice instead of re-deciding; (b) if a
        *successor* sequencer (which never shed this rid -- shedding is
        sequencer-local) orders it after a failover, this replica can
        opt-deliver it from the stored body instead of wedging in
        ``_opt_pending``.  The client surfaces whichever answer arrives
        first and counts the other as late.
        """
        queue = self.admission_backlog
        limit = self.config.admission_limit
        assert limit is not None
        self.requests[request.rid] = request
        self.shed += 1
        notice = ShedNotice(rid=request.rid, cls="write", queue=queue, limit=limit)
        self._shed_cache[request.rid] = notice
        self.env.trace("shed", rid=request.rid, cls="write", queue=queue, limit=limit)
        self.env.send(request.client, notice)

    # ------------------------------------------------------------------
    # Task 1a: the sequencer orders messages
    # ------------------------------------------------------------------

    def _unordered(self) -> MessageSequence:
        """(R_delivered ⊖ A_delivered) ⊖ O_delivered (Fig. 6, line 9)."""
        return self.r_delivered.subtract(self.a_delivered).subtract(self.o_delivered)

    def _maybe_order(self) -> None:
        if self.phase != 1 or not self.is_sequencer:
            return
        # Exclude messages already ordered (sent in an earlier msgSet of
        # this epoch) but still waiting for their request body locally.
        not_delivered = self._unordered().subtract(self._opt_pending)
        if not not_delivered:
            return
        if self.config.order_cost > 0:
            if self._order_busy_epoch is not None:
                return  # a batch is in service; arrivals wait their turn
            # Freeze the batch now and charge for exactly what will be
            # emitted, so the ordering pipeline saturates at 1/order_cost
            # requests per time unit regardless of arrival rate.
            self._order_busy_epoch = self.epoch
            self._order_batch = not_delivered
            delay = self.config.order_cost * len(not_delivered)
            self.env.set_timer(delay, self._emit_costed_order)
            return
        self._send_order(not_delivered)

    def _emit_costed_order(self) -> None:
        epoch = self._order_busy_epoch
        self._order_busy_epoch = None
        batch, self._order_batch = self._order_batch, EMPTY
        if self.phase == 1 and self.is_sequencer and self.epoch == epoch:
            # A conservative phase may have settled part of the batch in
            # the meantime; only the still-unordered remainder is sent.
            remainder = (
                batch.subtract(self.a_delivered)
                .subtract(self.o_delivered)
                .subtract(self._opt_pending)
            )
            if remainder:
                self._send_order(remainder)
        # Service the backlog that accumulated during this batch (or, if
        # the epoch moved on, let the normal triggers take over).
        self._maybe_order()

    def _send_order(self, not_delivered: MessageSequence) -> None:
        order = SeqOrder(self.epoch, not_delivered.items, len(self._epoch_order))
        self._epoch_order.extend(not_delivered.items)
        self.env.trace("seq_order", epoch=self.epoch, rids=order.rids)
        send = self.env.send
        for member in self.peers:
            send(member, order)
        # The paper assumes the sequencer delivers its own ordering
        # message immediately (Section 5.3).
        self._task1b_order(self.pid, order)

    # ------------------------------------------------------------------
    # Task 1b: optimistic delivery
    # ------------------------------------------------------------------

    def on_app_message(self, src: str, payload: Any) -> None:
        """Handle the sequencer's ordering messages (Task 1b) and reads."""
        if isinstance(payload, SeqOrder):
            self._task1b_order(src, payload)
        elif isinstance(payload, ReadRequest):
            self._on_read_request(payload)
        elif isinstance(payload, OrderNack):
            self._on_order_nack(src, payload)
        elif isinstance(payload, BodyBatch):
            self._on_body_batch(payload)

    def _on_order_nack(self, src: str, nack: OrderNack) -> None:
        """Anti-entropy: answer a peer's missing-body NACK."""
        known = tuple(
            self.requests[rid] for rid in nack.rids if rid in self.requests
        )
        if known:
            self.env.send(src, BodyBatch(known))

    def _on_body_batch(self, batch: BodyBatch) -> None:
        """Feed repaired request bodies through the ordinary Task 0 path.

        ``_task0_request`` is rid-idempotent (known bodies only re-send
        the cached reply), so duplicated or crossed batches are safe.
        """
        for request in batch.requests:
            self._task0_request(request)

    # ------------------------------------------------------------------
    # Replica-local reads (never ordered; see OARConfig.read_mode)
    # ------------------------------------------------------------------

    def _on_read_request(self, read: ReadRequest) -> None:
        if self.config.read_cost <= 0:
            self._serve_read(read)
            return
        limit = self.config.read_queue_limit
        if limit is not None and len(self._read_queue) >= limit:
            # The read bulkhead: a read storm fills its *own* bounded
            # queue and sheds there, never the write/admission queue.
            self.reads_shed += 1
            self.env.trace(
                "shed", rid=read.rid, cls="read",
                queue=len(self._read_queue), limit=limit,
            )
            self.env.send(
                read.client,
                ShedNotice(
                    rid=read.rid, cls="read",
                    queue=len(self._read_queue), limit=limit,
                ),
            )
            return
        self._read_queue.append(read)
        if not self._read_busy:
            self._read_busy = True
            self.env.set_timer(self.config.read_cost, self._read_service_tick)

    def _read_service_tick(self) -> None:
        """One read leaves the serial read pipeline (rate 1/read_cost)."""
        if self._read_queue:
            self._serve_read(self._read_queue.popleft())
        if self._read_queue:
            self.env.set_timer(self.config.read_cost, self._read_service_tick)
        else:
            self._read_busy = False

    def _serve_read(self, read: ReadRequest) -> None:
        """Execute a read against this replica's current state and reply.

        The observed state is A_delivered ⊕ O_delivered -- the settled
        prefix plus this replica's optimistic suffix.  The reply carries
        both lengths so the client (and the read-consistency checker)
        can tell how much of the observation was still optimistic.  An
        operation the machine does not classify read-only gets a
        deterministic error (a buggy or malicious client must not make a
        replica diverge through the unordered path).

        With a positive ``exec_cost`` the read is fenced by the
        execution engine: it waits for in-flight conflicting *writes* on
        its keys (a delivered-but-unexecuted write must land before the
        read answers, or the reply's position tag would claim state the
        replica had not reached), but takes no lane and delays nothing.
        """
        if not self.machine.is_read_only(read.op):
            self._answer_read(
                read,
                OpResult(ok=False, error=f"read: {read.op!r} is not read-only"),
            )
            return
        self.engine.submit_read(
            read.op, lambda: self._answer_read(read, self.machine.apply(read.op))
        )

    def _answer_read(self, read: ReadRequest, result: Any) -> None:
        settled = len(self.a_delivered)
        position = settled + len(self.o_delivered)
        self.reads_served += 1
        reply = ReadReply(
            rid=read.rid,
            value=result,
            position=position,
            settled=settled,
            epoch=self.epoch,
            round=read.round,
        )
        self.env.trace(
            "read_exec",
            rid=read.rid,
            position=position,
            settled=settled,
            epoch=self.epoch,
            value=result,
        )
        self.env.send(read.client, reply)

    def _task1b_order(self, src: str, order: SeqOrder) -> None:
        if order.epoch < self.epoch:
            return  # stale: sent by the sequencer of a finished epoch
        if order.epoch > self.epoch or self.phase == 2:
            # From a sequencer ahead of us, or received while this epoch's
            # conservative phase is running: buffer for the epoch it names.
            if order.epoch > self.epoch:
                self._future_orders.setdefault(order.epoch, []).append(order)
            return
        if src != self.current_sequencer:
            return  # only the epoch's sequencer may order (defensive)
        self._accept_order(order)
        if self._order_gaps:
            self._drain_order_gaps()
        self._drain_opt_pending()

    def _accept_order(self, order: SeqOrder) -> None:
        """Accept an ordering message's slots, contiguously.

        The sequencer numbers its epoch's rids consecutively, so a
        replica knows exactly which slots it has accepted
        (``_epoch_accepted``).  An order starting beyond that count
        means an earlier ordering message is missing (lost or still in
        flight): it waits in ``_order_gaps`` rather than being adopted
        at a silently shifted position.  An order starting below it is
        a duplicate or an anti-entropy resend: the already-accepted
        prefix is skipped, only genuinely new slots are adopted.  Under
        benign FIFO links ``start == _epoch_accepted`` always, and this
        reduces exactly to the original accept loop.
        """
        accepted = self._epoch_accepted
        if order.start > accepted:
            existing = self._order_gaps.get(order.start)
            if existing is None or len(order.rids) > len(existing.rids):
                self._order_gaps[order.start] = order
            self.env.trace(
                "order_gap",
                epoch=order.epoch,
                start=order.start,
                accepted=accepted,
            )
            return
        skip = accepted - order.start
        if skip >= len(order.rids):
            return  # stale duplicate: every slot already accepted
        slot = accepted
        for rid in order.rids[skip:]:
            self._epoch_accepted += 1
            self._order_slots[rid] = slot
            slot += 1
            if (
                rid in self.a_delivered
                or rid in self.o_delivered
                or rid in self._opt_pending
            ):
                continue
            self._opt_pending.append(rid)

    def _drain_order_gaps(self) -> None:
        """Adopt buffered out-of-order SeqOrders once their gap closes."""
        progressed = True
        while progressed and self._order_gaps:
            progressed = False
            for start in sorted(self._order_gaps):
                if start <= self._epoch_accepted:
                    self._accept_order(self._order_gaps.pop(start))
                    progressed = True
                    break

    def _drain_opt_pending(self) -> None:
        """Opt-deliver ordered requests whose bodies have arrived, in order."""
        if self.phase != 1:
            return
        pending = self._opt_pending
        requests = self.requests
        while pending and pending[0] in requests:
            self._opt_deliver(pending.popleft())

    def _opt_deliver(self, rid: str) -> None:
        """Fig. 6, lines 12-19: deliver the request, execute, reply.

        Delivery (the ``O_delivered`` append, the pending undo entry,
        the position) happens here, at the delivery instant; *execution*
        is handed to the engine.  On the exec_cost=0 fast path the
        engine applies synchronously and ``_opt_executed`` runs before
        this method returns, reproducing the inline behaviour (and its
        trace events) exactly; with a positive exec_cost the op waits
        for a lane (and for conflicting predecessors) and the trace
        splits into ``opt_deliver`` (delivery instant, no value) plus
        ``exec_done`` (completion instant, with the result).
        """
        sequencer = self.current_sequencer
        if self.pid == sequencer:
            weight = frozenset({sequencer})
        else:
            weight = frozenset({self.pid, sequencer})
        request = self.requests[rid]
        self.o_delivered = self.o_delivered.append(rid)
        self._opt_delivery_count_this_epoch += 1
        position = len(self.a_delivered) + len(self.o_delivered)
        epoch = self.epoch
        if not self.engine.inline:
            self.env.trace("opt_deliver", rid=rid, epoch=epoch, position=position)
        self.engine.submit(
            rid,
            request.op,
            lambda result, lane: self._opt_executed(
                request, result, position, weight, epoch, lane
            ),
            undoable=True,
        )
        if (
            self.config.gc_after_requests is not None
            and self.is_sequencer
            and self._opt_delivery_count_this_epoch >= self.config.gc_after_requests
        ):
            self._request_phase2("gc")

    def _opt_executed(
        self,
        request: Request,
        result: Any,
        position: int,
        weight: frozenset,
        epoch: int,
        lane: int,
    ) -> None:
        """An optimistic delivery left its execution lane: reply."""
        rid = request.rid
        if self.engine.inline:
            self.env.trace(
                "opt_deliver",
                rid=rid,
                epoch=epoch,
                position=position,
                value=result,
            )
        else:
            self.env.trace(
                "exec_done",
                rid=rid,
                epoch=epoch,
                position=position,
                value=result,
                lane=lane,
                conservative=False,
            )
        reply = Reply(
            rid=rid,
            value=result,
            position=position,
            weight=weight,
            epoch=epoch,
            conservative=False,
            # The order certificate: the sequencer-assigned epoch slot
            # this replica learned for the rid (clients cross-check
            # certificates for equivocation).  None if the slots were
            # already reset by an epoch settle.
            slot=self._order_slots.get(rid),
        )
        self._reply_cache[rid] = reply
        self.env.send(request.client, reply)

    # ------------------------------------------------------------------
    # Task 1c: suspicion of the sequencer
    # ------------------------------------------------------------------

    def _on_suspicion(self, pid: str, suspected: bool) -> None:
        if suspected and self.phase == 1 and pid == self.current_sequencer:
            self._request_phase2("suspicion")

    def _request_phase2(self, reason: str) -> None:
        """Fig. 6, line 21: R-broadcast (k, PhaseII) to the group, once."""
        if self.epoch in self._phase2_requested:
            return
        self._phase2_requested.add(self.epoch)
        self.env.trace("phase2_request", epoch=self.epoch, reason=reason)
        self.rmc.multicast(PhaseII(self.epoch, reason), self.group)

    # ------------------------------------------------------------------
    # Task 2: conservative ordering
    # ------------------------------------------------------------------

    def _task2_phase2(self, notification: PhaseII) -> None:
        epoch = notification.epoch
        if epoch < self.epoch:
            return  # this epoch is already settled locally
        if epoch > self.epoch:
            self._future_phase2.setdefault(epoch, notification.reason)
            return
        if self.phase == 2:
            return  # already running this epoch's conservative phase
        self.phase = 2
        self.env.trace("phase2_start", epoch=epoch, reason=notification.reason)
        # Requests ordered by the sequencer whose bodies never arrived are
        # not delivered; they are covered by O_notdelivered (if received)
        # or by a later epoch.
        self._opt_pending.clear()
        o_notdelivered = self._unordered()
        proposal = (self.o_delivered.items, o_notdelivered.items)
        self.env.trace(
            "cnsv_propose",
            epoch=epoch,
            o_delivered=self.o_delivered.items,
            o_notdelivered=o_notdelivered.items,
        )
        self.consensus.propose(("cnsv", epoch), proposal, self._on_cnsv_decide)

    def _on_cnsv_decide(self, instance_id: Tuple[str, int], vector: Any) -> None:
        _tag, epoch = instance_id
        if epoch != self.epoch or self.phase != 2:
            raise RuntimeError(
                f"{self.pid}: decision for epoch {epoch} in epoch "
                f"{self.epoch}/phase {self.phase}"
            )
        decision = decision_from_vector(vector)
        result = compute_bad_new(self.o_delivered, decision)
        self.env.trace(
            "cnsv_order",
            epoch=epoch,
            o_delivered=self.o_delivered.items,
            decision=decision,
            bad=result.bad.items,
            new=result.new.items,
        )
        self._pending_result = result
        self._try_finish_phase2()

    def _try_finish_phase2(self) -> None:
        """Complete phase 2 once every request in New is known locally."""
        result = self._pending_result
        if result is None:
            return
        missing = [rid for rid in result.new if rid not in self.requests]
        if missing:
            self.env.trace("phase2_waiting", epoch=self.epoch, missing=tuple(missing))
            return
        self._pending_result = None
        self._finish_phase2(result)

    def _finish_phase2(self, result: CnsvOrderResult) -> None:
        epoch = self.epoch

        # Fig. 6, lines 25-26: Opt-undeliver Bad, in reverse delivery
        # order (footnote 2).  The engine fences each undo first: an op
        # still waiting for (or occupying) a lane is detached -- it never
        # touched the state, so its undo entry is a pending no-op --
        # while an executed op has, by chain order, no conflicting
        # successor mid-flight.  Executed inverses are *charged*: they
        # occupy an execution lane for exec_cost x the op's weight, just
        # like the forward execution did (inverses submitted in reverse
        # order chain correctly among themselves via the same conflict
        # footprints, and New redos below chain behind them).
        for rid in reversed(result.bad.items):
            self.engine.cancel(rid)
            undo = self.undo_log.pop_last(rid)
            # The cached reply reflects the undone execution; drop it
            # until the message is delivered again.
            self._reply_cache.pop(rid, None)
            self.env.trace("opt_undeliver", rid=rid, epoch=epoch)
            if undo is None:
                continue  # cancelled before execution: state untouched
            request = self.requests[rid]
            self.engine.submit_inverse(
                rid,
                request.op,
                undo,
                lambda lane, rid=rid: self.env.trace(
                    "undo_exec", rid=rid, epoch=epoch, lane=lane
                ),
            )

        # Fig. 6, lines 27-29: A-deliver New, reply with weight Π.
        # A-delivery (the position in the settled order) is decided
        # here; the execution is engine-scheduled like any other apply,
        # dependency-chained behind any still-in-flight survivors on
        # conflicting keys.
        survivors = self.o_delivered.subtract(result.bad)
        base_position = len(self.a_delivered) + len(survivors)
        for offset, rid in enumerate(result.new.items):
            request = self.requests.get(rid)
            position = base_position + offset + 1
            if not self.engine.inline:
                self.env.trace(
                    "a_deliver", rid=rid, epoch=epoch, position=position
                )
            self.engine.submit(
                rid,
                request.op,
                lambda op_result, lane, request=request, position=position: (
                    self._cons_executed(request, op_result, position, epoch, lane)
                ),
                undoable=False,
            )

        # Fig. 6, lines 30-32: settle the epoch.
        self.a_delivered = self.a_delivered.concat(survivors).concat(result.new)
        self.o_delivered = EMPTY
        self.undo_log.commit()
        self.epoch = epoch + 1
        self.phase = 1
        self._opt_delivery_count_this_epoch = 0
        # Epoch-slot bookkeeping restarts with the epoch: slots are
        # per-epoch, and the new sequencer numbers from zero.
        self._epoch_order.clear()
        self._epoch_accepted = 0
        self._order_gaps.clear()
        self._order_slots.clear()
        if self.config.rotate_sequencer:
            self.sequencer_index = (self.sequencer_index + 1) % len(self.group)
        self.env.trace(
            "epoch_start", epoch=self.epoch, sequencer=self.current_sequencer
        )

        # Replay anything buffered for the new epoch, then resume Task 1a.
        self._replay_buffers()
        if self.phase == 1:
            if (
                self.fd.is_suspected(self.current_sequencer)
                and self.epoch not in self._phase2_requested
            ):
                # Task 1c for the new epoch: the new sequencer is already
                # suspected.
                self._request_phase2("suspicion")
            self._maybe_order()

    def _cons_executed(
        self, request: Request, result: Any, position: int, epoch: int, lane: int
    ) -> None:
        """A conservative (A-delivered) op left its lane: reply weight Π."""
        rid = request.rid
        if self.engine.inline:
            self.env.trace(
                "a_deliver", rid=rid, epoch=epoch, position=position, value=result
            )
        else:
            self.env.trace(
                "exec_done",
                rid=rid,
                epoch=epoch,
                position=position,
                value=result,
                lane=lane,
                conservative=True,
            )
        reply = Reply(
            rid=rid,
            value=result,
            position=position,
            weight=frozenset(self.group),
            epoch=epoch,
            conservative=True,
        )
        self._reply_cache[rid] = reply
        self.env.send(request.client, reply)

    def _replay_buffers(self) -> None:
        orders = self._future_orders.pop(self.epoch, [])
        for order in orders:
            self._task1b_order(self.current_sequencer, order)
        reason = self._future_phase2.pop(self.epoch, None)
        if reason is not None:
            self._task2_phase2(PhaseII(self.epoch, reason))

    # ------------------------------------------------------------------
    # Paranoid self-checks (OARConfig.paranoid)
    # ------------------------------------------------------------------

    def on_message(self, src: str, payload: Any) -> None:
        """Deliver one message, then self-check when paranoid."""
        super().on_message(src, payload)
        if self.config.paranoid:
            self.check_invariants()

    def check_invariants(self) -> None:
        """Assert the structural invariants of the Fig. 6 state.

        Raises ``RuntimeError`` with a precise description if any is
        broken -- these are implementation invariants, one level below
        the paper's propositions (which the trace checkers cover).
        """
        a_set = self.a_delivered.to_set()
        o_set = self.o_delivered.to_set()
        if a_set & o_set:
            raise RuntimeError(
                f"{self.pid}: A_delivered and O_delivered overlap: "
                f"{sorted(a_set & o_set)}"
            )
        delivered = a_set | o_set
        r_set = self.r_delivered.to_set()
        # Settled/optimistic messages whose body we do not know are
        # impossible; messages can be delivered without being in
        # R_delivered only via Cnsv-order's New (and then the body was
        # required before A-delivery).
        missing_bodies = delivered - set(self.requests)
        if missing_bodies:
            raise RuntimeError(
                f"{self.pid}: delivered without request body: "
                f"{sorted(missing_bodies)}"
            )
        if self.phase == 1:
            # Undo log tracks exactly the current epoch's optimistic
            # deliveries, in order.
            if tuple(self.undo_log.tags) != self.o_delivered.items:
                raise RuntimeError(
                    f"{self.pid}: undo log {self.undo_log.tags} out of sync "
                    f"with O_delivered {self.o_delivered.items}"
                )
        # Everything R-delivered is either pending, optimistic or settled;
        # nothing is both pending and delivered.
        pending = set(self._opt_pending)
        if pending & delivered:
            raise RuntimeError(
                f"{self.pid}: pending ∩ delivered = {sorted(pending & delivered)}"
            )
        if self.phase not in (1, 2):
            raise RuntimeError(f"{self.pid}: bad phase {self.phase}")
