"""The OAR client (Fig. 5): weighted-quorum reply adoption.

The client R-multicasts its request to the server group Π and collects
replies.  Replies are grouped by the epoch ``k`` in which the servers
generated them; within one epoch the client accumulates the *union* of the
reply weights (the sets of endorsing servers).  Once that union reaches
the majority threshold ``⌈(|Π|+1)/2⌉`` the client **adopts** a reply with
the largest individual weight.

Why this is safe (Proposition 7): within an epoch all optimistic replies
for a request are identical (the sequencer's FIFO ordering gives
prefix-related optimistic sequences), and all conservative replies are
identical (Cnsv-order agreement).  A reply that could still be undone is
endorsed by at most a minority (undo consistency), so it can never
accumulate majority weight; conservative replies carry weight Π and win
the largest-weight selection immediately.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.broadcast.reliable import ReliableMulticast
from repro.core.messages import Reply, Request
from repro.sim.component import ComponentProcess


@dataclass(frozen=True)
class AdoptedReply:
    """The client's final outcome for one request."""

    rid: str
    value: Any
    position: int
    epoch: int
    weight: Tuple[str, ...]
    conservative: bool
    submit_time: float
    adopt_time: float

    @property
    def latency(self) -> float:
        """Client-perceived latency: adoption minus submission time."""
        return self.adopt_time - self.submit_time


class _PendingRequest:
    """Reply bookkeeping for one in-flight request."""

    __slots__ = ("op", "submit_time", "replies_by_epoch", "retries")

    def __init__(self, op: Tuple[Any, ...], submit_time: float) -> None:
        self.op = op
        self.submit_time = submit_time
        self.retries = 0
        # epoch -> {server pid -> Reply}; per server we keep the
        # heaviest reply seen for that epoch (a conservative reply
        # supersedes the server's earlier optimistic one).
        self.replies_by_epoch: Dict[int, Dict[str, Reply]] = {}


class OARClient(ComponentProcess):
    """A client process c issuing requests to the replicated service.

    Parameters
    ----------
    pid:
        Client identifier (must not collide with server pids).
    servers:
        Π, the server group the requests are R-multicast to.
    on_adopt:
        Optional callback ``(AdoptedReply) -> None`` fired on adoption;
        closed-loop workload drivers use it to submit the next request.
    """

    def __init__(
        self,
        pid: str,
        servers: Sequence[str],
        on_adopt: Optional[Callable[[AdoptedReply], None]] = None,
        retry_interval: Optional[float] = None,
    ) -> None:
        super().__init__(pid)
        self.servers: Tuple[str, ...] = tuple(servers)
        self.on_adopt = on_adopt
        #: When set, a request still unadopted after this much time is
        #: R-multicast again (same rid; the servers never re-execute --
        #: they re-send the cached reply).  Covers the lost-reply case:
        #: replies travel on plain channels and die with a crashing
        #: server, unlike requests, which the R-multicast relays protect.
        self.retry_interval = retry_interval
        self.retransmissions = 0
        self.rmc = self.add_component(ReliableMulticast(self, self._unexpected_rdeliver))
        self._counter = itertools.count()
        self._pending: Dict[str, _PendingRequest] = {}
        self.adopted: Dict[str, AdoptedReply] = {}
        self.late_replies = 0

    @property
    def majority_weight(self) -> int:
        """⌈(|Π|+1)/2⌉ (Fig. 5, line 3)."""
        return len(self.servers) // 2 + 1

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet adopted."""
        return len(self._pending)

    # ------------------------------------------------------------------

    def submit(self, op: Tuple[Any, ...]) -> str:
        """OAR-multicast(m, Π): R-multicast the request, start collecting.

        Returns the request id; the adopted reply appears in
        :attr:`adopted` (and via the ``on_adopt`` callback).
        """
        rid = f"{self.pid}-{next(self._counter)}"
        request = Request(rid=rid, client=self.pid, op=tuple(op))
        self._pending[rid] = _PendingRequest(request.op, self.env.now)
        self.env.trace("submit", rid=rid, op=request.op)
        self.rmc.multicast(request, self.servers)
        if self.retry_interval is not None:
            self.env.set_timer(
                self.retry_interval, lambda: self._maybe_retry(request)
            )
        return rid

    def _maybe_retry(self, request: Request) -> None:
        pending = self._pending.get(request.rid)
        if pending is None:
            return  # adopted in the meantime
        pending.retries += 1
        self.retransmissions += 1
        self.env.trace("retransmit", rid=request.rid, attempt=pending.retries)
        self.rmc.multicast(request, self.servers)
        self.env.set_timer(
            self.retry_interval, lambda: self._maybe_retry(request)
        )

    def on_app_message(self, src: str, payload: Any) -> None:
        """Handle server replies (everything else is component traffic)."""
        if isinstance(payload, Reply):
            self._on_reply(src, payload)

    # ------------------------------------------------------------------

    def _on_reply(self, src: str, reply: Reply) -> None:
        pending = self._pending.get(reply.rid)
        if pending is None:
            self.late_replies += 1
            return
        epoch_replies = pending.replies_by_epoch.setdefault(reply.epoch, {})
        previous = epoch_replies.get(src)
        if previous is None or len(reply.weight) > len(previous.weight):
            epoch_replies[src] = reply
        self._check_adoption(reply.rid, pending)

    def _check_adoption(self, rid: str, pending: _PendingRequest) -> None:
        """Fig. 5, lines 3-6: wait for majority weight, adopt heaviest."""
        for epoch, replies in pending.replies_by_epoch.items():
            union: set = set()
            for reply in replies.values():
                union |= reply.weight
            if len(union) < self.majority_weight:
                continue
            heaviest = max(replies.values(), key=lambda r: len(r.weight))
            self._adopt(rid, pending, heaviest)
            return

    def _adopt(self, rid: str, pending: _PendingRequest, reply: Reply) -> None:
        adopted = AdoptedReply(
            rid=rid,
            value=reply.value,
            position=reply.position,
            epoch=reply.epoch,
            weight=tuple(sorted(reply.weight)),
            conservative=reply.conservative,
            submit_time=pending.submit_time,
            adopt_time=self.env.now,
        )
        del self._pending[rid]
        self.adopted[rid] = adopted
        self.env.trace(
            "adopt",
            rid=rid,
            value=reply.value,
            position=reply.position,
            epoch=reply.epoch,
            weight=adopted.weight,
            conservative=reply.conservative,
            latency=adopted.latency,
        )
        if self.on_adopt is not None:
            self.on_adopt(adopted)

    @staticmethod
    def _unexpected_rdeliver(origin: str, payload: Any) -> None:
        raise RuntimeError(
            f"client R-delivered unexpected payload from {origin}: {payload!r}"
        )
