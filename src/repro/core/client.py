"""The OAR client (Fig. 5): weighted-quorum reply adoption.

The client R-multicasts its request to the server group Π and collects
replies.  Replies are grouped by the epoch ``k`` in which the servers
generated them; within one epoch the client accumulates the *union* of the
reply weights (the sets of endorsing servers).  Once that union reaches
the majority threshold ``⌈(|Π|+1)/2⌉`` the client **adopts** a reply with
the largest individual weight.

Why this is safe (Proposition 7): within an epoch all optimistic replies
for a request are identical (the sequencer's FIFO ordering gives
prefix-related optimistic sequences), and all conservative replies are
identical (Cnsv-order agreement).  A reply that could still be undone is
endorsed by at most a minority (undo consistency), so it can never
accumulate majority weight; conservative replies carry weight Π and win
the largest-weight selection immediately.

:class:`ShardedOARClient` extends the rule to a *partitioned* service
(``repro.sharding``): each request is routed by its keys to one of N
independent OAR groups, adoption runs per-group (each group has its own
majority threshold), and multi-key operations that straddle groups run a
client-coordinated two-phase commit whose branches are ordinary
totally-ordered requests on their shards.

With live rebalancing (``repro.sharding.rebalance``) a client's routing
table can go stale: a key it routes to shard s may have been migrated
away.  The shard then answers with a deterministic, totally-ordered
:class:`~repro.statemachine.base.WrongShard` error, and the client
**re-syncs its routing-table copy from the cluster's authoritative
epoched table and retries** the operation under a fresh request id (the
redirect loop also covers the in-flight window where a key is owned by
*no* shard -- retries are spaced by ``redirect_delay`` until the
migration lands).  The retried request is a brand-new totally-ordered
request, so per-shard at-most-once and total-order guarantees are
untouched; the original (error) adoption is simply never surfaced to the
workload driver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.broadcast.reliable import ReliableMulticast
from repro.core.admission import Overloaded
from repro.core.loadtrack import DecayingKeyLoad
from repro.core.messages import ReadReply, ReadRequest, Reply, Request, ShedNotice
from repro.core.server import READ_MODES
from repro.sim.component import ComponentProcess
from repro.statemachine.base import OpResult, WrongShard


@dataclass(frozen=True)
class AdoptedReply:
    """The client's final outcome for one request.

    For a cross-shard transaction (:class:`ShardedOARClient`) the adopted
    reply is synthesized from the branch adoptions: ``position`` and
    ``epoch`` are ``-1`` (there is no single-group position), ``weight``
    is empty, and ``conservative`` is True only when every branch was
    adopted conservatively.
    """

    rid: str
    value: Any
    position: int
    epoch: int
    weight: Tuple[str, ...]
    conservative: bool
    submit_time: float
    adopt_time: float

    @property
    def latency(self) -> float:
        """Client-perceived latency: adoption minus submission time."""
        return self.adopt_time - self.submit_time


class _PendingRequest:
    """Reply bookkeeping for one in-flight request."""

    __slots__ = (
        "op",
        "group",
        "submit_time",
        "replies_by_epoch",
        "weight_by_epoch",
        "retries",
    )

    def __init__(
        self, op: Tuple[Any, ...], group: Tuple[str, ...], submit_time: float
    ) -> None:
        self.op = op
        self.group = group
        self.submit_time = submit_time
        self.retries = 0
        # epoch -> {server pid -> Reply}; per server we keep the
        # heaviest reply seen for that epoch (a conservative reply
        # supersedes the server's earlier optimistic one).
        self.replies_by_epoch: Dict[int, Dict[str, Reply]] = {}
        # epoch -> running union of endorsement weights.  Maintained
        # incrementally on each reply so the majority check is O(|weight|)
        # per reply instead of re-unioning every kept reply (weights
        # within an epoch are nested, so the running union equals the
        # union over the kept-heaviest replies).
        self.weight_by_epoch: Dict[int, set] = {}

    @property
    def majority_weight(self) -> int:
        """⌈(|group|+1)/2⌉ for the group this request was sent to."""
        return len(self.group) // 2 + 1


class _PendingRead:
    """Reply bookkeeping for one in-flight replica-local read."""

    __slots__ = (
        "op",
        "group",
        "shard",
        "mode",
        "submit_time",
        "replies",
        "target_index",
        "retries",
        "round",
        "timer",
    )

    def __init__(
        self,
        op: Tuple[Any, ...],
        group: Tuple[str, ...],
        shard: Optional[int],
        mode: str,
        submit_time: float,
        target_index: int,
    ) -> None:
        self.op = op
        self.group = group
        self.shard = shard
        self.mode = mode
        self.submit_time = submit_time
        self.target_index = target_index
        #: server pid -> its latest ReadReply *of the current round*.
        #: Every retransmit/re-poll bumps ``round`` and clears this, and
        #: conservative mode drops replies tagged with a stale round, so
        #: a quorum only ever forms among same-round replies -- mixing
        #: rounds could assemble a majority no single instant ever held.
        self.replies: Dict[str, ReadReply] = {}
        self.retries = 0
        self.round = 0
        #: Live retransmit TimerHandle; cancelled on adoption so the
        #: common case (read answered promptly) leaves no dead timer in
        #: the event queue -- this sits on the measured read hot path.
        self.timer: Any = None

    @property
    def majority(self) -> int:
        return len(self.group) // 2 + 1


class OARClient(ComponentProcess):
    """A client process c issuing requests to the replicated service.

    Parameters
    ----------
    pid:
        Client identifier (must not collide with server pids).
    servers:
        Π, the server group the requests are R-multicast to (the default
        target; :meth:`submit` accepts a per-request override so sharded
        deployments can route to one group among several).
    on_adopt:
        Optional callback ``(AdoptedReply) -> None`` fired on adoption;
        closed-loop workload drivers use it to submit the next request.
    read_mode / is_read_only:
        The replica-local read path.  With ``read_mode="sequencer"``
        (the default, the paper's base protocol) every operation is
        ordered.  With ``"optimistic"`` or ``"conservative"``,
        operations the ``is_read_only`` classifier approves bypass the
        sequencer entirely: the client sends a :class:`ReadRequest`
        point-to-point -- to one replica chosen round-robin
        (optimistic: first reply wins, scales with replica count) or to
        the whole group (conservative: adopt once a majority return the
        same value).  ``is_read_only`` is usually the state machine's
        :meth:`~repro.statemachine.base.StateMachine.is_read_only`.
    read_retry_delay:
        Pause before a conservative read that collected every replica's
        answer without finding a matching majority is re-polled (the
        replicas observed different prefixes; they converge).
    """

    def __init__(
        self,
        pid: str,
        servers: Sequence[str],
        on_adopt: Optional[Callable[[AdoptedReply], None]] = None,
        retry_interval: Optional[float] = None,
        read_mode: str = "sequencer",
        is_read_only: Optional[Callable[[Tuple[Any, ...]], bool]] = None,
        read_retry_delay: float = 5.0,
    ) -> None:
        super().__init__(pid)
        if read_mode not in READ_MODES:
            raise ValueError(f"read_mode {read_mode!r} not in {READ_MODES}")
        self.servers: Tuple[str, ...] = tuple(servers)
        self.on_adopt = on_adopt
        #: When set, a request still unadopted after this much time is
        #: R-multicast again (same rid; the servers never re-execute --
        #: they re-send the cached reply).  Covers the lost-reply case:
        #: replies travel on plain channels and die with a crashing
        #: server, unlike requests, which the R-multicast relays protect.
        #: Reads use the same knob: an unanswered read is re-sent (to the
        #: next replica in optimistic mode -- the target may be dead).
        self.retry_interval = retry_interval
        self.retransmissions = 0
        self.read_mode = read_mode
        self.is_read_only = is_read_only
        self.read_retry_delay = read_retry_delay
        self.rmc = self.add_component(ReliableMulticast(self, self._unexpected_rdeliver))
        self._counter = itertools.count()
        self._pending: Dict[str, _PendingRequest] = {}
        self.adopted: Dict[str, AdoptedReply] = {}
        self.late_replies = 0
        # Replica-local reads in flight, in their own rid namespace
        # (<pid>-r<n>): read ids must never collide with ordered request
        # ids, and checkers exclude them from delivery-based properties.
        self._read_counter = itertools.count()
        self._reads: Dict[str, _PendingRead] = {}
        self._read_rr = 0  # round-robin cursor for optimistic targets
        self.read_rids: Set[str] = set()
        self.reads_adopted = 0
        self.read_retransmissions = 0
        # Admission control: ops the sequencer refused under load.  Each
        # surfaces as a failed OpResult wrapping Overloaded through the
        # normal adoption callback; the rid set lets run-level checkers
        # exclude shed ops from delivery-based properties (they were
        # answered, deliberately never ordered).
        self.overloaded = 0
        self.shed_rids: Set[str] = set()
        # Sequencer-equivocation detection: optimistic replies carry an
        # *order certificate* -- the sequencer-assigned (epoch, slot) the
        # replying replica learned for the rid.  The client cross-checks
        # every certificate it ever sees (late replies included: the
        # divergent one typically lands after adoption) against two
        # indices; a conflict means the sequencer told two replicas two
        # different orders, which message loss cannot fake (slots are
        # sequencer-assigned, not replica positions).  Keyed per scope
        # (the server-group prefix) so sharded groups never cross-talk.
        self._slot_certs: Dict[Tuple[str, int, int], Tuple[str, str]] = {}
        self._rid_certs: Dict[Tuple[str, int, str], Tuple[int, str]] = {}
        self.equivocations_detected = 0

    @property
    def majority_weight(self) -> int:
        """⌈(|Π|+1)/2⌉ (Fig. 5, line 3) for the default server group."""
        return len(self.servers) // 2 + 1

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet adopted (reads included)."""
        return len(self._pending) + len(self._reads)

    # ------------------------------------------------------------------

    def submit(
        self, op: Tuple[Any, ...], servers: Optional[Sequence[str]] = None
    ) -> str:
        """OAR-multicast(m, Π): R-multicast the request, start collecting.

        ``servers`` overrides the target group for this request (the
        sharded client routes each request to its key's group).  Returns
        the request id; the adopted reply appears in :attr:`adopted` (and
        via the ``on_adopt`` callback).

        Read-only operations take the replica-local read path when
        :attr:`read_mode` enables it -- but only on the default-routed
        path: an explicit ``servers`` group means the caller chose the
        target for ordering reasons (tx decision branches, migration
        probes), which must stay totally ordered.
        """
        if servers is None and self._wants_read_path(tuple(op)):
            return self._submit_read(tuple(op), self.servers, None)
        group = self.servers if servers is None else tuple(servers)
        rid = f"{self.pid}-{next(self._counter)}"
        request = Request(rid=rid, client=self.pid, op=tuple(op))
        self._pending[rid] = _PendingRequest(request.op, group, self.env.now)
        self.env.trace("submit", rid=rid, op=request.op)
        self.rmc.multicast(request, group)
        if self.retry_interval is not None:
            self.env.set_timer(
                self.retry_interval, lambda: self._maybe_retry(request)
            )
        return rid

    def _maybe_retry(self, request: Request) -> None:
        pending = self._pending.get(request.rid)
        if pending is None:
            return  # adopted in the meantime
        pending.retries += 1
        self.retransmissions += 1
        self.env.trace("retransmit", rid=request.rid, attempt=pending.retries)
        self.rmc.multicast(request, pending.group)
        self.env.set_timer(
            self.retry_interval, lambda: self._maybe_retry(request)
        )

    def on_app_message(self, src: str, payload: Any) -> None:
        """Handle server replies (everything else is component traffic)."""
        if isinstance(payload, Reply):
            self._on_reply(src, payload)
        elif isinstance(payload, ReadReply):
            self._on_read_reply(src, payload)
        elif isinstance(payload, ShedNotice):
            self._on_shed(src, payload)

    # ------------------------------------------------------------------
    # Replica-local reads (OARConfig.read_mode)
    # ------------------------------------------------------------------

    def _wants_read_path(self, op: Tuple[Any, ...]) -> bool:
        return (
            self.read_mode != "sequencer"
            and self.is_read_only is not None
            and self.is_read_only(op)
        )

    def _submit_read(
        self,
        op: Tuple[Any, ...],
        group: Tuple[str, ...],
        shard: Optional[int],
        submit_time: Optional[float] = None,
    ) -> str:
        """Send a read straight to replicas, bypassing the sequencer."""
        rid = f"{self.pid}-r{next(self._read_counter)}"
        target_index = self._read_rr
        self._read_rr += 1
        pending = _PendingRead(
            op=op,
            group=tuple(group),
            shard=shard,
            mode=self.read_mode,
            submit_time=self.env.now if submit_time is None else submit_time,
            target_index=target_index,
        )
        self._reads[rid] = pending
        self.read_rids.add(rid)
        self.env.trace(
            "read_submit", rid=rid, op=op, mode=pending.mode, shard=shard
        )
        self._send_read(rid, pending)
        pending.timer = self.env.set_timer(
            self._read_retry_interval(0), lambda: self._maybe_retry_read(rid)
        )
        return rid

    #: Liveness floor for unanswered reads when no ``retry_interval`` is
    #: configured: lazy on purpose (~50 unit-latency round trips).  A
    #: read is usually unanswered because it is *queued* at a loaded
    #: replica, not because the replica died; an eager default would
    #: retransmit queued reads into an ever-deeper queue (measured in
    #: B12: a 10-unit base collapsed saturated conservative goodput
    #: ~5x).  Crash-failover scenarios that care about recovery latency
    #: set ``retry_interval`` explicitly, exactly as writes do.
    DEFAULT_READ_RETRY_INTERVAL = 100.0

    def _read_retry_interval(self, retries: int) -> float:
        """Pacing of the unanswered-read retry timer (binary backoff).

        Unlike writes (R-multicast both ways, relayed around crashes),
        reads travel on plain point-to-point channels, so without a
        retry a read targeting a crashed replica would hang forever --
        the read path must not *lose* fault tolerance the ordered path
        has without extra knobs.  ``retry_interval`` sets the base when
        given (matching write retransmission); otherwise the lazy
        default above keeps reads live out of the box.  The interval
        doubles per attempt (retransmission storms cannot compound).
        """
        base = (
            self.retry_interval
            if self.retry_interval is not None
            else self.DEFAULT_READ_RETRY_INTERVAL
        )
        return base * (2 ** retries)

    def _send_read(self, rid: str, pending: _PendingRead) -> None:
        request = ReadRequest(
            rid=rid, client=self.pid, op=pending.op, round=pending.round
        )
        if pending.mode == "optimistic":
            target = pending.group[pending.target_index % len(pending.group)]
            self.env.send(target, request)
        else:  # conservative: every replica answers
            send = self.env.send
            for member in pending.group:
                send(member, request)

    def _maybe_retry_read(self, rid: str) -> None:
        """Unanswered read after the retry interval: re-poll.

        Optimistic reads rotate to the next replica (the target may have
        crashed); conservative reads re-poll the whole group under a
        fresh round number, dropping the superseded round's replies.
        """
        pending = self._reads.get(rid)
        if pending is None:
            return  # adopted in the meantime
        pending.retries += 1
        self.read_retransmissions += 1
        pending.target_index += 1
        pending.round += 1
        pending.replies.clear()
        self.env.trace("read_retransmit", rid=rid, attempt=pending.retries)
        self._send_read(rid, pending)
        pending.timer = self.env.set_timer(
            self._read_retry_interval(pending.retries),
            lambda: self._maybe_retry_read(rid),
        )

    def _on_read_reply(self, src: str, reply: ReadReply) -> None:
        pending = self._reads.get(reply.rid)
        if pending is None:
            self.late_replies += 1
            return
        if pending.mode == "optimistic":
            # Any round's reply is a valid single-replica observation.
            self._adopt_read(reply.rid, pending, reply, weight=(src,))
            return
        if reply.round != pending.round:
            # A straggler from a superseded round: mixing it into the
            # current round's vote could assemble a majority no single
            # instant ever held.
            self.late_replies += 1
            return
        pending.replies[src] = reply
        # Conservative: adopt once a majority of replicas agree on the
        # value.  Undo consistency makes this safe: a value derived from
        # an optimistic suffix that can still be undone is observable at
        # a minority of replicas only, so it can never win the vote.
        by_value: Dict[str, List[Tuple[str, ReadReply]]] = {}
        for pid, r in pending.replies.items():
            by_value.setdefault(repr(r.value), []).append((pid, r))
        for matching in by_value.values():
            if len(matching) >= pending.majority:
                matching.sort(key=lambda item: item[0])
                weight = tuple(pid for pid, _r in matching)
                # Report the freshest matching observation's position.
                best = max(matching, key=lambda item: item[1].position)[1]
                self._adopt_read(reply.rid, pending, best, weight=weight)
                return
        if len(pending.replies) >= len(pending.group):
            # Everyone answered and no value has a majority: the
            # replicas observed different prefixes.  They converge, so
            # re-poll after a pause (same rid -- this is still the same
            # logical read) under a fresh round number.
            pending.round += 1
            pending.replies.clear()
            pending.retries += 1
            self.env.trace(
                "read_repoll", rid=reply.rid, attempt=pending.retries
            )
            self.env.set_timer(
                self.read_retry_delay,
                lambda: self._repoll_read(reply.rid),
            )

    def _repoll_read(self, rid: str) -> None:
        pending = self._reads.get(rid)
        if pending is None:
            return
        self._send_read(rid, pending)

    def _adopt_read(
        self,
        rid: str,
        pending: _PendingRead,
        reply: ReadReply,
        weight: Tuple[str, ...],
    ) -> None:
        del self._reads[rid]
        if pending.timer is not None:
            pending.timer.cancel()
        if self._read_redirect(rid, pending, reply):
            return  # WrongShard: retried under a fresh rid, not surfaced
        adopted = AdoptedReply(
            rid=rid,
            value=reply.value,
            position=reply.position,
            epoch=reply.epoch,
            weight=weight,
            conservative=pending.mode == "conservative",
            submit_time=pending.submit_time,
            adopt_time=self.env.now,
        )
        self.reads_adopted += 1
        self.env.trace(
            "read_adopt",
            rid=rid,
            op=pending.op,
            mode=pending.mode,
            value=reply.value,
            position=reply.position,
            settled=reply.settled,
            shard=pending.shard,
            latency=adopted.latency,
        )
        self._record_adoption(adopted)

    def _read_redirect(
        self, rid: str, pending: _PendingRead, reply: ReadReply
    ) -> bool:
        """WrongShard hook: the sharded client syncs-and-retries.

        An unsharded deployment owns every key, so the base client never
        redirects a read.
        """
        return False

    # ------------------------------------------------------------------

    def _record_order_certificate(self, src: str, reply: Reply) -> None:
        """Cross-check an optimistic reply's sequencer order certificate.

        The certificate claims "the epoch-``k`` sequencer assigned slot
        ``n`` to rid ``r``".  Slots are numbered by the sequencer itself
        (``SeqOrder.start`` + offset), so two replicas can never
        *honestly* report different slots for one rid, nor different
        rids for one slot, no matter what the links drop or reorder --
        a conflict is deterministic evidence of equivocation and raises
        the ``equivocation_alarm`` trace.
        """
        slot = reply.slot
        if slot is None or reply.conservative:
            return
        scope = src.rpartition(".")[0]  # shard prefix; "" when unsharded
        epoch = reply.epoch
        rid = reply.rid
        slot_key = (scope, epoch, slot)
        claimed = self._slot_certs.get(slot_key)
        if claimed is None:
            self._slot_certs[slot_key] = (rid, src)
        elif claimed[0] != rid:
            self.equivocations_detected += 1
            self.env.trace(
                "equivocation_alarm",
                rid=rid,
                epoch=epoch,
                slot=slot,
                src=src,
                other_rid=claimed[0],
                other_src=claimed[1],
            )
        rid_key = (scope, epoch, rid)
        known = self._rid_certs.get(rid_key)
        if known is None:
            self._rid_certs[rid_key] = (slot, src)
        elif known[0] != slot:
            self.equivocations_detected += 1
            self.env.trace(
                "equivocation_alarm",
                rid=rid,
                epoch=epoch,
                slot=slot,
                src=src,
                other_slot=known[0],
                other_src=known[1],
            )

    def _on_reply(self, src: str, reply: Reply) -> None:
        self._record_order_certificate(src, reply)
        pending = self._pending.get(reply.rid)
        if pending is None:
            self.late_replies += 1
            return
        epoch_replies = pending.replies_by_epoch.setdefault(reply.epoch, {})
        previous = epoch_replies.get(src)
        if previous is None or len(reply.weight) > len(previous.weight):
            epoch_replies[src] = reply
        union = pending.weight_by_epoch.get(reply.epoch)
        if union is None:
            union = pending.weight_by_epoch[reply.epoch] = set()
        union |= reply.weight
        self._check_adoption(reply.rid, pending, reply.epoch)

    def _check_adoption(
        self, rid: str, pending: _PendingRequest, epoch: int
    ) -> None:
        """Fig. 5, lines 3-6: wait for majority weight, adopt heaviest.

        Only ``epoch`` (the one the just-arrived reply belongs to) can
        have crossed the threshold: any other epoch's union is unchanged
        since its own last check.
        """
        if len(pending.weight_by_epoch[epoch]) < pending.majority_weight:
            return
        replies = pending.replies_by_epoch[epoch]
        heaviest = max(replies.values(), key=lambda r: len(r.weight))
        self._adopt(rid, pending, heaviest)

    def _adopt(self, rid: str, pending: _PendingRequest, reply: Reply) -> None:
        adopted = AdoptedReply(
            rid=rid,
            value=reply.value,
            position=reply.position,
            epoch=reply.epoch,
            weight=tuple(sorted(reply.weight)),
            conservative=reply.conservative,
            submit_time=pending.submit_time,
            adopt_time=self.env.now,
        )
        del self._pending[rid]
        self.env.trace(
            "adopt",
            rid=rid,
            value=reply.value,
            position=reply.position,
            epoch=reply.epoch,
            weight=adopted.weight,
            conservative=reply.conservative,
            latency=adopted.latency,
        )
        self._record_adoption(adopted)

    def _on_shed(self, src: str, notice: ShedNotice) -> None:
        """Surface an admission refusal as a deterministic failed result.

        The shed op resolves through :meth:`_record_adoption` like any
        other outcome (so drivers see it via ``on_adopt`` and the
        sharded client's transaction interception treats a shed branch
        as a failed step), but it is traced as ``shed_adopt`` -- not
        ``adopt`` -- because no delivery position backs it: the
        external-consistency and total-order checkers must never see it.
        A notice for an already-resolved rid (e.g. a successor sequencer
        ordered the op after a failover and the real reply won the race)
        counts as late, exactly like a stale reply.
        """
        rid = notice.rid
        result = OpResult(
            ok=False,
            value=Overloaded(cls=notice.cls, queue=notice.queue, limit=notice.limit),
            error="overloaded",
        )
        pending = self._pending.pop(rid, None)
        if pending is not None:
            submit_time = pending.submit_time
        else:
            read = self._reads.pop(rid, None)
            if read is None:
                self.late_replies += 1
                return
            if read.timer is not None:
                read.timer.cancel()
            submit_time = read.submit_time
        self.overloaded += 1
        self.shed_rids.add(rid)
        adopted = AdoptedReply(
            rid=rid,
            value=result,
            position=-1,
            epoch=-1,
            weight=(src,),
            conservative=False,
            submit_time=submit_time,
            adopt_time=self.env.now,
        )
        self.env.trace(
            "shed_adopt",
            rid=rid,
            cls=notice.cls,
            queue=notice.queue,
            limit=notice.limit,
            latency=adopted.latency,
        )
        self._record_adoption(adopted)

    def _record_adoption(self, adopted: AdoptedReply) -> None:
        """Store the outcome and notify the workload driver.

        Subclass hook: the sharded client intercepts transaction-branch
        adoptions here and surfaces only whole-transaction outcomes.
        """
        self.adopted[adopted.rid] = adopted
        if self.on_adopt is not None:
            self.on_adopt(adopted)

    @staticmethod
    def _unexpected_rdeliver(origin: str, payload: Any) -> None:
        raise RuntimeError(
            f"client R-delivered unexpected payload from {origin}: {payload!r}"
        )


# ----------------------------------------------------------------------
# Sharded client
# ----------------------------------------------------------------------

class _CrossShardTx:
    """Coordinator state for one client-driven cross-shard transaction."""

    __slots__ = (
        "txid",
        "op",
        "submit_time",
        "shards",
        "prepare_rids",
        "prepared",
        "phase",
        "decision_rids",
        "decided",
        "inflight",
    )

    def __init__(
        self,
        txid: str,
        op: Tuple[Any, ...],
        submit_time: float,
        shards: Tuple[int, ...],
    ) -> None:
        self.txid = txid
        self.op = op
        self.submit_time = submit_time
        self.shards = shards
        self.prepare_rids: Dict[str, int] = {}  # branch rid -> shard
        self.prepared: Dict[str, AdoptedReply] = {}
        self.phase = "prepare"  # -> "commit" | "abort"
        self.decision_rids: Set[str] = set()
        self.decided: Dict[str, AdoptedReply] = {}
        self.inflight = 0  # branches submitted but not yet adopted

    @property
    def all_prepared(self) -> bool:
        return len(self.prepared) == len(self.prepare_rids)

    @property
    def prepare_ok(self) -> bool:
        return all(
            isinstance(a.value, OpResult) and a.value.ok
            for a in self.prepared.values()
        )


class _ScatterRead:
    """One merge-on-read over a split key's fragments (client-side)."""

    __slots__ = ("op", "key", "order", "submit_time", "by_frag", "got",
                 "error", "conservative")

    def __init__(
        self, op: Tuple[Any, ...], key: Any, order: Tuple[Any, ...],
        submit_time: float,
    ) -> None:
        self.op = op
        self.key = key
        self.order = order  # fragment keys, in fragment-index order
        self.submit_time = submit_time
        self.by_frag: Dict[Any, Any] = {}
        self.got = 0
        self.error: Optional[str] = None
        self.conservative = True


class _BudgetWithdraw:
    """One budget-limited op on a fragment, with its borrow bookkeeping."""

    __slots__ = ("op", "key", "frag", "frag_op", "frags", "submit_time",
                 "attempts", "tried", "shortfall")

    def __init__(
        self, op: Tuple[Any, ...], key: Any, frag: Any,
        frag_op: Tuple[Any, ...], frags: Tuple[Any, ...], submit_time: float,
    ) -> None:
        self.op = op
        self.key = key
        self.frag = frag
        self.frag_op = frag_op
        self.frags = frags
        self.submit_time = submit_time
        self.attempts = 0
        self.tried: Set[Any] = set()
        self.shortfall = 0


class ShardedOARClient(OARClient):
    """A client for a sharded OAR deployment (``repro.sharding``).

    Single-key requests are routed by the shard router to their key's
    group and adopted with that group's majority rule.  Multi-key
    requests whose keys straddle groups are decomposed (via the state
    machine's :meth:`~repro.statemachine.base.StateMachine.tx_branches`
    hook) into per-shard prepare branches; once every branch is adopted,
    the client decides commit (all prepares succeeded) or abort and
    drives the decision branches.  Every branch is an ordinary request,
    totally ordered by its shard's sequencer and adopted under the usual
    weighted-quorum rule -- the cross-shard path adds no new consensus
    machinery, only a state machine on top of adopted outcomes.

    When the routing table carries **hot-key splits** and a ``splitter``
    (a :class:`~repro.statemachine.base.SplittableMachine` subclass) is
    configured, operations on a split key are rewritten at submit time:

    * commutative ops (``split_kind`` ``"local"``) go to one fragment,
      chosen round-robin per key, so load spreads across the fragments'
      shards and execution lanes;
    * budget-limited ops (``"budget"``) go to one fragment and, when the
      fragment's local balance falls short (the machine reports
      ``("short", available)``), the client **borrows**: it submits an
      ordinary transfer from a sibling fragment (riding the cross-shard
      2PC when the donor lives elsewhere) and retries the op on the
      enriched fragment, rotating donors until one covers the shortfall
      or all have been tried;
    * whole-value reads (``"read"``) **scatter-gather**: one read per
      fragment, combined with the machine's ``merge_read`` and surfaced
      as a single synthesized adoption (``position``/``epoch`` ``-1``,
      like cross-shard transactions);
    * multi-key ops have each split key rewritten onto one fragment
      (a short transfer source simply fails, like any overdraft).

    A client that has not yet synced past the split's epoch routes to
    the logical key, gets WrongShard, and learns the split through the
    ordinary sync-and-retry loop -- splits need no new staleness
    machinery.

    Parameters
    ----------
    pid:
        Client identifier.
    shard_groups:
        One server group per shard, indexed by shard id.
    router:
        The deterministic key -> shard mapping shared with the cluster.
    key_extractor:
        ``op -> keys`` hook (usually ``Machine.keys_of``).
    tx_planner:
        ``(op, txid) -> {key: branch_op}`` hook (usually
        ``Machine.tx_branches``) for cross-shard decomposition.
    route_authority:
        The cluster's authoritative epoched
        :class:`~repro.sharding.router.RoutingTable`.  When given (and
        ``router`` is this client's own copy of it), WrongShard replies
        trigger a sync-and-retry instead of surfacing an error; when
        None the client never redirects (static-routing behaviour).
    redirect_delay:
        Pause before a redirected operation is retried -- covers the
        in-flight migration window where the key is owned by no shard.
    max_redirects:
        Retry budget per logical operation; when exhausted the final
        WrongShard error is surfaced to the caller as a terminal
        adoption (keeps runs with a permanently stranded key
        terminating), counted in :attr:`redirects_exhausted`.
    read_mode / is_read_only / read_retry_delay:
        The replica-local read path (see :class:`OARClient`): reads are
        routed to their key's shard group and answered by that group's
        replicas without touching its sequencer.  Reads on a key the
        target shard lost (frozen mid-migration, or moved away) get the
        same WrongShard sync-and-retry as writes.
    load_half_life:
        Half-life (simulated time units) of the per-key submission
        counters behind :attr:`key_load`.  The rebalance planner
        snapshots these; decay makes the snapshot reflect *recent*
        traffic instead of all-time totals, so a key that went cold is
        not migrated on stale evidence.  ``None`` disables decay.
    splitter:
        The deployment's :class:`~repro.statemachine.base.
        SplittableMachine` subclass (the machine *class*, not an
        instance), enabling the fragment rewrite / borrow / merge-on-read
        behaviour described above for keys the routing table marks as
        split.  ``None`` (the default) leaves split keys un-rewritten:
        ops on them WrongShard until the key is unsplit.
    """

    def __init__(
        self,
        pid: str,
        shard_groups: Sequence[Sequence[str]],
        router: Any,
        key_extractor: Callable[[Tuple[Any, ...]], Tuple[Any, ...]],
        tx_planner: Optional[
            Callable[[Tuple[Any, ...], str], Optional[Dict[Any, Tuple[Any, ...]]]]
        ] = None,
        on_adopt: Optional[Callable[[AdoptedReply], None]] = None,
        retry_interval: Optional[float] = None,
        route_authority: Optional[Any] = None,
        redirect_delay: float = 5.0,
        max_redirects: int = 100,
        read_mode: str = "sequencer",
        is_read_only: Optional[Callable[[Tuple[Any, ...]], bool]] = None,
        read_retry_delay: float = 5.0,
        load_half_life: Optional[float] = 250.0,
        splitter: Optional[type] = None,
    ) -> None:
        groups = tuple(tuple(group) for group in shard_groups)
        if router.n_shards != len(groups):
            raise ValueError(
                f"router has {router.n_shards} shards but "
                f"{len(groups)} groups were given"
            )
        all_servers = [pid_ for group in groups for pid_ in group]
        super().__init__(
            pid,
            all_servers,
            on_adopt,
            retry_interval,
            read_mode=read_mode,
            is_read_only=is_read_only,
            read_retry_delay=read_retry_delay,
        )
        self.shard_groups = groups
        self.router = router
        self.route_authority = route_authority
        self.redirect_delay = redirect_delay
        self.max_redirects = max_redirects
        self.key_extractor = key_extractor
        self.tx_planner = tx_planner
        self._tx_counter = itertools.count()
        self._txs: Dict[str, _CrossShardTx] = {}
        self._branch_to_tx: Dict[str, str] = {}
        #: Every physical request (single-shard ops and tx branches) and
        #: the shard it was routed to; per-shard checkers use this.
        self.routed: Dict[str, int] = {}
        #: Inverse index of :attr:`routed`, maintained at submit time so
        #: per-shard checkers do not rescan every routed request per shard.
        self._routed_by_shard: Dict[int, List[str]] = {}
        #: Per-key submission load, exponentially decayed with
        #: ``load_half_life``: the statistic the rebalance coordinator
        #: plans from (cheap, works with tracing off).  ``snapshot()``
        #: gives decayed loads, ``counts()`` exact submission counts.
        self.key_load = DecayingKeyLoad(
            half_life=load_half_life, clock=lambda: self.env.now
        )
        #: rid -> op for routed single-shard submissions, kept while the
        #: request is in flight so a WrongShard reply can be retried.
        self._op_of: Dict[str, Tuple[Any, ...]] = {}
        #: rid/txid -> redirects already spent on that logical operation.
        self._redirect_attempts: Dict[str, int] = {}
        self._redirect_pending = 0
        self.cross_shard_started = 0
        self.cross_shard_committed = 0
        self.cross_shard_aborted = 0
        self.redirects = 0
        self.redirects_exhausted = 0
        # -- hot-key splitting ------------------------------------------
        self.splitter = splitter
        #: key -> round-robin cursor over its fragments.
        self._split_rr: Dict[Any, int] = {}
        self._scatter_counter = itertools.count()
        #: logical scatter-read id -> merge state.
        self._scatter: Dict[str, _ScatterRead] = {}
        #: physical branch rid -> (scatter id, fragment key).
        self._scatter_branch: Dict[str, Tuple[str, Any]] = {}
        #: budget-op rid -> its borrow context.
        self._budget_of: Dict[str, _BudgetWithdraw] = {}
        #: borrow-transfer rid/txid -> the budget context it serves.
        self._borrows: Dict[str, _BudgetWithdraw] = {}
        self.split_rewrites = 0
        self.split_reads = 0
        self.borrows = 0
        self.borrows_failed = 0

    @property
    def outstanding(self) -> int:
        """In-flight physical requests plus any tx between phases.

        A transaction always has a branch in flight between begin and
        finish (decisions are submitted in the last prepare's adoption
        event), so the second term is defensive.  Operations waiting out
        a redirect delay count too -- the driver must not conclude the
        run while a retry is pending -- as do replica-local reads.
        """
        base = len(self._pending) + len(self._reads) + self._redirect_pending
        if not self._txs:  # quiescence predicates poll this per event
            return base
        stalled = sum(1 for tx in self._txs.values() if tx.inflight == 0)
        return base + stalled

    def shards_of(self, op: Tuple[Any, ...]) -> Tuple[int, ...]:
        """The distinct shards an operation's keys map to (sorted)."""
        return self._shards_for_keys(tuple(self.key_extractor(tuple(op))))

    def _shards_for_keys(self, keys: Tuple[Any, ...]) -> Tuple[int, ...]:
        """The routing policy: keyless operations get the deterministic
        fallback shard 0, keyed ones the sorted set of their shards."""
        if not keys:
            return (0,)
        return tuple(sorted({self.router.shard_of(key) for key in keys}))

    # ------------------------------------------------------------------

    def submit(
        self, op: Tuple[Any, ...], servers: Optional[Sequence[str]] = None
    ) -> str:
        """Route by key; fan a multi-shard op out as a 2PC transaction.

        With an explicit ``servers`` group the request bypasses routing
        (used by tests and by the coordinator's own branches).
        """
        if servers is not None:
            return super().submit(op, servers)
        op = tuple(op)
        keys = tuple(self.key_extractor(op))
        record = self.key_load.record
        for key in keys:
            record(key)
        if self.splitter is not None and self.router.splits:
            handled = self._submit_split(op, keys)
            if handled is not None:
                return handled
        shards = self._shards_for_keys(keys)
        if len(shards) == 1:
            if self._wants_read_path(op):
                # Replica-local read: straight to the key's shard group,
                # no sequencer involved.  (A hypothetical multi-shard
                # read has no single group to quorum over and falls
                # through to the ordered path below.)
                return self._submit_read(op, self.shard_groups[shards[0]], shards[0])
            return self.submit_to_shard(op, shards[0])
        return self._begin_cross_shard(op, shards)

    def submit_to_shard(self, op: Tuple[Any, ...], shard: int) -> str:
        """Submit ``op`` to one shard's group, recording the routing.

        The normal path routes by key; this entry point is for requests
        whose shard is chosen by the caller -- transaction decision
        branches and the rebalance coordinator's ``mig_*`` operations.
        """
        op = tuple(op)
        rid = OARClient.submit(self, op, self.shard_groups[shard])
        self.routed[rid] = shard
        self._op_of[rid] = op
        per_shard = self._routed_by_shard.get(shard)
        if per_shard is None:
            per_shard = self._routed_by_shard[shard] = []
        per_shard.append(rid)
        return rid

    def routed_to(self, shard: int) -> List[str]:
        """Physical rids (ops and tx branches) this client routed to ``shard``."""
        return list(self._routed_by_shard.get(shard, ()))

    # ------------------------------------------------------------------
    # Cross-shard two-phase commit (client as coordinator)
    # ------------------------------------------------------------------

    def _begin_cross_shard(self, op: Tuple[Any, ...], shards: Tuple[int, ...]) -> str:
        txid = f"{self.pid}-x{next(self._tx_counter)}"
        branches = None if self.tx_planner is None else self.tx_planner(op, txid)
        if branches is None:
            raise ValueError(
                f"operation {op!r} spans shards {shards} but has no "
                f"cross-shard decomposition (tx_branches returned None)"
            )
        per_shard: Dict[int, List[Tuple[Any, ...]]] = {}
        for key, branch_op in branches.items():
            per_shard.setdefault(self.router.shard_of(key), []).append(branch_op)
        tx = _CrossShardTx(txid, op, self.env.now, tuple(sorted(per_shard)))
        self._txs[txid] = tx
        self.cross_shard_started += 1
        self.env.trace("tx_begin", txid=txid, op=op, shards=tx.shards)
        for shard in sorted(per_shard):
            for branch_op in per_shard[shard]:
                rid = self.submit_to_shard(branch_op, shard)
                self._branch_to_tx[rid] = txid
                tx.prepare_rids[rid] = shard
                tx.inflight += 1
        return txid

    # ------------------------------------------------------------------
    # Hot-key splitting (repro.statemachine.base.SplittableMachine)
    # ------------------------------------------------------------------

    def _submit_split(self, op: Tuple[Any, ...], keys: Tuple[Any, ...]) -> Optional[str]:
        """Rewrite an op touching split keys; None when none are split."""
        splits = self.router.splits
        split_keys = [key for key in keys if key in splits]
        if not split_keys:
            return None
        sp = self.splitter
        if len(keys) == 1:
            key = keys[0]
            placements = self.router.fragments_of(key)
            kind = sp.split_kind(op)
            if kind == "read":
                return self._scatter_read(op, key, placements)
            if kind in ("local", "budget"):
                frag = self._next_fragment(key, placements)
                frag_op = sp.fragment_op(op, key, frag)
                self.split_rewrites += 1
                self.env.trace(
                    "split_rewrite", op=op, frag=frag, rewrite=kind
                )
                rid = self.submit(frag_op)
                if kind == "budget":
                    self._budget_of[rid] = _BudgetWithdraw(
                        op, key, frag, frag_op,
                        tuple(f for f, _shard in placements), self.env.now,
                    )
                return rid
            return None  # not rewritable: WrongShard until unsplit
        # Multi-key op: substitute each split key with one of its
        # fragments and route the rewritten op normally (possibly as a
        # cross-shard transaction).  A budget-short fragment here just
        # fails the op, like any overdraft.
        new_op = op
        for key in split_keys:
            frag = self._next_fragment(key, self.router.fragments_of(key))
            new_op = sp.fragment_op(new_op, key, frag)
        self.split_rewrites += 1
        self.env.trace("split_rewrite", op=op, rewritten=new_op, rewrite="multi")
        return self.submit(new_op)

    def _next_fragment(self, key: Any, placements: Tuple[Tuple[Any, int], ...]) -> Any:
        """Round-robin fragment choice: spread commutative load evenly."""
        cursor = self._split_rr.get(key, 0)
        self._split_rr[key] = cursor + 1
        frag, _shard = placements[cursor % len(placements)]
        return frag

    def _scatter_read(
        self, op: Tuple[Any, ...], key: Any,
        placements: Tuple[Tuple[Any, int], ...],
    ) -> str:
        """Merge-on-read: one branch per fragment, combined on adoption."""
        sid = f"{self.pid}-sr{next(self._scatter_counter)}"
        order = tuple(frag for frag, _shard in placements)
        self._scatter[sid] = _ScatterRead(op, key, order, self.env.now)
        self.split_reads += 1
        self.env.trace("split_read", rid=sid, op=op, fragments=len(order))
        sp = self.splitter
        for frag in order:
            branch_rid = self.submit(sp.fragment_op(op, key, frag))
            self._scatter_branch[branch_rid] = (sid, frag)
        return sid

    def _on_scatter_branch(self, sid: str, frag: Any, adopted: AdoptedReply) -> None:
        scatter = self._scatter[sid]
        value = adopted.value
        if isinstance(value, OpResult) and value.ok:
            scatter.by_frag[frag] = value.value
        elif scatter.error is None:
            scatter.error = (
                value.error if isinstance(value, OpResult) else repr(value)
            )
        scatter.got += 1
        scatter.conservative = scatter.conservative and adopted.conservative
        if scatter.got < len(scatter.order):
            return
        del self._scatter[sid]
        if scatter.error is None:
            values = tuple(scatter.by_frag[f] for f in scatter.order)
            result = OpResult(
                ok=True, value=self.splitter.merge_read(scatter.op, values)
            )
        else:
            result = OpResult(ok=False, error=f"split read: {scatter.error}")
        merged = AdoptedReply(
            rid=sid,
            value=result,
            position=-1,
            epoch=-1,
            weight=(),
            conservative=scatter.conservative,
            submit_time=scatter.submit_time,
            adopt_time=self.env.now,
        )
        self.env.trace(
            "split_read_adopt",
            rid=sid,
            op=scatter.op,
            value=result.value if result.ok else result.error,
            latency=merged.latency,
        )
        OARClient._record_adoption(self, merged)

    def _on_budget(self, ctx: _BudgetWithdraw, adopted: AdoptedReply) -> bool:
        """Borrow-and-retry on a fragment shortfall; False = surface."""
        value = adopted.value
        short = (
            isinstance(value, OpResult)
            and not value.ok
            and isinstance(value.value, tuple)
            and value.value
            and value.value[0] == "short"
        )
        if not short:
            return False
        amount = ctx.op[-1]
        available = value.value[1]
        if not isinstance(amount, int) or not isinstance(available, int):
            return False
        ctx.shortfall = amount - available
        return self._try_borrow(ctx)

    def _try_borrow(self, ctx: _BudgetWithdraw) -> bool:
        donors = [f for f in ctx.frags if f != ctx.frag and f not in ctx.tried]
        if not donors or ctx.attempts >= len(ctx.frags) - 1:
            return False
        donor = donors[0]
        ctx.tried.add(donor)
        ctx.attempts += 1
        self.borrows += 1
        self.env.trace(
            "split_borrow",
            key=ctx.key,
            donor=donor,
            frag=ctx.frag,
            amount=ctx.shortfall,
            attempt=ctx.attempts,
        )
        # An ordinary totally-ordered transfer between fragments: the
        # routing layer turns it into a cross-shard 2PC when the donor
        # lives on another shard, so borrow atomicity is the transfer's.
        rid = self.submit(("transfer", donor, ctx.frag, ctx.shortfall))
        self._borrows[rid] = ctx
        return True

    def _on_borrow(self, ctx: _BudgetWithdraw, adopted: AdoptedReply) -> None:
        value = adopted.value
        if isinstance(value, OpResult) and value.ok:
            # Funds arrived: retry the original op on the same fragment.
            # The ordered pipeline serializes the retry after the
            # transfer's credit, so the retry sees the borrowed funds.
            rid = self.submit(ctx.frag_op)
            self._budget_of[rid] = ctx
            pending = self._pending.get(rid)
            if pending is not None:
                # Latency continuity: the whole borrow chain is one
                # logical operation, timed from its first submission.
                pending.submit_time = ctx.submit_time
            return
        self.borrows_failed += 1
        if self._try_borrow(ctx):
            return  # rotate to the next donor
        # Every donor was short too: run the op once more so the
        # terminal overdraft surfaces through the normal adoption path.
        rid = self.submit(ctx.frag_op)
        pending = self._pending.get(rid)
        if pending is not None:
            pending.submit_time = ctx.submit_time

    def _intercept_adoption(self, adopted: AdoptedReply) -> bool:
        """Split bookkeeping hooks; True when the adoption was consumed."""
        branch = self._scatter_branch.pop(adopted.rid, None)
        if branch is not None:
            self._on_scatter_branch(branch[0], branch[1], adopted)
            return True
        ctx = self._budget_of.pop(adopted.rid, None)
        if ctx is not None and self._on_budget(ctx, adopted):
            return True
        borrow = self._borrows.pop(adopted.rid, None)
        if borrow is not None:
            self._on_borrow(borrow, adopted)
            return True
        return False

    def _remap_logical(self, old_id: str, new_id: str) -> None:
        """Carry split bookkeeping across a redirect's rid change."""
        branch = self._scatter_branch.pop(old_id, None)
        if branch is not None:
            self._scatter_branch[new_id] = branch
        ctx = self._budget_of.pop(old_id, None)
        if ctx is not None:
            self._budget_of[new_id] = ctx
        borrow = self._borrows.pop(old_id, None)
        if borrow is not None:
            self._borrows[new_id] = borrow

    # ------------------------------------------------------------------
    # WrongShard redirects (live rebalancing, repro.sharding.rebalance)
    # ------------------------------------------------------------------

    @staticmethod
    def _wrong_shard_of(value: Any) -> Optional[WrongShard]:
        """The WrongShard payload of a failed result, else None."""
        if (
            isinstance(value, OpResult)
            and not value.ok
            and isinstance(value.value, WrongShard)
        ):
            return value.value
        return None

    def _schedule_redirect(
        self, old_id: str, op: Tuple[Any, ...], submit_time: float
    ) -> bool:
        """Sync-and-retry ``op`` after a WrongShard outcome on ``old_id``.

        Returns False (caller surfaces the error as a terminal adoption)
        when redirects are disabled or the retry budget for this logical
        operation is spent.  The retry happens ``redirect_delay`` later
        under a fresh request id that inherits the original submission
        time, so client-perceived latency spans the whole redirect chain.
        """
        attempts = self._redirect_attempts.pop(old_id, 0)
        if self.route_authority is None or attempts >= self.max_redirects:
            if self.route_authority is not None:
                self.redirects_exhausted += 1
                self.env.trace(
                    "redirect_exhausted", rid=old_id, op=op, attempts=attempts
                )
            return False
        self.redirects += 1
        self.env.trace(
            "redirect",
            rid=old_id,
            op=op,
            attempt=attempts + 1,
            table_epoch=self.route_authority.epoch,
        )
        # Sync immediately, not just at retry time: a WrongShard reply is
        # proof the local table is stale, and every operation submitted
        # between now and the (delayed) retry would otherwise chase the
        # same wrong shard and pile onto its queue.  The retry syncs
        # again in case the authority moved during the pause.
        self.router.sync_from(self.route_authority)
        self._redirect_pending += 1

        def retry() -> None:
            self._redirect_pending -= 1
            self.router.sync_from(self.route_authority)
            new_id = self.submit(op)
            self._remap_logical(old_id, new_id)
            # submit() counted the op's keys into key_load again, but a
            # retry is not new demand: left in, a key under migration
            # (the one case that redirects) would look ever hotter to
            # the rebalance planner and invite move oscillation.
            for key in self.key_extractor(op):
                self.key_load.unrecord(key)
            self._redirect_attempts[new_id] = attempts + 1
            pending = self._pending.get(new_id)
            if pending is not None:
                pending.submit_time = submit_time
                return
            read = self._reads.get(new_id)
            if read is not None:
                read.submit_time = submit_time
                return
            tx = self._txs.get(new_id)
            if tx is not None:
                tx.submit_time = submit_time

        self.env.set_timer(self.redirect_delay, retry)
        return True

    def _read_redirect(
        self, rid: str, pending: _PendingRead, reply: ReadReply
    ) -> bool:
        """A read that observed WrongShard syncs-and-retries like a write.

        The read is re-routed by the refreshed table under a fresh read
        id; the original submission time is inherited (the redirect
        chain is one logical read).  Budget-exhausted reads surface the
        WrongShard error as a terminal adoption, exactly like writes.
        """
        if self._wrong_shard_of(reply.value) is None:
            return False
        return self._schedule_redirect(rid, pending.op, pending.submit_time)

    # ------------------------------------------------------------------

    def _record_adoption(self, adopted: AdoptedReply) -> None:
        txid = self._branch_to_tx.pop(adopted.rid, None)
        if txid is None:
            op = self._op_of.pop(adopted.rid, None)
            if (
                op is not None
                and self._wrong_shard_of(adopted.value) is not None
                and self._schedule_redirect(adopted.rid, op, adopted.submit_time)
            ):
                return  # retried; never surfaced to the driver
            self._redirect_attempts.pop(adopted.rid, None)
            if self._intercept_adoption(adopted):
                return  # split scatter/borrow machinery consumed it
            super()._record_adoption(adopted)
            return
        self._op_of.pop(adopted.rid, None)
        tx = self._txs[txid]
        tx.inflight -= 1
        self.env.trace(
            "tx_branch_adopt", txid=txid, rid=adopted.rid, phase=tx.phase
        )
        if tx.phase == "prepare":
            tx.prepared[adopted.rid] = adopted
            if tx.all_prepared:
                self._decide(tx)
        else:
            tx.decided[adopted.rid] = adopted
            if len(tx.decided) == len(tx.decision_rids):
                self._finish_tx(tx)

    def _decide(self, tx: _CrossShardTx) -> None:
        commit = tx.prepare_ok
        tx.phase = "commit" if commit else "abort"
        # Commit goes to every participant; abort only to shards whose
        # prepare took a hold (a failed prepare left nothing to release).
        if commit:
            targets = set(tx.shards)
        else:
            targets = {
                tx.prepare_rids[rid]
                for rid, adopted in tx.prepared.items()
                if isinstance(adopted.value, OpResult) and adopted.value.ok
            }
        self.env.trace(
            "tx_decide",
            txid=tx.txid,
            outcome=tx.phase,
            shards=tuple(sorted(targets)),
        )
        decision_op = ("tx_commit" if commit else "tx_abort", tx.txid)
        for shard in sorted(targets):
            rid = self.submit_to_shard(decision_op, shard)
            self._branch_to_tx[rid] = tx.txid
            tx.decision_rids.add(rid)
            tx.inflight += 1
        if not targets:
            self._finish_tx(tx)

    def _finish_tx(self, tx: _CrossShardTx) -> None:
        del self._txs[tx.txid]
        committed = tx.phase == "commit"
        if committed:
            self.cross_shard_committed += 1
            value = OpResult(ok=True, value=("committed",) + tx.op)
        else:
            self.cross_shard_aborted += 1
            reasons = "; ".join(
                a.value.error
                for a in tx.prepared.values()
                if isinstance(a.value, OpResult) and not a.value.ok
            )
            value = OpResult(ok=False, error=f"tx aborted: {reasons}")
            # A prepare that failed with WrongShard means the routing
            # was stale: the abort above released every hold the stale
            # plan took, so the whole transaction can safely be retried
            # against the refreshed table (it may re-plan as a
            # different shard set, or even as a single-shard op).
            stale = any(
                self._wrong_shard_of(a.value) is not None
                for a in tx.prepared.values()
            )
            if stale and self._schedule_redirect(tx.txid, tx.op, tx.submit_time):
                self.env.trace(
                    "tx_adopt",
                    txid=tx.txid,
                    outcome=tx.phase,
                    shards=tx.shards,
                    latency=self.env.now - tx.submit_time,
                )
                return  # retried; the aborted attempt is not surfaced
        self._redirect_attempts.pop(tx.txid, None)
        branch_adoptions = list(tx.prepared.values()) + list(tx.decided.values())
        adopted = AdoptedReply(
            rid=tx.txid,
            value=value,
            position=-1,
            epoch=-1,
            weight=(),
            conservative=all(a.conservative for a in branch_adoptions),
            submit_time=tx.submit_time,
            adopt_time=self.env.now,
        )
        self.env.trace(
            "tx_adopt",
            txid=tx.txid,
            outcome=tx.phase,
            shards=tx.shards,
            latency=adopted.latency,
        )
        if self._intercept_adoption(adopted):
            return  # a borrow transfer ran as a cross-shard tx
        super()._record_adoption(adopted)
