"""The OAR client (Fig. 5): weighted-quorum reply adoption.

The client R-multicasts its request to the server group Π and collects
replies.  Replies are grouped by the epoch ``k`` in which the servers
generated them; within one epoch the client accumulates the *union* of the
reply weights (the sets of endorsing servers).  Once that union reaches
the majority threshold ``⌈(|Π|+1)/2⌉`` the client **adopts** a reply with
the largest individual weight.

Why this is safe (Proposition 7): within an epoch all optimistic replies
for a request are identical (the sequencer's FIFO ordering gives
prefix-related optimistic sequences), and all conservative replies are
identical (Cnsv-order agreement).  A reply that could still be undone is
endorsed by at most a minority (undo consistency), so it can never
accumulate majority weight; conservative replies carry weight Π and win
the largest-weight selection immediately.

:class:`ShardedOARClient` extends the rule to a *partitioned* service
(``repro.sharding``): each request is routed by its keys to one of N
independent OAR groups, adoption runs per-group (each group has its own
majority threshold), and multi-key operations that straddle groups run a
client-coordinated two-phase commit whose branches are ordinary
totally-ordered requests on their shards.

With live rebalancing (``repro.sharding.rebalance``) a client's routing
table can go stale: a key it routes to shard s may have been migrated
away.  The shard then answers with a deterministic, totally-ordered
:class:`~repro.statemachine.base.WrongShard` error, and the client
**re-syncs its routing-table copy from the cluster's authoritative
epoched table and retries** the operation under a fresh request id (the
redirect loop also covers the in-flight window where a key is owned by
*no* shard -- retries are spaced by ``redirect_delay`` until the
migration lands).  The retried request is a brand-new totally-ordered
request, so per-shard at-most-once and total-order guarantees are
untouched; the original (error) adoption is simply never surfaced to the
workload driver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.broadcast.reliable import ReliableMulticast
from repro.core.messages import Reply, Request
from repro.sim.component import ComponentProcess
from repro.statemachine.base import OpResult, WrongShard


@dataclass(frozen=True)
class AdoptedReply:
    """The client's final outcome for one request.

    For a cross-shard transaction (:class:`ShardedOARClient`) the adopted
    reply is synthesized from the branch adoptions: ``position`` and
    ``epoch`` are ``-1`` (there is no single-group position), ``weight``
    is empty, and ``conservative`` is True only when every branch was
    adopted conservatively.
    """

    rid: str
    value: Any
    position: int
    epoch: int
    weight: Tuple[str, ...]
    conservative: bool
    submit_time: float
    adopt_time: float

    @property
    def latency(self) -> float:
        """Client-perceived latency: adoption minus submission time."""
        return self.adopt_time - self.submit_time


class _PendingRequest:
    """Reply bookkeeping for one in-flight request."""

    __slots__ = (
        "op",
        "group",
        "submit_time",
        "replies_by_epoch",
        "weight_by_epoch",
        "retries",
    )

    def __init__(
        self, op: Tuple[Any, ...], group: Tuple[str, ...], submit_time: float
    ) -> None:
        self.op = op
        self.group = group
        self.submit_time = submit_time
        self.retries = 0
        # epoch -> {server pid -> Reply}; per server we keep the
        # heaviest reply seen for that epoch (a conservative reply
        # supersedes the server's earlier optimistic one).
        self.replies_by_epoch: Dict[int, Dict[str, Reply]] = {}
        # epoch -> running union of endorsement weights.  Maintained
        # incrementally on each reply so the majority check is O(|weight|)
        # per reply instead of re-unioning every kept reply (weights
        # within an epoch are nested, so the running union equals the
        # union over the kept-heaviest replies).
        self.weight_by_epoch: Dict[int, set] = {}

    @property
    def majority_weight(self) -> int:
        """⌈(|group|+1)/2⌉ for the group this request was sent to."""
        return len(self.group) // 2 + 1


class OARClient(ComponentProcess):
    """A client process c issuing requests to the replicated service.

    Parameters
    ----------
    pid:
        Client identifier (must not collide with server pids).
    servers:
        Π, the server group the requests are R-multicast to (the default
        target; :meth:`submit` accepts a per-request override so sharded
        deployments can route to one group among several).
    on_adopt:
        Optional callback ``(AdoptedReply) -> None`` fired on adoption;
        closed-loop workload drivers use it to submit the next request.
    """

    def __init__(
        self,
        pid: str,
        servers: Sequence[str],
        on_adopt: Optional[Callable[[AdoptedReply], None]] = None,
        retry_interval: Optional[float] = None,
    ) -> None:
        super().__init__(pid)
        self.servers: Tuple[str, ...] = tuple(servers)
        self.on_adopt = on_adopt
        #: When set, a request still unadopted after this much time is
        #: R-multicast again (same rid; the servers never re-execute --
        #: they re-send the cached reply).  Covers the lost-reply case:
        #: replies travel on plain channels and die with a crashing
        #: server, unlike requests, which the R-multicast relays protect.
        self.retry_interval = retry_interval
        self.retransmissions = 0
        self.rmc = self.add_component(ReliableMulticast(self, self._unexpected_rdeliver))
        self._counter = itertools.count()
        self._pending: Dict[str, _PendingRequest] = {}
        self.adopted: Dict[str, AdoptedReply] = {}
        self.late_replies = 0

    @property
    def majority_weight(self) -> int:
        """⌈(|Π|+1)/2⌉ (Fig. 5, line 3) for the default server group."""
        return len(self.servers) // 2 + 1

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet adopted."""
        return len(self._pending)

    # ------------------------------------------------------------------

    def submit(
        self, op: Tuple[Any, ...], servers: Optional[Sequence[str]] = None
    ) -> str:
        """OAR-multicast(m, Π): R-multicast the request, start collecting.

        ``servers`` overrides the target group for this request (the
        sharded client routes each request to its key's group).  Returns
        the request id; the adopted reply appears in :attr:`adopted` (and
        via the ``on_adopt`` callback).
        """
        group = self.servers if servers is None else tuple(servers)
        rid = f"{self.pid}-{next(self._counter)}"
        request = Request(rid=rid, client=self.pid, op=tuple(op))
        self._pending[rid] = _PendingRequest(request.op, group, self.env.now)
        self.env.trace("submit", rid=rid, op=request.op)
        self.rmc.multicast(request, group)
        if self.retry_interval is not None:
            self.env.set_timer(
                self.retry_interval, lambda: self._maybe_retry(request)
            )
        return rid

    def _maybe_retry(self, request: Request) -> None:
        pending = self._pending.get(request.rid)
        if pending is None:
            return  # adopted in the meantime
        pending.retries += 1
        self.retransmissions += 1
        self.env.trace("retransmit", rid=request.rid, attempt=pending.retries)
        self.rmc.multicast(request, pending.group)
        self.env.set_timer(
            self.retry_interval, lambda: self._maybe_retry(request)
        )

    def on_app_message(self, src: str, payload: Any) -> None:
        """Handle server replies (everything else is component traffic)."""
        if isinstance(payload, Reply):
            self._on_reply(src, payload)

    # ------------------------------------------------------------------

    def _on_reply(self, src: str, reply: Reply) -> None:
        pending = self._pending.get(reply.rid)
        if pending is None:
            self.late_replies += 1
            return
        epoch_replies = pending.replies_by_epoch.setdefault(reply.epoch, {})
        previous = epoch_replies.get(src)
        if previous is None or len(reply.weight) > len(previous.weight):
            epoch_replies[src] = reply
        union = pending.weight_by_epoch.get(reply.epoch)
        if union is None:
            union = pending.weight_by_epoch[reply.epoch] = set()
        union |= reply.weight
        self._check_adoption(reply.rid, pending, reply.epoch)

    def _check_adoption(
        self, rid: str, pending: _PendingRequest, epoch: int
    ) -> None:
        """Fig. 5, lines 3-6: wait for majority weight, adopt heaviest.

        Only ``epoch`` (the one the just-arrived reply belongs to) can
        have crossed the threshold: any other epoch's union is unchanged
        since its own last check.
        """
        if len(pending.weight_by_epoch[epoch]) < pending.majority_weight:
            return
        replies = pending.replies_by_epoch[epoch]
        heaviest = max(replies.values(), key=lambda r: len(r.weight))
        self._adopt(rid, pending, heaviest)

    def _adopt(self, rid: str, pending: _PendingRequest, reply: Reply) -> None:
        adopted = AdoptedReply(
            rid=rid,
            value=reply.value,
            position=reply.position,
            epoch=reply.epoch,
            weight=tuple(sorted(reply.weight)),
            conservative=reply.conservative,
            submit_time=pending.submit_time,
            adopt_time=self.env.now,
        )
        del self._pending[rid]
        self.env.trace(
            "adopt",
            rid=rid,
            value=reply.value,
            position=reply.position,
            epoch=reply.epoch,
            weight=adopted.weight,
            conservative=reply.conservative,
            latency=adopted.latency,
        )
        self._record_adoption(adopted)

    def _record_adoption(self, adopted: AdoptedReply) -> None:
        """Store the outcome and notify the workload driver.

        Subclass hook: the sharded client intercepts transaction-branch
        adoptions here and surfaces only whole-transaction outcomes.
        """
        self.adopted[adopted.rid] = adopted
        if self.on_adopt is not None:
            self.on_adopt(adopted)

    @staticmethod
    def _unexpected_rdeliver(origin: str, payload: Any) -> None:
        raise RuntimeError(
            f"client R-delivered unexpected payload from {origin}: {payload!r}"
        )


# ----------------------------------------------------------------------
# Sharded client
# ----------------------------------------------------------------------

class _CrossShardTx:
    """Coordinator state for one client-driven cross-shard transaction."""

    __slots__ = (
        "txid",
        "op",
        "submit_time",
        "shards",
        "prepare_rids",
        "prepared",
        "phase",
        "decision_rids",
        "decided",
        "inflight",
    )

    def __init__(
        self,
        txid: str,
        op: Tuple[Any, ...],
        submit_time: float,
        shards: Tuple[int, ...],
    ) -> None:
        self.txid = txid
        self.op = op
        self.submit_time = submit_time
        self.shards = shards
        self.prepare_rids: Dict[str, int] = {}  # branch rid -> shard
        self.prepared: Dict[str, AdoptedReply] = {}
        self.phase = "prepare"  # -> "commit" | "abort"
        self.decision_rids: Set[str] = set()
        self.decided: Dict[str, AdoptedReply] = {}
        self.inflight = 0  # branches submitted but not yet adopted

    @property
    def all_prepared(self) -> bool:
        return len(self.prepared) == len(self.prepare_rids)

    @property
    def prepare_ok(self) -> bool:
        return all(
            isinstance(a.value, OpResult) and a.value.ok
            for a in self.prepared.values()
        )


class ShardedOARClient(OARClient):
    """A client for a sharded OAR deployment (``repro.sharding``).

    Single-key requests are routed by the shard router to their key's
    group and adopted with that group's majority rule.  Multi-key
    requests whose keys straddle groups are decomposed (via the state
    machine's :meth:`~repro.statemachine.base.StateMachine.tx_branches`
    hook) into per-shard prepare branches; once every branch is adopted,
    the client decides commit (all prepares succeeded) or abort and
    drives the decision branches.  Every branch is an ordinary request,
    totally ordered by its shard's sequencer and adopted under the usual
    weighted-quorum rule -- the cross-shard path adds no new consensus
    machinery, only a state machine on top of adopted outcomes.

    Parameters
    ----------
    pid:
        Client identifier.
    shard_groups:
        One server group per shard, indexed by shard id.
    router:
        The deterministic key -> shard mapping shared with the cluster.
    key_extractor:
        ``op -> keys`` hook (usually ``Machine.keys_of``).
    tx_planner:
        ``(op, txid) -> {key: branch_op}`` hook (usually
        ``Machine.tx_branches``) for cross-shard decomposition.
    route_authority:
        The cluster's authoritative epoched
        :class:`~repro.sharding.router.RoutingTable`.  When given (and
        ``router`` is this client's own copy of it), WrongShard replies
        trigger a sync-and-retry instead of surfacing an error; when
        None the client never redirects (static-routing behaviour).
    redirect_delay:
        Pause before a redirected operation is retried -- covers the
        in-flight migration window where the key is owned by no shard.
    max_redirects:
        Retry budget per logical operation; when exhausted the final
        WrongShard error is surfaced to the caller (keeps runs with a
        permanently stranded key terminating).
    """

    def __init__(
        self,
        pid: str,
        shard_groups: Sequence[Sequence[str]],
        router: Any,
        key_extractor: Callable[[Tuple[Any, ...]], Tuple[Any, ...]],
        tx_planner: Optional[
            Callable[[Tuple[Any, ...], str], Optional[Dict[Any, Tuple[Any, ...]]]]
        ] = None,
        on_adopt: Optional[Callable[[AdoptedReply], None]] = None,
        retry_interval: Optional[float] = None,
        route_authority: Optional[Any] = None,
        redirect_delay: float = 5.0,
        max_redirects: int = 100,
    ) -> None:
        groups = tuple(tuple(group) for group in shard_groups)
        if router.n_shards != len(groups):
            raise ValueError(
                f"router has {router.n_shards} shards but "
                f"{len(groups)} groups were given"
            )
        all_servers = [pid_ for group in groups for pid_ in group]
        super().__init__(pid, all_servers, on_adopt, retry_interval)
        self.shard_groups = groups
        self.router = router
        self.route_authority = route_authority
        self.redirect_delay = redirect_delay
        self.max_redirects = max_redirects
        self.key_extractor = key_extractor
        self.tx_planner = tx_planner
        self._tx_counter = itertools.count()
        self._txs: Dict[str, _CrossShardTx] = {}
        self._branch_to_tx: Dict[str, str] = {}
        #: Every physical request (single-shard ops and tx branches) and
        #: the shard it was routed to; per-shard checkers use this.
        self.routed: Dict[str, int] = {}
        #: Inverse index of :attr:`routed`, maintained at submit time so
        #: per-shard checkers do not rescan every routed request per shard.
        self._routed_by_shard: Dict[int, List[str]] = {}
        #: Per-key submission counts: the load statistic the rebalance
        #: coordinator plans from (cheap, works with tracing off).
        self.key_load: Dict[Any, int] = {}
        #: rid -> op for routed single-shard submissions, kept while the
        #: request is in flight so a WrongShard reply can be retried.
        self._op_of: Dict[str, Tuple[Any, ...]] = {}
        #: rid/txid -> redirects already spent on that logical operation.
        self._redirect_attempts: Dict[str, int] = {}
        self._redirect_pending = 0
        self.cross_shard_started = 0
        self.cross_shard_committed = 0
        self.cross_shard_aborted = 0
        self.redirects = 0

    @property
    def outstanding(self) -> int:
        """In-flight physical requests plus any tx between phases.

        A transaction always has a branch in flight between begin and
        finish (decisions are submitted in the last prepare's adoption
        event), so the second term is defensive.  Operations waiting out
        a redirect delay count too -- the driver must not conclude the
        run while a retry is pending.
        """
        if not self._txs:  # quiescence predicates poll this per event
            return len(self._pending) + self._redirect_pending
        stalled = sum(1 for tx in self._txs.values() if tx.inflight == 0)
        return len(self._pending) + stalled + self._redirect_pending

    def shards_of(self, op: Tuple[Any, ...]) -> Tuple[int, ...]:
        """The distinct shards an operation's keys map to (sorted)."""
        return self._shards_for_keys(tuple(self.key_extractor(tuple(op))))

    def _shards_for_keys(self, keys: Tuple[Any, ...]) -> Tuple[int, ...]:
        """The routing policy: keyless operations get the deterministic
        fallback shard 0, keyed ones the sorted set of their shards."""
        if not keys:
            return (0,)
        return tuple(sorted({self.router.shard_of(key) for key in keys}))

    # ------------------------------------------------------------------

    def submit(
        self, op: Tuple[Any, ...], servers: Optional[Sequence[str]] = None
    ) -> str:
        """Route by key; fan a multi-shard op out as a 2PC transaction.

        With an explicit ``servers`` group the request bypasses routing
        (used by tests and by the coordinator's own branches).
        """
        if servers is not None:
            return super().submit(op, servers)
        op = tuple(op)
        keys = tuple(self.key_extractor(op))
        load = self.key_load
        for key in keys:
            load[key] = load.get(key, 0) + 1
        shards = self._shards_for_keys(keys)
        if len(shards) == 1:
            return self.submit_to_shard(op, shards[0])
        return self._begin_cross_shard(op, shards)

    def submit_to_shard(self, op: Tuple[Any, ...], shard: int) -> str:
        """Submit ``op`` to one shard's group, recording the routing.

        The normal path routes by key; this entry point is for requests
        whose shard is chosen by the caller -- transaction decision
        branches and the rebalance coordinator's ``mig_*`` operations.
        """
        op = tuple(op)
        rid = OARClient.submit(self, op, self.shard_groups[shard])
        self.routed[rid] = shard
        self._op_of[rid] = op
        per_shard = self._routed_by_shard.get(shard)
        if per_shard is None:
            per_shard = self._routed_by_shard[shard] = []
        per_shard.append(rid)
        return rid

    def routed_to(self, shard: int) -> List[str]:
        """Physical rids (ops and tx branches) this client routed to ``shard``."""
        return list(self._routed_by_shard.get(shard, ()))

    # ------------------------------------------------------------------
    # Cross-shard two-phase commit (client as coordinator)
    # ------------------------------------------------------------------

    def _begin_cross_shard(self, op: Tuple[Any, ...], shards: Tuple[int, ...]) -> str:
        txid = f"{self.pid}-x{next(self._tx_counter)}"
        branches = None if self.tx_planner is None else self.tx_planner(op, txid)
        if branches is None:
            raise ValueError(
                f"operation {op!r} spans shards {shards} but has no "
                f"cross-shard decomposition (tx_branches returned None)"
            )
        per_shard: Dict[int, List[Tuple[Any, ...]]] = {}
        for key, branch_op in branches.items():
            per_shard.setdefault(self.router.shard_of(key), []).append(branch_op)
        tx = _CrossShardTx(txid, op, self.env.now, tuple(sorted(per_shard)))
        self._txs[txid] = tx
        self.cross_shard_started += 1
        self.env.trace("tx_begin", txid=txid, op=op, shards=tx.shards)
        for shard in sorted(per_shard):
            for branch_op in per_shard[shard]:
                rid = self.submit_to_shard(branch_op, shard)
                self._branch_to_tx[rid] = txid
                tx.prepare_rids[rid] = shard
                tx.inflight += 1
        return txid

    # ------------------------------------------------------------------
    # WrongShard redirects (live rebalancing, repro.sharding.rebalance)
    # ------------------------------------------------------------------

    @staticmethod
    def _wrong_shard_of(value: Any) -> Optional[WrongShard]:
        """The WrongShard payload of a failed result, else None."""
        if (
            isinstance(value, OpResult)
            and not value.ok
            and isinstance(value.value, WrongShard)
        ):
            return value.value
        return None

    def _schedule_redirect(
        self, old_id: str, op: Tuple[Any, ...], submit_time: float
    ) -> bool:
        """Sync-and-retry ``op`` after a WrongShard outcome on ``old_id``.

        Returns False (caller surfaces the error) when redirects are
        disabled or the retry budget for this logical operation is
        spent.  The retry happens ``redirect_delay`` later under a fresh
        request id that inherits the original submission time, so
        client-perceived latency spans the whole redirect chain.
        """
        attempts = self._redirect_attempts.pop(old_id, 0)
        if self.route_authority is None or attempts >= self.max_redirects:
            return False
        self.redirects += 1
        self.env.trace(
            "redirect",
            rid=old_id,
            op=op,
            attempt=attempts + 1,
            table_epoch=self.route_authority.epoch,
        )
        self._redirect_pending += 1

        def retry() -> None:
            self._redirect_pending -= 1
            self.router.sync_from(self.route_authority)
            new_id = self.submit(op)
            # submit() counted the op's keys into key_load again, but a
            # retry is not new demand: left in, a key under migration
            # (the one case that redirects) would look ever hotter to
            # the rebalance planner and invite move oscillation.
            for key in self.key_extractor(op):
                self.key_load[key] -= 1
            self._redirect_attempts[new_id] = attempts + 1
            pending = self._pending.get(new_id)
            if pending is not None:
                pending.submit_time = submit_time
            else:
                tx = self._txs.get(new_id)
                if tx is not None:
                    tx.submit_time = submit_time

        self.env.set_timer(self.redirect_delay, retry)
        return True

    # ------------------------------------------------------------------

    def _record_adoption(self, adopted: AdoptedReply) -> None:
        txid = self._branch_to_tx.pop(adopted.rid, None)
        if txid is None:
            op = self._op_of.pop(adopted.rid, None)
            if (
                op is not None
                and self._wrong_shard_of(adopted.value) is not None
                and self._schedule_redirect(adopted.rid, op, adopted.submit_time)
            ):
                return  # retried; never surfaced to the driver
            self._redirect_attempts.pop(adopted.rid, None)
            super()._record_adoption(adopted)
            return
        self._op_of.pop(adopted.rid, None)
        tx = self._txs[txid]
        tx.inflight -= 1
        self.env.trace(
            "tx_branch_adopt", txid=txid, rid=adopted.rid, phase=tx.phase
        )
        if tx.phase == "prepare":
            tx.prepared[adopted.rid] = adopted
            if tx.all_prepared:
                self._decide(tx)
        else:
            tx.decided[adopted.rid] = adopted
            if len(tx.decided) == len(tx.decision_rids):
                self._finish_tx(tx)

    def _decide(self, tx: _CrossShardTx) -> None:
        commit = tx.prepare_ok
        tx.phase = "commit" if commit else "abort"
        # Commit goes to every participant; abort only to shards whose
        # prepare took a hold (a failed prepare left nothing to release).
        if commit:
            targets = set(tx.shards)
        else:
            targets = {
                tx.prepare_rids[rid]
                for rid, adopted in tx.prepared.items()
                if isinstance(adopted.value, OpResult) and adopted.value.ok
            }
        self.env.trace(
            "tx_decide",
            txid=tx.txid,
            outcome=tx.phase,
            shards=tuple(sorted(targets)),
        )
        decision_op = ("tx_commit" if commit else "tx_abort", tx.txid)
        for shard in sorted(targets):
            rid = self.submit_to_shard(decision_op, shard)
            self._branch_to_tx[rid] = tx.txid
            tx.decision_rids.add(rid)
            tx.inflight += 1
        if not targets:
            self._finish_tx(tx)

    def _finish_tx(self, tx: _CrossShardTx) -> None:
        del self._txs[tx.txid]
        committed = tx.phase == "commit"
        if committed:
            self.cross_shard_committed += 1
            value = OpResult(ok=True, value=("committed",) + tx.op)
        else:
            self.cross_shard_aborted += 1
            reasons = "; ".join(
                a.value.error
                for a in tx.prepared.values()
                if isinstance(a.value, OpResult) and not a.value.ok
            )
            value = OpResult(ok=False, error=f"tx aborted: {reasons}")
            # A prepare that failed with WrongShard means the routing
            # was stale: the abort above released every hold the stale
            # plan took, so the whole transaction can safely be retried
            # against the refreshed table (it may re-plan as a
            # different shard set, or even as a single-shard op).
            stale = any(
                self._wrong_shard_of(a.value) is not None
                for a in tx.prepared.values()
            )
            if stale and self._schedule_redirect(tx.txid, tx.op, tx.submit_time):
                self.env.trace(
                    "tx_adopt",
                    txid=tx.txid,
                    outcome=tx.phase,
                    shards=tx.shards,
                    latency=self.env.now - tx.submit_time,
                )
                return  # retried; the aborted attempt is not surfaced
        self._redirect_attempts.pop(tx.txid, None)
        branch_adoptions = list(tx.prepared.values()) + list(tx.decided.values())
        adopted = AdoptedReply(
            rid=tx.txid,
            value=value,
            position=-1,
            epoch=-1,
            weight=(),
            conservative=all(a.conservative for a in branch_adoptions),
            submit_time=tx.submit_time,
            adopt_time=self.env.now,
        )
        self.env.trace(
            "tx_adopt",
            txid=tx.txid,
            outcome=tx.phase,
            shards=tx.shards,
            latency=adopted.latency,
        )
        super()._record_adoption(adopted)
