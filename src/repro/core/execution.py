"""Conflict-aware parallel execution engine for the replica apply path.

Through PR 4 a replica *executed* commands for free and serially: the
server called ``apply_with_undo`` inline at delivery time.  Once ordering
(``order_cost``) and reads (``read_cost``) carry service models, command
execution is the next un-modeled bottleneck.  This module refactors it
into an explicit scheduler, following Optimistic Parallel State-Machine
Replication (Marandi & Pedone, PAPERS.md): commands on disjoint state may
execute concurrently at a replica without breaking determinism, because
disjoint commands commute.

The engine owns ``exec_lanes`` parallel worker lanes, each a serial
pipeline charging ``exec_cost`` simulated time per operation (mirroring
the ``order_cost``/``read_cost`` service models), scaled per op by the
machine's :meth:`~repro.statemachine.base.StateMachine.exec_cost_of`
weight (migrations install whole key states, ``keys`` scans the store;
the default weight 1.0 keeps the flat model).  Submitted operations
are dependency-chained by their *conflict footprint*
(:meth:`~repro.statemachine.base.StateMachine.conflict_footprint`, keyed
off ``keys_of``): an op waits for the latest earlier op whose footprint
intersects its own; ops with disjoint footprints run in whatever lanes
are free.  A ``None`` footprint is *global* and fences the whole
pipeline.

Determinism and undo discipline:

* The **delivery order is fixed before execution**: the server appends to
  ``O_delivered`` (and pushes a *pending* undo entry) at delivery time;
  the engine only decides *when* the state mutation happens.  Conflicting
  ops execute in delivered order (the dependency chains), and disjoint
  ops commute, so the final state -- and every individual result -- is
  byte-identical to serial execution.
* State mutates at service **completion** (one simulator event), never at
  service start.  An op that is still in a lane has therefore not touched
  the machine, which is what makes Opt-undeliver's lane fencing trivial:
  :meth:`ExecutionEngine.cancel` detaches a not-yet-executed op with no
  state to revert, and an op that *did* execute has -- by chain order --
  no conflicting successor mid-flight, so its undo closure (resolved into
  the :class:`~repro.statemachine.undo.UndoLog` at completion) can run
  inline.
* Reads (:meth:`submit_read`) wait for in-flight conflicting writes on
  their keys but never occupy a lane, never fence later writes, and never
  fence each other: the state a read observes is always the machine after
  some delivery-order prefix of each key it touches.

``exec_cost <= 0`` is the **inline fast path**: ``submit`` applies the
operation synchronously and calls the completion callback before
returning, reproducing the pre-engine behaviour (and its trace digests)
exactly -- no entries, no timers, no allocation beyond the call itself.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.statemachine.base import StateMachine
from repro.statemachine.undo import UndoLog

#: Completion callback: (result, lane) -> None.  ``lane`` is the worker
#: lane that serviced the op (0 on the inline fast path).
OnDone = Callable[[Any, int], None]


class _Entry:
    """One scheduled operation (or fenced read) in the engine."""

    __slots__ = (
        "rid",
        "op",
        "footprint",
        "weight",
        "seq",
        "waiting",
        "dependents",
        "on_done",
        "undoable",
        "inverse",
        "read",
        "done",
        "lane",
        "timer",
        "prev",
        "refence",
    )

    def __init__(
        self,
        rid: Optional[str],
        op: Tuple[Any, ...],
        footprint: Optional[Tuple[Any, ...]],
        on_done: Any,
        undoable: bool,
        read: bool = False,
        weight: float = 1.0,
    ) -> None:
        self.rid = rid
        self.op = op
        self.footprint = footprint
        self.weight = weight
        self.seq = -1  # submission order, stamped by _link
        self.waiting = 0
        self.dependents: List[_Entry] = []
        self.on_done = on_done
        self.undoable = undoable
        #: Opt-undeliver inverse closure; when set, completion runs this
        #: instead of applying ``op`` (the op names what is being undone
        #: and prices the lane occupancy via ``exec_cost_of``).
        self.inverse: Optional[Callable[[], None]] = None
        self.read = read
        self.done = False
        self.lane: int = -1
        self.timer: Any = None
        #: Read-only entries: one of this read's dependencies was
        #: *cancelled* rather than completed, so the dependency may have
        #: subsumed older live writes -- re-check the tails before
        #: firing.
        self.refence = False
        #: key -> the tail this entry displaced when it was linked (the
        #: ``None`` key chains global entries).  Only consulted when a
        #: *cancelled* tail must be walked past to find the newest live
        #: predecessor; cleared on normal completion (every predecessor
        #: is then complete too, so nothing behind is ever needed).
        self.prev: Dict[Any, Optional["_Entry"]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("lane" if self.timer else "wait")
        return f"<_Entry {self.rid or self.op!r} {state}>"


class ExecutionEngine:
    """Schedules state-machine executions over conflict-chained lanes.

    Parameters
    ----------
    machine:
        The replica's deterministic state machine; its class's
        ``conflict_footprint`` defines the conflict relation.
    lanes:
        Number of parallel worker lanes (>= 1).
    cost:
        Service time per operation; ``0`` selects the inline fast path.
    timer:
        ``timer(delay, callback) -> handle`` with a ``cancel()`` method;
        the server passes its environment's ``set_timer`` (which also
        gives crash-stop suppression for free), standalone users pass
        ``Simulator.schedule``.
    undo_log:
        Where optimistic executions register their inverses (pending at
        submit, resolved at completion).  May be omitted only when every
        ``submit`` uses ``undoable=False`` (settled work and reads);
        an undoable submission without a log is a programming error and
        fails loudly.
    """

    def __init__(
        self,
        machine: StateMachine,
        lanes: int = 1,
        cost: float = 0.0,
        timer: Optional[Callable[[float, Callable[[], None]], Any]] = None,
        undo_log: Optional[UndoLog] = None,
    ) -> None:
        if lanes < 1:
            raise ValueError("exec_lanes must be >= 1")
        if cost < 0:
            raise ValueError("exec_cost must be >= 0")
        self.machine = machine
        self.lanes = lanes
        self.cost = cost
        self._timer = timer
        self.undo_log = undo_log
        self._conflict_footprint = type(machine).conflict_footprint
        self._exec_cost_of = type(machine).exec_cost_of
        # rid -> live undoable entry (cancel's lookup; completed entries
        # leave the map, so "absent" means "already executed").
        self._by_rid: Dict[str, _Entry] = {}
        # key -> newest entry whose footprint contains the key (kept
        # even once done: the walk skips done entries via their `prev`
        # chains).  Never cleared -- global entries ride a separate
        # chain (`_global_tail`, linked by the None key) and each key's
        # dependency resolves to the newest *live* entry across both
        # chains, by submission sequence.
        self._tails: Dict[Any, _Entry] = {}
        self._global_tail: Optional[_Entry] = None
        self._seq = 0
        self._ready: Deque[_Entry] = deque()
        self._free_lanes: List[int] = list(range(lanes - 1, -1, -1))
        self._live = 0  # write entries not yet completed/cancelled
        self._in_service = 0
        # Counters (tests, benchmarks, introspection).
        self.executed = 0
        self.inverses_executed = 0
        self.cancelled_in_flight = 0
        self.max_concurrency = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inline(self) -> bool:
        """True when executions run synchronously at submit (cost 0)."""
        return self.cost <= 0.0

    @property
    def backlog(self) -> int:
        """Write operations delivered but not yet executed (or cancelled)."""
        return self._live

    @property
    def idle(self) -> bool:
        return self._live == 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        rid: str,
        op: Tuple[Any, ...],
        on_done: OnDone,
        undoable: bool,
    ) -> None:
        """Schedule one delivered operation for execution.

        ``undoable=True`` is the optimistic path: a pending entry is
        pushed onto the undo log now (keeping it aligned with the
        delivery order) and resolved with the real inverse at
        completion.  ``undoable=False`` is settled (A-delivered) work.
        ``on_done(result, lane)`` fires at completion -- synchronously,
        before ``submit`` returns, on the inline fast path.
        """
        if self.cost <= 0.0:
            if undoable:
                result, undo = self.machine.apply_with_undo(op)
                self.undo_log.push(rid, undo)
            else:
                result = self.machine.apply(op)
            self.executed += 1
            on_done(result, 0)
            return
        entry = _Entry(
            rid, op, self._footprint(op), on_done, undoable,
            weight=self._exec_cost_of(op),
        )
        if undoable:
            self.undo_log.push_pending(rid)
            self._by_rid[rid] = entry
        self._live += 1
        self._link(entry)
        if entry.waiting == 0:
            self._ready.append(entry)
        self._pump()

    def submit_inverse(
        self,
        rid: str,
        op: Tuple[Any, ...],
        undo: Callable[[], None],
        on_done: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Charge an Opt-undeliver inverse through the lane model.

        Undoing an executed operation is real work: the inverse occupies
        an execution lane for ``exec_cost x exec_cost_of(op)``, exactly
        like the forward execution did, instead of running free at the
        phase-2 instant.  ``op`` is the *forward* operation being undone
        -- it provides the conflict footprint (inverses submitted in
        reverse delivery order chain correctly among themselves, and New
        redos submitted afterwards chain behind them) and the cost
        weight.  Inverse entries are never undoable, never registered
        for :meth:`cancel`, and count in :attr:`backlog` so quiescence
        waits for them.

        On the inline fast path the inverse runs synchronously (the
        pre-engine behaviour, byte-identical) and ``on_done`` -- which
        exists so callers can trace the charged completion -- does not
        fire.
        """
        if self.cost <= 0.0:
            undo()
            return
        entry = _Entry(
            rid, op, self._footprint(op),
            (lambda _result, lane: on_done(lane))
            if on_done is not None
            else (lambda _result, lane: None),
            undoable=False,
            weight=self._exec_cost_of(op),
        )
        entry.inverse = undo
        self._live += 1
        self._link(entry)
        if entry.waiting == 0:
            self._ready.append(entry)
        self._pump()

    def submit_read(self, op: Tuple[Any, ...], on_ready: Callable[[], None]) -> None:
        """Run ``on_ready`` once no conflicting write is in flight.

        Fires synchronously when nothing conflicts (always, on the
        inline fast path).  Reads take no lane and charge no ``cost`` --
        the read service model (``read_cost``) is charged upstream --
        and they never delay writes or other reads.
        """
        if self._live == 0:
            on_ready()
            return
        footprint = self._footprint(op)
        deps = self._deps_for(footprint)
        if not deps:
            on_ready()
            return
        entry = _Entry(None, op, footprint, on_ready, undoable=False, read=True)
        entry.waiting = len(deps)
        for dep in deps:
            dep.dependents.append(entry)

    # ------------------------------------------------------------------
    # Dependency linking
    # ------------------------------------------------------------------

    def _footprint(self, op: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        """The op's conflict footprint as a *sorted* tuple (None = global).

        Sorting (by repr, which totally orders mixed key types) makes
        linking order independent of set-iteration order, which hash
        randomization would otherwise vary across processes -- the
        engine must schedule identically for identical seeds.
        """
        keys = self._conflict_footprint(op)
        if keys is None:
            return None
        return tuple(sorted(keys, key=repr))

    def _live_keyed(self, key: Any) -> Optional[_Entry]:
        """Newest live entry on ``key``'s chain (walks past done ones)."""
        tail = self._tails.get(key)
        while tail is not None and tail.done:
            tail = tail.prev.get(key)
        return tail

    def _live_global(self) -> Optional[_Entry]:
        """Newest live global entry (walks past done ones)."""
        tail = self._global_tail
        while tail is not None and tail.done:
            tail = tail.prev.get(None)
        return tail

    def _newest_conflicting(self, key: Any) -> Optional[_Entry]:
        """The newest live entry conflicting on ``key``.

        Two chains can conflict on a key -- the key's own chain and the
        global chain -- and either may carry the newer entry; the newer
        one (by submission sequence) transitively covers the older, so
        it alone is the dependency.  Done entries (completed *or*
        cancelled) are walked past on both chains, which is what keeps
        an Opt-undelivered suffix from hiding still-live older writes.
        """
        keyed = self._live_keyed(key)
        glob = self._live_global()
        if keyed is None:
            return glob
        if glob is None:
            return keyed
        return keyed if keyed.seq > glob.seq else glob

    def _deps_for(self, footprint: Optional[Tuple[Any, ...]]) -> List[_Entry]:
        deps: List[_Entry] = []
        if footprint is None:
            # Global: wait for every live chain.  Every live keyed entry
            # is an ancestor of the newest live entry on one of its
            # keys' chains (tails are never cleared), so the distinct
            # live chain heads plus the live global tail transitively
            # cover everything in flight.
            seen = set()
            for key in self._tails:
                head = self._live_keyed(key)
                if head is not None and id(head) not in seen:
                    seen.add(id(head))
                    deps.append(head)
            glob = self._live_global()
            if glob is not None and id(glob) not in seen:
                deps.append(glob)
            return deps
        for key in footprint:
            head = self._newest_conflicting(key)
            if head is not None and head not in deps:
                deps.append(head)
        return deps

    def _link(self, entry: _Entry) -> None:
        self._seq += 1
        entry.seq = self._seq
        deps = self._deps_for(entry.footprint)
        entry.waiting = len(deps)
        for dep in deps:
            dep.dependents.append(entry)
        if entry.footprint is None:
            entry.prev[None] = self._global_tail
            self._global_tail = entry
            return
        for key in entry.footprint:
            entry.prev[key] = self._tails.get(key)
            self._tails[key] = entry

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        ready = self._ready
        free = self._free_lanes
        while free and ready:
            entry = ready.popleft()
            if entry.done:
                continue  # cancelled while queued
            lane = free.pop()
            entry.lane = lane
            self._in_service += 1
            if self._in_service > self.max_concurrency:
                self.max_concurrency = self._in_service
            entry.timer = self._timer(
                self.cost * entry.weight, lambda e=entry: self._complete(e)
            )

    def _complete(self, entry: _Entry) -> None:
        entry.timer = None
        if entry.inverse is not None:
            entry.inverse()
            result = None
            self.inverses_executed += 1
        elif entry.undoable:
            result, undo = self.machine.apply_with_undo(entry.op)
            # The log exists: undoable submissions require one (the
            # matching push_pending already succeeded at submit).
            self.undo_log.resolve(entry.rid, undo)
            self.executed += 1
        else:
            result = self.machine.apply(entry.op)
            self.executed += 1
        self._in_service -= 1
        self._free_lanes.append(entry.lane)
        ready_reads = self._finish(entry)
        entry.on_done(result, entry.lane)
        for read in ready_reads:
            self._fire_read(read)
        self._pump()

    def _finish(self, entry: _Entry) -> List[_Entry]:
        """Mark ``entry`` done and release its dependents.

        Returns the reads that became runnable (fired by the caller,
        after the entry's own completion callback).
        """
        entry.done = True
        # Identity-guarded: an *inverse* entry shares its rid with the
        # forward op it undoes, and that rid may have been re-delivered
        # (and re-registered) in a later epoch while the inverse was
        # still in a lane -- popping blindly would orphan the live entry.
        if entry.rid is not None and self._by_rid.get(entry.rid) is entry:
            del self._by_rid[entry.rid]
        self._live -= 1
        # Every predecessor of a *completed* entry has completed (chain
        # order), so nothing will ever need to walk past this entry.
        entry.prev.clear()
        ready_reads: List[_Entry] = []
        for dependent in entry.dependents:
            if dependent.done:
                continue
            dependent.waiting -= 1
            if dependent.waiting == 0:
                if dependent.read:
                    ready_reads.append(dependent)
                else:
                    self._ready.append(dependent)
        entry.dependents = []
        return ready_reads

    # ------------------------------------------------------------------
    # Opt-undeliver fencing
    # ------------------------------------------------------------------

    def cancel(self, rid: str) -> bool:
        """Fence ``rid`` for Opt-undeliver.

        Returns True when the op already executed -- the caller reverts
        it through the undo log, and chain order guarantees no
        conflicting successor is mid-flight.  Returns False when the op
        never ran: it is detached (its completion timer cancelled, its
        dependents released), so there is no state to revert and the
        undo log's entry for it is still pending (a no-op to pop).
        """
        if self.cost <= 0.0:
            return True
        entry = self._by_rid.pop(rid, None)
        if entry is None:
            return True  # completed: revert via the undo log
        entry.done = True
        self.cancelled_in_flight += 1
        if entry.timer is not None:  # in service: the mutation never happened
            entry.timer.cancel()
            entry.timer = None
            self._in_service -= 1
            self._free_lanes.append(entry.lane)
        self._live -= 1
        # Keep entry.prev: a live *older* entry on these keys may still
        # need to be found by later linkers walking past this cancel.
        ready_reads: List[_Entry] = []
        for dependent in entry.dependents:
            if dependent.done:
                continue
            if dependent.read:
                dependent.refence = True
            dependent.waiting -= 1
            if dependent.waiting == 0:
                if dependent.read:
                    ready_reads.append(dependent)
                else:
                    self._ready.append(dependent)
        entry.dependents = []
        for read in ready_reads:
            self._fire_read(read)
        self._pump()
        return False

    def _fire_read(self, read: _Entry) -> None:
        """Run a released read, re-fencing it first if a cancel freed it.

        A dependency that was *cancelled* (not completed) may have
        subsumed older live writes on the read's keys -- the read only
        ever waited for the newest tail per key.  Such a read re-checks
        the live tails and re-links if anything conflicting is still in
        flight; a read released purely by completions fires directly.
        """
        if not read.refence:
            read.on_done()
            return
        read.refence = False
        deps = self._deps_for(read.footprint)
        if not deps:
            read.on_done()
            return
        read.waiting = len(deps)
        for dep in deps:
            dep.dependents.append(read)
