"""Admission control: overload results, traffic classes, token buckets.

The open-loop harness (``repro.workload.openloop``) can offer load far
past the sequencer's service rate.  Without admission control the
sequencer's unordered backlog grows without bound, every queued request
ages before it is even ordered, and measured latency diverges -- the
classic metastable overload.  This module holds the three small pieces
the rest of the plane is built from:

* :class:`Overloaded` -- the deterministic shed result.  A shed request
  is *answered*, not dropped: the sequencer sends a
  :class:`~repro.core.messages.ShedNotice` and the client surfaces an
  ``OpResult(ok=False, value=Overloaded(...))`` through the normal
  adoption callback (mirroring the ``WrongShard`` error-result pattern),
  so callers and drivers observe shedding synchronously and can back
  off.
* :func:`traffic_class` -- the bulkhead classifier.  Control-plane
  operations (migration steps, hot-key splits, cross-shard transaction
  steps) are never shed: they are few, they hold escrow/lock state whose
  abandonment would wedge recovery, and keeping them flowing during a
  data-plane flood is exactly what bulkheads are for.  Reads are bounded
  by their own queue (``read_queue_limit``) on the replica-local path,
  so a read storm cannot starve writes and vice versa.
* :class:`TokenBucket` -- client-side throttling with multiplicative
  backoff.  The bucket refills at ``rate`` tokens per simulated time
  unit up to ``burst``; each :class:`Overloaded` result freezes refill
  for a window that doubles per consecutive strike (capped), so a
  flooding client converges to the server's advertised capacity instead
  of hammering the shed path.

Everything here is deterministic and allocation-light; none of it
imports protocol modules, so both the core (server/client) and the
workload/analysis layers can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

#: Operation-name prefixes routed to the "control" bulkhead class.
#: These are the escrow-style multi-step protocols (live migration,
#: hot-key splitting, cross-shard 2PC): shedding one mid-flight step
#: would strand frozen ownership or locked keys until operator action,
#: so the admission queue never sheds them.
CONTROL_PREFIXES: Tuple[str, ...] = ("mig_", "split_", "tx_")


def traffic_class(op: Tuple[Any, ...]) -> str:
    """Classify an operation tuple into its bulkhead class.

    Returns ``"control"`` for migration/split/transaction steps and
    ``"write"`` for everything else that reaches the ordered path.
    Reads never reach this classifier on the replica-local path (they
    have their own bounded queue); when ``read_mode="sequencer"`` routes
    reads through total order they are deliberately classed as writes --
    they consume the same ordering capacity.
    """
    if not op:
        return "write"
    head = op[0]
    if isinstance(head, str) and head.startswith(CONTROL_PREFIXES):
        return "control"
    return "write"


@dataclass(frozen=True)
class Overloaded:
    """Deterministic shed payload: *why* the request was refused.

    Carried as the ``value`` of a failed ``OpResult`` so application
    code can distinguish "the system refused under load" (retry later,
    with backoff) from a semantic failure.  ``queue``/``limit`` are the
    queue depth and bound at the moment of the shed decision -- the
    advertised pressure a client-side controller can react to.
    """

    cls: str  #: bulkhead class that was shed ("write" or "read")
    queue: int  #: queue depth observed at the shed decision
    limit: int  #: the configured bound that was hit


def is_overloaded(value: Any) -> bool:
    """True when an adopted value is a shed ``OpResult``.

    Accepts either the raw :class:`Overloaded` payload or an
    ``OpResult``-shaped object wrapping one (anything with a ``value``
    attribute), so drivers and checkers can test adopted replies without
    caring which layer unwrapped the result.
    """
    if isinstance(value, Overloaded):
        return True
    return isinstance(getattr(value, "value", None), Overloaded)


class TokenBucket:
    """Token bucket with multiplicative-backoff freeze windows.

    Plain bucket semantics: ``try_acquire(now)`` lazily refills at
    ``rate`` tokens/unit (capped at ``burst``) and spends one token, or
    returns ``False`` and counts a throttle.  Overload feedback hooks:

    * :meth:`penalize` (call on an :class:`Overloaded` result) empties
      the bucket and freezes refill for ``backoff_base * 2**(strikes-1)``
      time units, capped at ``backoff_cap`` -- consecutive sheds back
      off exponentially;
    * :meth:`restore` (call on a successful adoption) clears the strike
      count, so a recovered server sees full-rate traffic again.

    Deterministic: no wall-clock reads; the caller supplies ``now``
    (simulated time).  Counters ``acquired`` / ``throttled`` feed
    :func:`repro.analysis.checkers.check_admission_accounting`.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 8.0,
        backoff_base: float = 5.0,
        backoff_cap: float = 80.0,
    ) -> None:
        if rate <= 0:
            raise ValueError("token rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate = rate
        self.burst = burst
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.tokens = burst
        self.acquired = 0
        self.throttled = 0
        self.strikes = 0
        self._stamp = 0.0
        self._frozen_until = 0.0

    def _refill(self, now: float) -> None:
        if now < self._frozen_until:
            # Frozen: time passing accrues nothing (the stamp advances so
            # the freeze window itself never converts into tokens later).
            self._stamp = now
            return
        elapsed = now - self._stamp
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, now: float) -> bool:
        """Spend one token if available; count a throttle otherwise."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.acquired += 1
            return True
        self.throttled += 1
        return False

    def penalize(self, now: float) -> None:
        """React to an :class:`Overloaded` result: drain + freeze refill."""
        self.strikes += 1
        window = min(self.backoff_cap, self.backoff_base * 2 ** (self.strikes - 1))
        self._frozen_until = max(self._frozen_until, now + window)
        self.tokens = 0.0
        self._stamp = now

    def restore(self) -> None:
        """React to a successful adoption: clear the backoff state."""
        self.strikes = 0

    @property
    def frozen_until(self) -> float:
        """End of the current backoff window (for tests/telemetry)."""
        return self._frozen_until
