"""The paper's primary contribution: the Optimistic Active Replication
algorithm (client, server, and the Cnsv-order conservative ordering).

Public entry points:

* :class:`~repro.core.server.OARServer` / :class:`~repro.core.server.OARConfig`
* :class:`~repro.core.client.OARClient` / :class:`~repro.core.client.AdoptedReply`
* :func:`~repro.core.cnsv_order.compute_bad_new` (Fig. 7, pure function)
* :class:`~repro.core.sequences.MessageSequence` and the Section 5.1
  operators (⊕ ⊖ ⊓ ⊎)
"""

from repro.core.client import AdoptedReply, OARClient, ShardedOARClient
from repro.core.cnsv_order import (
    CnsvDecision,
    CnsvOrderResult,
    CnsvProposal,
    compute_bad_new,
    decision_from_vector,
)
from repro.core.messages import PhaseII, Reply, Request, SeqOrder
from repro.core.sequences import (
    EMPTY,
    MessageSequence,
    as_sequence,
    common_prefix,
    merge_dedup,
)
from repro.core.server import OARConfig, OARServer

__all__ = [
    "AdoptedReply",
    "CnsvDecision",
    "CnsvOrderResult",
    "CnsvProposal",
    "EMPTY",
    "MessageSequence",
    "OARClient",
    "OARConfig",
    "OARServer",
    "PhaseII",
    "Reply",
    "Request",
    "SeqOrder",
    "ShardedOARClient",
    "as_sequence",
    "common_prefix",
    "compute_bad_new",
    "decision_from_vector",
    "merge_dedup",
]
