"""Wire-level message types of the OAR protocol.

All messages are frozen dataclasses: hashable, comparable, safe to put in
sets and to pickle for the TCP runtime.  Client operations are plain
tuples (e.g. ``("push", "x")``) so that they are deterministic and
serializable without a registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple


@dataclass(frozen=True, slots=True)
class Request:
    """A client request, R-multicast to the server group Π (Fig. 5, line 2).

    ``rid`` is globally unique (client id + client-local counter).
    ``op`` is the deterministic state-machine operation tuple.
    """

    rid: str
    client: str
    op: Tuple[Any, ...]

    def __repr__(self) -> str:
        return f"Request({self.rid}, {self.op})"


@dataclass(frozen=True, slots=True)
class Reply:
    """A server's reply to a request (Fig. 6, lines 19 and 29).

    ``weight`` is the set of servers that endorse this reply (Section 5.2):
    ``{s}`` for the sequencer's own optimistic reply, ``{p, s}`` for
    another server's optimistic reply, and the whole group Π for a
    conservative (A-delivered) reply.

    ``position`` is the global processing order of the request, the
    "reply number" used throughout the paper's proofs (Appendix A).
    ``value`` is the actual state-machine result.
    """

    rid: str
    value: Any
    position: int
    weight: FrozenSet[str]
    epoch: int
    conservative: bool = False

    def __repr__(self) -> str:
        kind = "A" if self.conservative else "opt"
        return (
            f"Reply({self.rid}, value={self.value!r}, pos={self.position}, "
            f"W={sorted(self.weight)}, k={self.epoch}, {kind})"
        )


@dataclass(frozen=True, slots=True)
class SeqOrder:
    """The sequencer's ordering message ``(k, O_notdelivered)`` (Fig. 6, line 10)."""

    epoch: int
    rids: Tuple[str, ...]

    def __repr__(self) -> str:
        return f"SeqOrder(k={self.epoch}, {{{';'.join(self.rids)}}})"


@dataclass(frozen=True, slots=True)
class PhaseII:
    """The ``(k, PhaseII)`` notification (Fig. 6, line 21).

    ``reason`` distinguishes suspicion-triggered phase changes from the
    periodic garbage-collection variant suggested in the Remark of
    Section 5.3 (it does not affect the protocol, only the traces).
    """

    epoch: int
    reason: str = "suspicion"

    def __repr__(self) -> str:
        return f"PhaseII(k={self.epoch}, {self.reason})"
