"""Wire-level message types of the OAR protocol.

All messages are frozen dataclasses: hashable, comparable, safe to put in
sets and to pickle for the TCP runtime.  Client operations are plain
tuples (e.g. ``("push", "x")``) so that they are deterministic and
serializable without a registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple


@dataclass(frozen=True, slots=True)
class Request:
    """A client request, R-multicast to the server group Π (Fig. 5, line 2).

    ``rid`` is globally unique (client id + client-local counter).
    ``op`` is the deterministic state-machine operation tuple.
    """

    rid: str
    client: str
    op: Tuple[Any, ...]

    def __repr__(self) -> str:
        return f"Request({self.rid}, {self.op})"


@dataclass(frozen=True, slots=True)
class Reply:
    """A server's reply to a request (Fig. 6, lines 19 and 29).

    ``weight`` is the set of servers that endorse this reply (Section 5.2):
    ``{s}`` for the sequencer's own optimistic reply, ``{p, s}`` for
    another server's optimistic reply, and the whole group Π for a
    conservative (A-delivered) reply.

    ``position`` is the global processing order of the request, the
    "reply number" used throughout the paper's proofs (Appendix A).
    ``value`` is the actual state-machine result.

    ``slot`` is the *sequencer-assigned* epoch slot the replying replica
    learned from the :class:`SeqOrder` that carried this rid (``None``
    on conservative replies and on replies no order message backs).
    Unlike ``position`` -- which is replica-local and legitimately skews
    when a replica misses an order message under loss -- the slot is a
    claim about what the sequencer *said*, so two replies disagreeing on
    the (epoch, slot) of a rid is evidence of sequencer equivocation,
    never of benign message loss.  Clients cross-check these order
    certificates; see ``OARClient._record_order_certificate``.
    """

    rid: str
    value: Any
    position: int
    weight: FrozenSet[str]
    epoch: int
    conservative: bool = False
    slot: Optional[int] = None

    def __repr__(self) -> str:
        kind = "A" if self.conservative else "opt"
        return (
            f"Reply({self.rid}, value={self.value!r}, pos={self.position}, "
            f"W={sorted(self.weight)}, k={self.epoch}, {kind})"
        )


@dataclass(frozen=True, slots=True)
class ReadRequest:
    """A replica-local read (never ordered by the sequencer).

    Sent point-to-point to one replica (optimistic read mode) or to the
    whole group (conservative mode); the replica executes the read-only
    operation against its current state -- the adopted prefix plus its
    optimistic suffix -- and answers with a :class:`ReadReply` without
    involving the ordering pipeline.  ``rid`` lives in its own namespace
    (``<client>-r<n>``) so read ids never collide with ordered requests.

    ``round`` counts the client's polling rounds for this rid (bumped on
    every retransmit/re-poll) and is echoed in the reply: a conservative
    quorum must form among *same-round* replies only, or a stale reply
    from a superseded round could combine with fresh ones into a
    majority no single instant ever held.
    """

    rid: str
    client: str
    op: Tuple[Any, ...]
    round: int = 0

    def __repr__(self) -> str:
        return f"ReadRequest({self.rid}, {self.op})"


@dataclass(frozen=True, slots=True)
class ReadReply:
    """A replica's answer to a :class:`ReadRequest`.

    ``position`` is the replica's full delivery position when the read
    executed (``|A_delivered| + |O_delivered|``); ``settled`` is the
    length of the conservatively settled prefix alone.  ``opt_depth =
    position - settled`` is how much of the observed state was still
    optimistic -- the client tags adoptions with it so staleness is
    measurable after the fact.
    """

    rid: str
    value: Any
    position: int
    settled: int
    epoch: int
    round: int = 0

    def __repr__(self) -> str:
        return (
            f"ReadReply({self.rid}, value={self.value!r}, pos={self.position}, "
            f"settled={self.settled}, k={self.epoch}, round={self.round})"
        )


@dataclass(frozen=True, slots=True)
class ShedNotice:
    """The sequencer's refusal under overload: a deterministic answer.

    Sent point-to-point to the client when the admission queue (writes)
    or the read queue (replica-local reads) is at its configured bound.
    The request is *not* ordered; the client surfaces an
    ``OpResult(ok=False, value=Overloaded(cls, queue, limit))`` through
    the normal adoption callback so the caller observes the refusal
    synchronously and can back off.  ``queue``/``limit`` advertise the
    pressure at the decision point (see ``repro.core.admission``).
    """

    rid: str
    cls: str
    queue: int
    limit: int

    def __repr__(self) -> str:
        return f"ShedNotice({self.rid}, {self.cls}, q={self.queue}/{self.limit})"


@dataclass(frozen=True, slots=True)
class SeqOrder:
    """The sequencer's ordering message ``(k, O_notdelivered)`` (Fig. 6, line 10).

    ``start`` is the epoch slot of ``rids[0]``: the sequencer numbers
    every rid it orders within an epoch consecutively, so a replica can
    detect a *gap* (a lost order message) instead of silently adopting
    a shifted optimistic order, and each rid's slot (``start + index``)
    is a loss-invariant order certificate for equivocation detection.
    Under FIFO benign links ``start`` always equals the count already
    accepted, which keeps the hardened accept path byte-identical to
    the original protocol.
    """

    epoch: int
    rids: Tuple[str, ...]
    start: int = 0

    def __repr__(self) -> str:
        return f"SeqOrder(k={self.epoch}, {{{';'.join(self.rids)}}})"


@dataclass(frozen=True, slots=True)
class OrderNack:
    """Anti-entropy: "I hold order slots for rids whose bodies I miss".

    Requests travel by R-multicast (n-squared relay paths: robust to
    loss), but under sustained drop a replica can still learn a rid
    from a :class:`SeqOrder` before any copy of the request body
    arrives.  The periodic sync tick sends the missing rids to peers;
    any peer holding the bodies answers with a :class:`BodyBatch`.
    """

    epoch: int
    rids: Tuple[str, ...]

    def __repr__(self) -> str:
        return f"OrderNack(k={self.epoch}, {{{';'.join(self.rids)}}})"


@dataclass(frozen=True, slots=True)
class BodyBatch:
    """The answer to an :class:`OrderNack`: the requested request bodies.

    Receivers feed each body through the ordinary R-delivery path,
    which is rid-idempotent (known bodies are dropped, cached replies
    re-sent), so a duplicated or crossed batch is harmless.
    """

    requests: Tuple[Request, ...]

    def __repr__(self) -> str:
        rids = ";".join(request.rid for request in self.requests)
        return f"BodyBatch({{{rids}}})"


@dataclass(frozen=True, slots=True)
class PhaseII:
    """The ``(k, PhaseII)`` notification (Fig. 6, line 21).

    ``reason`` distinguishes suspicion-triggered phase changes from the
    periodic garbage-collection variant suggested in the Remark of
    Section 5.3 (it does not affect the protocol, only the traces).
    """

    epoch: int
    reason: str = "suspicion"

    def __repr__(self) -> str:
        return f"PhaseII(k={self.epoch}, {self.reason})"
