"""Wire-level message types of the OAR protocol.

All messages are frozen dataclasses: hashable, comparable, safe to put in
sets and to pickle for the TCP runtime.  Client operations are plain
tuples (e.g. ``("push", "x")``) so that they are deterministic and
serializable without a registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple


@dataclass(frozen=True, slots=True)
class Request:
    """A client request, R-multicast to the server group Π (Fig. 5, line 2).

    ``rid`` is globally unique (client id + client-local counter).
    ``op`` is the deterministic state-machine operation tuple.
    """

    rid: str
    client: str
    op: Tuple[Any, ...]

    def __repr__(self) -> str:
        return f"Request({self.rid}, {self.op})"


@dataclass(frozen=True, slots=True)
class Reply:
    """A server's reply to a request (Fig. 6, lines 19 and 29).

    ``weight`` is the set of servers that endorse this reply (Section 5.2):
    ``{s}`` for the sequencer's own optimistic reply, ``{p, s}`` for
    another server's optimistic reply, and the whole group Π for a
    conservative (A-delivered) reply.

    ``position`` is the global processing order of the request, the
    "reply number" used throughout the paper's proofs (Appendix A).
    ``value`` is the actual state-machine result.
    """

    rid: str
    value: Any
    position: int
    weight: FrozenSet[str]
    epoch: int
    conservative: bool = False

    def __repr__(self) -> str:
        kind = "A" if self.conservative else "opt"
        return (
            f"Reply({self.rid}, value={self.value!r}, pos={self.position}, "
            f"W={sorted(self.weight)}, k={self.epoch}, {kind})"
        )


@dataclass(frozen=True, slots=True)
class ReadRequest:
    """A replica-local read (never ordered by the sequencer).

    Sent point-to-point to one replica (optimistic read mode) or to the
    whole group (conservative mode); the replica executes the read-only
    operation against its current state -- the adopted prefix plus its
    optimistic suffix -- and answers with a :class:`ReadReply` without
    involving the ordering pipeline.  ``rid`` lives in its own namespace
    (``<client>-r<n>``) so read ids never collide with ordered requests.

    ``round`` counts the client's polling rounds for this rid (bumped on
    every retransmit/re-poll) and is echoed in the reply: a conservative
    quorum must form among *same-round* replies only, or a stale reply
    from a superseded round could combine with fresh ones into a
    majority no single instant ever held.
    """

    rid: str
    client: str
    op: Tuple[Any, ...]
    round: int = 0

    def __repr__(self) -> str:
        return f"ReadRequest({self.rid}, {self.op})"


@dataclass(frozen=True, slots=True)
class ReadReply:
    """A replica's answer to a :class:`ReadRequest`.

    ``position`` is the replica's full delivery position when the read
    executed (``|A_delivered| + |O_delivered|``); ``settled`` is the
    length of the conservatively settled prefix alone.  ``opt_depth =
    position - settled`` is how much of the observed state was still
    optimistic -- the client tags adoptions with it so staleness is
    measurable after the fact.
    """

    rid: str
    value: Any
    position: int
    settled: int
    epoch: int
    round: int = 0

    def __repr__(self) -> str:
        return (
            f"ReadReply({self.rid}, value={self.value!r}, pos={self.position}, "
            f"settled={self.settled}, k={self.epoch}, round={self.round})"
        )


@dataclass(frozen=True, slots=True)
class SeqOrder:
    """The sequencer's ordering message ``(k, O_notdelivered)`` (Fig. 6, line 10)."""

    epoch: int
    rids: Tuple[str, ...]

    def __repr__(self) -> str:
        return f"SeqOrder(k={self.epoch}, {{{';'.join(self.rids)}}})"


@dataclass(frozen=True, slots=True)
class PhaseII:
    """The ``(k, PhaseII)`` notification (Fig. 6, line 21).

    ``reason`` distinguishes suspicion-triggered phase changes from the
    periodic garbage-collection variant suggested in the Remark of
    Section 5.3 (it does not affect the protocol, only the traces).
    """

    epoch: int
    reason: str = "suspicion"

    def __repr__(self) -> str:
        return f"PhaseII(k={self.epoch}, {self.reason})"
