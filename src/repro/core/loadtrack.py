"""Exponentially decayed per-key load counters.

PR 3's rebalance planner consumed the clients' raw per-key submission
counters, which accumulate forever: a key that was hot during warm-up
and went cold an hour ago still dominates the snapshot, so the planner
can migrate yesterday's hot set instead of today's.  The
:class:`DecayingKeyLoad` counter fixes that: every recorded submission
decays with a configurable half-life, so a snapshot taken *now* weights
recent traffic exponentially more than old traffic, and a key nobody
touches converges to zero load.

The counter keeps two books per key:

* the **decayed value** (a float), updated lazily -- decay is applied
  when a key is touched or snapshotted, so idle keys cost nothing;
* the **exact count** (an int), never decayed -- the "each logical
  operation counted exactly once" invariant the redirect-retry
  compensation relies on, and what tests assert against.

``half_life=None`` disables decay entirely (the PR 3 behaviour).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple


class DecayingKeyLoad:
    """A dict-like per-key counter whose values decay exponentially.

    Parameters
    ----------
    half_life:
        Time (in the clock's units) after which a recorded submission
        counts for half.  ``None`` disables decay (pure counters).
    clock:
        Zero-argument callable returning the current time.  Evaluated
        lazily on every mutation/snapshot, so it is safe to pass a
        closure over a process environment that does not exist yet
        (``lambda: client.env.now``).
    """

    __slots__ = ("half_life", "_clock", "_decayed", "_exact")

    def __init__(
        self,
        half_life: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if half_life is not None and half_life <= 0:
            raise ValueError("half_life must be positive (or None to disable)")
        self.half_life = half_life
        self._clock = clock if clock is not None else (lambda: 0.0)
        #: key -> (decayed value, time it was last brought current).
        self._decayed: Dict[Any, Tuple[float, float]] = {}
        #: key -> exact (undecayed) submission count.
        self._exact: Dict[Any, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _current(self, key: Any, now: float) -> float:
        entry = self._decayed.get(key)
        if entry is None:
            return 0.0
        value, at = entry
        if self.half_life is None or value == 0.0:
            return value
        return value * 0.5 ** ((now - at) / self.half_life)

    def record(self, key: Any, weight: float = 1.0) -> None:
        """Count one submission of ``key`` at the clock's current time."""
        now = self._clock()
        self._decayed[key] = (self._current(key, now) + weight, now)
        self._exact[key] = self._exact.get(key, 0) + 1

    def unrecord(self, key: Any, weight: float = 1.0) -> None:
        """Compensate one :meth:`record` (redirect retries are not new
        demand); floors at zero so compensation can never go negative."""
        now = self._clock()
        self._decayed[key] = (max(0.0, self._current(key, now) - weight), now)
        if key in self._exact:
            self._exact[key] -= 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[Any, float]:
        """Every key's decayed load, brought current to the clock's now."""
        now = self._clock()
        return {key: self._current(key, now) for key in self._decayed}

    def counts(self) -> Dict[Any, int]:
        """Exact (undecayed) per-key submission counts."""
        return dict(self._exact)

    def get(self, key: Any, default: float = 0.0) -> float:
        value = self._current(key, self._clock())
        return value if key in self._decayed else default

    def __getitem__(self, key: Any) -> float:
        if key not in self._decayed:
            raise KeyError(key)
        return self._current(key, self._clock())

    def __contains__(self, key: Any) -> bool:
        return key in self._decayed

    def __len__(self) -> int:
        return len(self._decayed)

    def __iter__(self) -> Iterable[Any]:
        return iter(self._decayed)

    def keys(self) -> Iterable[Any]:
        return self._decayed.keys()

    def values(self) -> Iterable[float]:
        return self.snapshot().values()

    def items(self) -> Iterable[Tuple[Any, float]]:
        """(key, decayed load) pairs, brought current to now."""
        return self.snapshot().items()

    def __repr__(self) -> str:
        return (
            f"DecayingKeyLoad(half_life={self.half_life}, "
            f"keys={len(self._decayed)})"
        )
