"""Chandra-Toueg ◇S consensus with the Maj-validity modification.

Structure of the algorithm ([CT96], rotating coordinator, asynchronous
rounds; every process moves through rounds ``r = 0, 1, 2, ...`` with
coordinator ``c(r) = Π[r mod n]``):

1. *Phase 1* -- on entering round r, every process sends its current
   estimate (tagged with the round in which it was last adopted, ``ts``)
   to c(r).
2. *Phase 2* -- c(r) waits for estimates from a majority.  If any carries
   ``ts > 0`` it adopts the one with the highest ``ts``; otherwise it
   **aggregates**: the proposal becomes the vector of (pid, initial
   value) pairs of the majority it heard from, ordered by pid.  This
   aggregation step is the entire Maj-validity modification ([Fel98]):
   the decided value is then always a sequence containing the initial
   values of a majority of processes.
3. *Phase 3* -- every process waits for c(r)'s proposal or suspects c(r)
   (◇S).  On a proposal it adopts it (``ts = r``) and acks; on suspicion
   it nacks.  Either way it proceeds to round r+1.
4. *Phase 4* -- when c(r) has acks from a majority it reliably broadcasts
   the decision (relay-on-first-receipt), which terminates the instance
   everywhere.

Safety does not depend on the failure detector; liveness needs ◇S and a
majority of correct processes, exactly the paper's assumptions
(Section 3).

The :class:`ConsensusManager` multiplexes many instances (one per OAR
epoch) over a single host process and buffers messages of instances that
have not started locally yet (a process can receive round messages for
epoch k before it has itself entered phase 2 of epoch k).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.failure.detector import FailureDetector
from repro.sim.component import Component
from repro.sim.process import Process

#: Estimate tags: an estimate is either the process's own initial value or
#: an aggregated vector adopted from some round's proposal.
INITIAL = "init"
AGGREGATE = "agg"

#: A decision is a vector of (pid, initial_value) pairs, sorted by pid,
#: covering a majority of the group.
DecisionVector = Tuple[Tuple[str, Any], ...]

DecisionCallback = Callable[[Any, DecisionVector], None]


@dataclass(frozen=True, slots=True)
class CEstimate:
    """Phase 1: a participant's current estimate, sent to the coordinator."""

    instance: Any
    round: int
    tag: str
    value: Any
    ts: int


@dataclass(frozen=True, slots=True)
class CProposal:
    """Phase 2: the coordinator's proposal for one round."""

    instance: Any
    round: int
    value: DecisionVector


@dataclass(frozen=True, slots=True)
class CAck:
    """Phase 3: acceptance of the round's proposal."""

    instance: Any
    round: int


@dataclass(frozen=True, slots=True)
class CNack:
    """Phase 3: rejection after suspecting the round's coordinator."""

    instance: Any
    round: int


@dataclass(frozen=True, slots=True)
class CDecide:
    """The decision, disseminated by relay-on-first-receipt."""

    instance: Any
    value: DecisionVector


class ConsensusInstance:
    """One instance of the rotating-coordinator algorithm."""

    def __init__(
        self,
        manager: "ConsensusManager",
        instance_id: Any,
        initial_value: Any,
        on_decide: DecisionCallback,
    ) -> None:
        self.manager = manager
        self.instance_id = instance_id
        self.participants = manager.participants
        self.majority = len(self.participants) // 2 + 1
        self.pid = manager.host.pid
        self.on_decide = on_decide
        self.collect = manager.collect

        self.tag = INITIAL
        self.value: Any = initial_value
        self.ts = 0
        self.round = -1
        self.decided = False
        self.decision: Optional[DecisionVector] = None
        self.rounds_executed = 0

        # Coordinator-side state, keyed by round.
        self._estimates: Dict[int, Dict[str, CEstimate]] = {}
        self._acks: Dict[int, Set[str]] = {}
        self._proposals_made: Dict[int, DecisionVector] = {}

        # Participant-side: rounds whose phase 3 (ack/nack) is done.
        self._phase3_done: Set[int] = set()

    # ------------------------------------------------------------------

    def coordinator(self, round_number: int) -> str:
        """The rotating coordinator c(r) = Π[r mod n]."""
        return self.participants[round_number % len(self.participants)]

    def start(self) -> None:
        """Enter round 0 (phase 1: send the initial estimate)."""
        self._enter_round(0)

    def _enter_round(self, round_number: int) -> None:
        if self.decided:
            return
        self.round = round_number
        self.rounds_executed += 1
        coordinator = self.coordinator(round_number)
        estimate = CEstimate(
            instance=self.instance_id,
            round=round_number,
            tag=self.tag,
            value=self.value,
            ts=self.ts,
        )
        if coordinator == self.pid:
            self._on_estimate(self.pid, estimate)
        else:
            self.manager.env.send(coordinator, estimate)
        # Phase 3 may already be decidable: the coordinator is suspected,
        # or its proposal arrived before we entered the round.
        if self.manager.fd.is_suspected(coordinator):
            self._nack(round_number)

    # ------------------------------------------------------------------
    # Message handlers (dispatched by the manager)
    # ------------------------------------------------------------------

    def on_message(self, src: str, payload: Any) -> None:
        """Dispatch one round message (or help a laggard once decided)."""
        if self.decided:
            # Help laggards terminate: answer any instance traffic with
            # the decision.
            if not isinstance(payload, CDecide) and src != self.pid:
                self.manager.env.send(src, CDecide(self.instance_id, self.decision))
            if isinstance(payload, CDecide):
                pass  # already decided; relay was done on first receipt
            return
        if isinstance(payload, CEstimate):
            self._on_estimate(src, payload)
        elif isinstance(payload, CProposal):
            self._on_proposal(src, payload)
        elif isinstance(payload, CAck):
            self._on_ack(src, payload)
        elif isinstance(payload, CNack):
            pass  # nacks are informational; liveness comes from round advance
        elif isinstance(payload, CDecide):
            self._on_decide(payload)

    def _on_estimate(self, src: str, estimate: CEstimate) -> None:
        bucket = self._estimates.setdefault(estimate.round, {})
        bucket[src] = estimate
        self._maybe_propose(estimate.round)

    def _maybe_propose(self, round_number: int) -> None:
        """Phase 2 trigger.  Two collection disciplines:

        * ``majority`` (strict [CT96]): wait for estimates from a majority
          and aggregate over all of them.  This is the provably-safe
          default.
        * ``unsuspected`` (the paper's footnote 5, per [Fel98]): wait for
          an estimate from every participant the coordinator does *not*
          suspect, then aggregate over those estimates only.  A wrongly
          suspected minority's initial values can thus be excluded from
          the decision -- the precondition for the Opt-undelivery run of
          Figure 4.  The ack quorum is still a majority, so a decision is
          always anchored in a majority of processes.
        """
        bucket = self._estimates.get(round_number)
        if not bucket or round_number in self._proposals_made:
            return
        if self.collect == "unsuspected":
            eligible = {
                pid: est
                for pid, est in bucket.items()
                if not self.manager.fd.is_suspected(pid)
            }
            unsuspected = [
                pid
                for pid in self.participants
                if not self.manager.fd.is_suspected(pid)
            ]
            ready = eligible and all(pid in bucket for pid in unsuspected)
            if not ready and len(bucket) < len(self.participants):
                return
            if not eligible:
                eligible = dict(bucket)
        else:
            if len(bucket) < self.majority:
                return
            eligible = dict(bucket)
        proposal_value = self._choose_proposal(eligible)
        self._proposals_made[round_number] = proposal_value
        proposal = CProposal(self.instance_id, round_number, proposal_value)
        for member in self.participants:
            if member == self.pid:
                self._on_proposal(self.pid, proposal)
            else:
                self.manager.env.send(member, proposal)

    def _choose_proposal(self, bucket: Dict[str, CEstimate]) -> DecisionVector:
        """Adopt the highest-ts aggregate, else aggregate the initial values.

        The aggregation order (sorted by pid) is deterministic so that the
        Cnsv-order reduction can reconstruct per-process proposals from
        the decision vector.
        """
        aggregated = [e for e in bucket.values() if e.tag == AGGREGATE]
        if aggregated:
            best = max(aggregated, key=lambda e: e.ts)
            return best.value
        pairs = sorted((pid, e.value) for pid, e in bucket.items())
        return tuple(pairs)

    def _on_proposal(self, src: str, proposal: CProposal) -> None:
        round_number = proposal.round
        if round_number < self.round or round_number in self._phase3_done:
            return
        # Jumping forward on a higher-round proposal is safe: adopting a
        # proposal can only adopt the locked value (standard CT argument).
        self.round = max(self.round, round_number)
        self._phase3_done.add(round_number)
        self.tag = AGGREGATE
        self.value = proposal.value
        self.ts = round_number
        coordinator = self.coordinator(round_number)
        ack = CAck(self.instance_id, round_number)
        if coordinator == self.pid:
            self._on_ack(self.pid, ack)
        else:
            self.manager.env.send(coordinator, ack)
        self._enter_round(round_number + 1)

    def _nack(self, round_number: int) -> None:
        if self.decided or round_number in self._phase3_done:
            return
        if round_number != self.round:
            return
        self._phase3_done.add(round_number)
        coordinator = self.coordinator(round_number)
        if coordinator != self.pid:
            self.manager.env.send(coordinator, CNack(self.instance_id, round_number))
        # Pace round-skipping so a burst of suspicions cannot starve the
        # event loop; the delay is well below one message latency.
        delay = self.manager.round_skip_delay
        self.manager.env.set_timer(delay, lambda: self._enter_round(round_number + 1))

    def _on_ack(self, src: str, ack: CAck) -> None:
        acks = self._acks.setdefault(ack.round, set())
        acks.add(src)
        if len(acks) >= self.majority and ack.round in self._proposals_made:
            decision = CDecide(self.instance_id, self._proposals_made[ack.round])
            self._broadcast_decide(decision)
            self._on_decide(decision)

    def _broadcast_decide(self, decision: CDecide) -> None:
        for member in self.participants:
            if member != self.pid:
                self.manager.env.send(member, decision)

    def _on_decide(self, decision: CDecide) -> None:
        if self.decided:
            return
        self.decided = True
        self.decision = decision.value
        # Relay-on-first-receipt: the decision reaches every correct
        # process even if its origin crashed mid-broadcast.
        self._broadcast_decide(decision)
        self.manager.env.trace(
            "consensus_decide",
            instance=self.instance_id,
            rounds=self.rounds_executed,
        )
        self.on_decide(self.instance_id, decision.value)

    # ------------------------------------------------------------------

    def on_suspicion(self, pid: str, suspected: bool) -> None:
        """FD transition hook: nack the current round if its coordinator died.

        In ``unsuspected`` collection mode a new suspicion can also
        complete a pending phase-2 trigger (one fewer estimate to wait
        for), so re-check every round we hold estimates for.
        """
        if self.decided or self.round < 0:
            return
        if suspected and pid == self.coordinator(self.round):
            self._nack(self.round)
        if self.collect == "unsuspected" and suspected:
            for round_number in list(self._estimates):
                self._maybe_propose(round_number)


_CONSENSUS_TYPES = (CEstimate, CProposal, CAck, CNack, CDecide)


class ConsensusManager(Component):
    """Multiplexes consensus instances (one per OAR epoch) over one process.

    Messages for instances the local process has not proposed in yet are
    buffered and replayed when :meth:`propose` is called; decisions that
    arrive before the local propose are stored and delivered immediately
    at propose time.
    """

    MESSAGE_TYPES = _CONSENSUS_TYPES

    def __init__(
        self,
        host: Process,
        participants: Sequence[str],
        fd: FailureDetector,
        round_skip_delay: float = 0.05,
        collect: str = "majority",
    ) -> None:
        super().__init__(host)
        self.participants = list(participants)
        if host.pid not in self.participants:
            raise ValueError(f"{host.pid} is not a consensus participant")
        if collect not in ("majority", "unsuspected"):
            raise ValueError(f"unknown estimate-collection mode: {collect}")
        self.fd = fd
        self.round_skip_delay = round_skip_delay
        self.collect = collect
        self._instances: Dict[Any, ConsensusInstance] = {}
        self._buffered: Dict[Any, List[Tuple[str, Any]]] = {}
        self._early_decisions: Dict[Any, DecisionVector] = {}
        fd.add_listener(self._on_suspicion)

    def start(self) -> None:
        """Nothing to do at host start; instances start on propose."""

    def propose(self, instance_id: Any, value: Any, on_decide: DecisionCallback) -> None:
        """Start (or join) instance ``instance_id`` with initial value ``value``."""
        if instance_id in self._instances:
            raise ValueError(f"already proposed in instance {instance_id!r}")
        instance = ConsensusInstance(self, instance_id, value, on_decide)
        self._instances[instance_id] = instance
        early = self._early_decisions.pop(instance_id, None)
        if early is not None:
            instance._on_decide(CDecide(instance_id, early))
            return
        instance.start()
        for src, payload in self._buffered.pop(instance_id, []):
            instance.on_message(src, payload)

    def has_decided(self, instance_id: Any) -> bool:
        """True once the local instance has a decision."""
        instance = self._instances.get(instance_id)
        return instance is not None and instance.decided

    def on_message(self, src: str, payload: Any) -> None:
        """Route to the instance; buffer/store traffic for unknown ones."""
        instance = self._instances.get(payload.instance)
        if instance is not None:
            instance.on_message(src, payload)
            return
        if isinstance(payload, CDecide):
            # Decision for an instance we have not locally started: keep
            # it (and relay) so our later propose terminates instantly.
            if payload.instance not in self._early_decisions:
                self._early_decisions[payload.instance] = payload.value
                for member in self.participants:
                    if member != self.host.pid:
                        self.env.send(member, payload)
            return
        self._buffered.setdefault(payload.instance, []).append((src, payload))

    def _on_suspicion(self, pid: str, suspected: bool) -> None:
        for instance in list(self._instances.values()):
            instance.on_suspicion(pid, suspected)
