"""Consensus oracles.

The OAR algorithm's conservative phase reduces ``Cnsv-order`` to a
consensus problem with a strengthened validity property (Section 5.5):

* **Termination** -- each correct process eventually decides.
* **Agreement** -- no two correct processes decide differently.
* **Maj-validity** -- if a process decides V, then V is a sequence of
  initial values such that, for a majority of processes p_i, if p_i
  proposed v_i then v_i ∈ V.

:mod:`repro.consensus.chandra_toueg` implements the rotating-coordinator
◇S algorithm of [CT96]; the Maj-validity variant ([Fel98]) is obtained by
making the first aggregated estimate the ordered vector of initial values
collected from a majority (see
:class:`~repro.consensus.chandra_toueg.ConsensusManager`).
"""

from repro.consensus.chandra_toueg import (
    AGGREGATE,
    INITIAL,
    CAck,
    CDecide,
    CEstimate,
    CNack,
    ConsensusInstance,
    ConsensusManager,
    CProposal,
)

__all__ = [
    "AGGREGATE",
    "CAck",
    "CDecide",
    "CEstimate",
    "CNack",
    "CProposal",
    "ConsensusInstance",
    "ConsensusManager",
    "INITIAL",
]
