"""Workload generation: operation streams and client drivers.

Operation generators produce deterministic, seeded streams of state-
machine operations; drivers submit them through client processes either
closed-loop (next request upon adoption -- the latency-oriented pattern)
or open-loop (Poisson arrivals -- the throughput-oriented pattern).
"""

from repro.workload.drivers import ClosedLoopDriver, OpenLoopDriver
from repro.workload.generators import (
    bank_ops,
    counter_ops,
    cross_shard_bank_ops,
    kv_ops,
    stack_ops,
    zipfian_kv_ops,
)

__all__ = [
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "bank_ops",
    "counter_ops",
    "cross_shard_bank_ops",
    "kv_ops",
    "stack_ops",
    "zipfian_kv_ops",
]
