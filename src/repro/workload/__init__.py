"""Workload generation: operation streams and client drivers.

Operation generators produce deterministic, seeded streams of state-
machine operations; drivers submit them through client processes either
closed-loop (next request upon adoption -- the latency-oriented pattern)
or open-loop (Poisson arrivals -- the throughput-oriented pattern).
The overload harness (:mod:`repro.workload.openloop`) extends the
open-loop side with non-homogeneous arrival processes (diurnal, flash
crowd), session multiplexing, client-side token-bucket throttling and a
streaming latency recorder.
"""

from repro.workload.drivers import ClosedLoopDriver, OpenLoopDriver
from repro.workload.generators import (
    bank_ops,
    counter_ops,
    cross_shard_bank_ops,
    kv_ops,
    stack_ops,
    zipfian_kv_ops,
)
from repro.workload.openloop import (
    DiurnalProcess,
    FlashCrowdProcess,
    LatencyRecorder,
    PoissonProcess,
    SessionedOpenLoopDriver,
)

__all__ = [
    "ClosedLoopDriver",
    "DiurnalProcess",
    "FlashCrowdProcess",
    "LatencyRecorder",
    "OpenLoopDriver",
    "PoissonProcess",
    "SessionedOpenLoopDriver",
    "bank_ops",
    "counter_ops",
    "cross_shard_bank_ops",
    "kv_ops",
    "stack_ops",
    "zipfian_kv_ops",
]
