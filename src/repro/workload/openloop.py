"""Open-loop overload harness: arrival processes, latency percentiles,
and a sessioned driver with client-side admission control.

The closed/open drivers in :mod:`repro.workload.drivers` model a fixed
population of clients each with at most a handful of outstanding
requests -- fine for latency studies, useless for the overload question
("what happens at 2x saturation?") because a closed loop self-throttles:
arrival rate collapses to service rate the moment the system slows.
This module is the *open-loop* counterpart:

* **Arrival processes** -- :class:`PoissonProcess` (homogeneous),
  :class:`DiurnalProcess` (sinusoidal day/night rate) and
  :class:`FlashCrowdProcess` (piecewise surge: ramp, hold, decay).  The
  non-homogeneous ones sample inter-arrival gaps by Lewis-Shedler
  thinning against their peak rate, so all three are exact and
  deterministic under a seeded ``random.Random``.
* **Sessions** -- the driver multiplexes ``n_sessions`` logical user
  sessions over one protocol client.  Per-session state is a single
  counter (ops issued), so "millions of users" costs one dict entry per
  *active* session, not a process per user; the session id is carried in
  each op's trace tag for locality studies.
* **Latency recorder** -- :class:`LatencyRecorder` keeps exact samples
  up to a limit, then collapses into logarithmic buckets (2% width), so
  p50/p99/p999 over arbitrarily long runs cost O(buckets) memory with
  bounded relative error.  Recorders merge, so per-client recorders
  combine into a run-level summary.
* **Admission-aware driver** -- :class:`SessionedOpenLoopDriver` offers
  load on the arrival process's clock regardless of outstanding count,
  optionally gated by a client-side
  :class:`~repro.core.admission.TokenBucket`; it counts every offered
  arrival into exactly one of ``throttled`` (refused locally),
  ``shed`` (refused by the sequencer with
  :class:`~repro.core.admission.Overloaded`) or ``admitted``
  (adopted normally), which is the conservation law
  :func:`repro.analysis.checkers.check_admission_accounting` asserts.

Warm-up windows follow the B14 rule: latency is recorded only for ops
submitted at or after ``measure_from``, so the measured distribution is
steady state rather than cold-start transient.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.admission import TokenBucket, is_overloaded
from repro.sim.loop import Simulator

Op = Tuple[Any, ...]


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------

class PoissonProcess:
    """Homogeneous Poisson arrivals at ``rate`` per time unit."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.peak_rate = rate

    def rate_at(self, t: float) -> float:
        return self.rate

    def next_gap(self, now: float, rng: random.Random) -> float:
        return rng.expovariate(self.rate)


class _ThinnedProcess:
    """Shared Lewis-Shedler thinning for non-homogeneous processes.

    Candidate arrivals are drawn from a homogeneous process at
    ``peak_rate`` and accepted with probability ``rate_at(t)/peak_rate``
    -- exact for any bounded intensity function, and each draw consumes
    a fixed number of RNG values, so runs are seed-reproducible.
    """

    peak_rate: float

    def rate_at(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def next_gap(self, now: float, rng: random.Random) -> float:
        t = now
        while True:
            t += rng.expovariate(self.peak_rate)
            if rng.random() * self.peak_rate <= self.rate_at(t):
                return t - now


class DiurnalProcess(_ThinnedProcess):
    """Sinusoidal day/night intensity between ``base_rate`` and ``peak_rate``.

    ``rate_at(t)`` swings over one ``period`` from the trough
    (``base_rate``, at ``t = phase``) up to ``peak_rate`` and back.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        period: float,
        phase: float = 0.0,
    ) -> None:
        if base_rate <= 0 or peak_rate < base_rate:
            raise ValueError("need 0 < base_rate <= peak_rate")
        if period <= 0:
            raise ValueError("period must be positive")
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.period = period
        self.phase = phase

    def rate_at(self, t: float) -> float:
        mid = (self.base_rate + self.peak_rate) / 2.0
        amp = (self.peak_rate - self.base_rate) / 2.0
        # Cosine so the trough sits exactly at t == phase.
        return mid - amp * math.cos(2.0 * math.pi * (t - self.phase) / self.period)


class FlashCrowdProcess(_ThinnedProcess):
    """Piecewise surge: baseline, linear ramp to peak, hold, linear decay.

    ``rate_at`` is ``base_rate`` before ``at``, ramps linearly to
    ``peak_rate`` over ``ramp``, holds for ``hold``, then decays
    linearly back over ``decay`` -- the thundering-herd shape that makes
    admission control earn its keep.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        at: float,
        ramp: float = 1.0,
        hold: float = 0.0,
        decay: float = 1.0,
    ) -> None:
        if base_rate <= 0 or peak_rate < base_rate:
            raise ValueError("need 0 < base_rate <= peak_rate")
        if ramp <= 0 or decay <= 0 or hold < 0 or at < 0:
            raise ValueError("ramp/decay must be positive, at/hold non-negative")
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.at = at
        self.ramp = ramp
        self.hold = hold
        self.decay = decay

    def rate_at(self, t: float) -> float:
        if t < self.at:
            return self.base_rate
        t -= self.at
        if t < self.ramp:
            return self.base_rate + (self.peak_rate - self.base_rate) * (t / self.ramp)
        t -= self.ramp
        if t < self.hold:
            return self.peak_rate
        t -= self.hold
        if t < self.decay:
            return self.peak_rate - (self.peak_rate - self.base_rate) * (t / self.decay)
        return self.base_rate


# ----------------------------------------------------------------------
# Streaming latency percentiles
# ----------------------------------------------------------------------

class LatencyRecorder:
    """Streaming p50/p99/p999 with bounded memory.

    Two regimes.  Up to ``exact_limit`` samples the recorder keeps the
    raw values and :meth:`quantile` matches
    :func:`repro.analysis.stats.percentile` exactly (linear
    interpolation between order statistics).  Past the limit it
    collapses into logarithmic buckets of width ``growth`` (2% by
    default): each sample lands in bucket ``floor(log(v)/log(growth))``
    and is represented by the bucket's geometric midpoint, bounding
    relative quantile error at ~``(growth-1)/2`` regardless of run
    length.  Count/sum/min/max stay exact in both regimes.

    Recorders :meth:`merge`, and merging never loses precision beyond
    the bucket width: exact+exact stays exact while under the limit,
    anything else buckets.
    """

    def __init__(self, exact_limit: int = 4096, growth: float = 1.02) -> None:
        if exact_limit < 1:
            raise ValueError("exact_limit must be >= 1")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.exact_limit = exact_limit
        self.growth = growth
        self._log_growth = math.log(growth)
        self._exact: Optional[List[float]] = []
        self._buckets: Dict[int, int] = {}
        self._zero = 0  # non-positive samples get their own bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- ingest -------------------------------------------------------

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self._exact is not None:
            self._exact.append(value)
            if len(self._exact) > self.exact_limit:
                self._collapse()
        else:
            self._bucket(value)

    def _bucket_index(self, value: float) -> int:
        return math.floor(math.log(value) / self._log_growth)

    def _bucket(self, value: float) -> None:
        if value <= 0:
            self._zero += 1
            return
        key = self._bucket_index(value)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def _collapse(self) -> None:
        assert self._exact is not None
        for value in self._exact:
            self._bucket(value)
        self._exact = None

    # -- merge --------------------------------------------------------

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold ``other``'s samples into this recorder (``other`` unchanged)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None else min(self.min, other.min)  # type: ignore[arg-type]
        self.max = other.max if self.max is None else max(self.max, other.max)  # type: ignore[arg-type]
        if self._exact is not None and other._exact is not None:
            self._exact.extend(other._exact)
            if len(self._exact) > self.exact_limit:
                self._collapse()
            return
        if self._exact is not None:
            self._collapse()
        if other._exact is not None:
            for value in other._exact:
                self._bucket(value)
        else:
            if other.growth != self.growth:
                raise ValueError("cannot merge bucketed recorders with different growth")
            self._zero += other._zero
            for key, n in other._buckets.items():
                self._buckets[key] = self._buckets.get(key, 0) + n

    # -- query --------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of everything recorded."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            raise ValueError("no samples recorded")
        if self._exact is not None:
            ordered = sorted(self._exact)
            if len(ordered) == 1:
                return ordered[0]
            # Same linear interpolation as repro.analysis.stats.percentile.
            idx = q * (len(ordered) - 1)
            lo = math.floor(idx)
            hi = math.ceil(idx)
            if lo == hi:
                return ordered[lo]
            frac = idx - lo
            return ordered[lo] * (1 - frac) + ordered[hi] * frac
        # Bucketed: walk buckets in value order to the target rank and
        # return the owning bucket's geometric midpoint.
        target = q * (self.count - 1)
        seen = self._zero
        if target < seen:
            return 0.0
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if target < seen:
                return self.growth ** (key + 0.5)
        return self.max if self.max is not None else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The standard report dict (count/mean/min/max + p50/p99/p999)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
        }


# ----------------------------------------------------------------------
# Sessioned open-loop driver
# ----------------------------------------------------------------------

class SessionedOpenLoopDriver:
    """Open-loop arrivals multiplexing many logical sessions, with
    optional client-side throttling and shed accounting.

    Every arrival tick increments ``offered`` and is resolved exactly
    once into one of three buckets:

    * ``throttled`` -- the token ``bucket`` (when given) refused the op
      locally; nothing is submitted and a ``throttle`` trace event is
      emitted.  :meth:`TokenBucket.penalize` backoff means a flood of
      sheds converts future arrivals into throttles, which is the whole
      point: pushback moves to the edge.
    * ``shed`` -- submitted, but the sequencer answered
      :class:`Overloaded`; the bucket (when given) is penalized.
    * ``admitted`` -- submitted and adopted normally; latency is
      recorded when the op was submitted at or after ``measure_from``
      (the warm-up rule), and the bucket's strike count resets.

    The conservation law ``offered == throttled + shed + admitted +
    in_flight`` therefore holds at every instant, with ``in_flight``
    the client's outstanding count attributable to this driver; the
    admission checker asserts it exactly at quiescence
    (``in_flight == 0``).

    Implements the standard driver contract (``done`` property,
    ``submitted`` list) so harness quiescence detection and the
    per-shard checkers treat it like any other driver.
    """

    def __init__(
        self,
        sim: Simulator,
        client: Any,
        ops: Iterator[Op],
        total: int,
        arrival: Any,
        rng: random.Random,
        n_sessions: int = 64,
        start_at: float = 0.0,
        bucket: Optional[TokenBucket] = None,
        recorder: Optional[LatencyRecorder] = None,
        measure_from: float = 0.0,
    ) -> None:
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        self.sim = sim
        self.client = client
        self.ops = ops
        self.remaining = total
        self.arrival = arrival
        self.rng = rng
        self.n_sessions = n_sessions
        self.bucket = bucket
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.measure_from = measure_from
        self.submitted: List[str] = []
        #: lazily-populated per-session op counters: session id -> ops
        #: issued.  One int per *touched* session is the entire
        #: per-session state, which is what keeps huge session counts
        #: cheap.
        self.sessions: Dict[int, int] = {}
        self.offered = 0
        self.throttled = 0
        self.admitted = 0
        self.shed = 0
        self._own_rids: Dict[str, float] = {}  # rid -> submit time
        previous = client.on_adopt

        def chained(adopted: Any) -> None:
            if previous is not None:
                previous(adopted)
            self._on_adopt(adopted)

        client.on_adopt = chained
        sim.schedule_at(start_at + arrival.next_gap(start_at, rng), self._arrive)

    @property
    def done(self) -> bool:
        return self.remaining == 0 and self.client.outstanding == 0

    @property
    def in_flight(self) -> int:
        """Ops this driver submitted that have not resolved yet."""
        return len(self._own_rids)

    def _arrive(self) -> None:
        if self.remaining == 0:
            return
        self.remaining -= 1
        self.offered += 1
        session = self.rng.randrange(self.n_sessions)
        self.sessions[session] = self.sessions.get(session, 0) + 1
        now = self.sim.now
        if self.bucket is not None and not self.bucket.try_acquire(now):
            self.throttled += 1
            self.client.env.trace("throttle", session=session)
        else:
            op = next(self.ops)
            rid = self.client.submit(op)
            self.submitted.append(rid)
            self._own_rids[rid] = now
        if self.remaining > 0:
            self.sim.schedule(self.arrival.next_gap(now, self.rng), self._arrive)

    def _on_adopt(self, adopted: Any) -> None:
        submit_time = self._own_rids.pop(adopted.rid, None)
        if submit_time is None:
            return  # not ours (another driver / internal op on this client)
        now = self.sim.now
        if is_overloaded(adopted.value):
            self.shed += 1
            if self.bucket is not None:
                self.bucket.penalize(now)
            return
        self.admitted += 1
        if self.bucket is not None:
            self.bucket.restore()
        if submit_time >= self.measure_from:
            self.recorder.record(now - submit_time)
