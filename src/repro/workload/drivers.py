"""Client drivers: closed-loop and open-loop request submission.

Drivers wrap a client process (OAR or first-reply) and a workload
generator; they interact with the client only through its public
``submit`` / ``on_adopt`` interface, so any client works with any driver.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

from repro.sim.loop import Simulator

Op = Tuple[Any, ...]


class ClosedLoopDriver:
    """Submit one request; on adoption, submit the next, ``total`` times.

    ``think_time`` adds a pause between adoption and the next submission
    (0 = back-to-back, the latency-measurement pattern).
    """

    def __init__(
        self,
        sim: Simulator,
        client: Any,
        ops: Iterator[Op],
        total: int,
        think_time: float = 0.0,
        start_at: float = 0.0,
    ) -> None:
        self.sim = sim
        self.client = client
        self.ops = ops
        self.remaining = total
        self.think_time = think_time
        self.submitted: List[str] = []
        previous = client.on_adopt

        def chained(adopted: Any) -> None:
            if previous is not None:
                previous(adopted)
            self._on_adopt(adopted)

        client.on_adopt = chained
        sim.schedule_at(start_at, self._submit_next)

    @property
    def done(self) -> bool:
        return self.remaining == 0 and self.client.outstanding == 0

    def _submit_next(self) -> None:
        if self.remaining == 0:
            return
        self.remaining -= 1
        op = next(self.ops)
        self.submitted.append(self.client.submit(op))

    def _on_adopt(self, _adopted: Any) -> None:
        if self.remaining == 0:
            return
        if self.think_time > 0:
            self.sim.schedule(self.think_time, self._submit_next)
        else:
            self.sim.call_soon(self._submit_next)


class OpenLoopDriver:
    """Poisson arrivals at ``rate`` requests per time unit, ``total`` requests.

    Submissions do not wait for adoptions; this is the throughput /
    saturation pattern (benchmark B5).
    """

    def __init__(
        self,
        sim: Simulator,
        client: Any,
        ops: Iterator[Op],
        total: int,
        rate: float,
        rng: Optional[random.Random] = None,
        start_at: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.client = client
        self.ops = ops
        self.remaining = total
        self.rate = rate
        self.rng = rng or random.Random(0)
        self.submitted: List[str] = []
        sim.schedule_at(start_at + self._gap(), self._submit_next)

    @property
    def done(self) -> bool:
        return self.remaining == 0 and self.client.outstanding == 0

    def _gap(self) -> float:
        return self.rng.expovariate(self.rate)

    def _submit_next(self) -> None:
        if self.remaining == 0:
            return
        self.remaining -= 1
        op = next(self.ops)
        self.submitted.append(self.client.submit(op))
        if self.remaining > 0:
            self.sim.schedule(self._gap(), self._submit_next)
