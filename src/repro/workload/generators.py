"""Deterministic operation-stream generators for the bundled state machines.

Each generator is an infinite iterator of operation tuples, fully
determined by the random generator passed in, so a scenario seed pins the
entire workload.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Iterator, Sequence, Tuple

Op = Tuple[Any, ...]


def counter_ops() -> Iterator[Op]:
    """An endless stream of increments (the order-revealing workload)."""
    while True:
        yield ("incr",)


def stack_ops(rng: random.Random, push_bias: float = 0.6) -> Iterator[Op]:
    """The Figure 1 workload: interleaved push(x) / pop().

    ``push_bias`` keeps the stack from being empty most of the time, so
    pops usually return a value and order sensitivity stays high (a pop
    of an empty stack returns the same error everywhere, hiding order
    differences).
    """
    counter = itertools.count()
    while True:
        if rng.random() < push_bias:
            yield ("push", f"x{next(counter)}")
        else:
            yield ("pop",)


def kv_ops(
    rng: random.Random,
    keys: Sequence[str] = ("a", "b", "c", "d"),
    write_ratio: float = 0.7,
) -> Iterator[Op]:
    """Mixed reads/writes/cas over a small hot key set."""
    counter = itertools.count()
    while True:
        key = rng.choice(list(keys))
        roll = rng.random()
        if roll < write_ratio * 0.8:
            yield ("set", key, f"v{next(counter)}")
        elif roll < write_ratio:
            yield ("cas", key, f"v{next(counter)}", f"v{next(counter)}")
        else:
            yield ("get", key)


def bank_ops(
    rng: random.Random,
    accounts: Sequence[str] = ("alice", "bob", "carol"),
    transfer_ratio: float = 0.6,
) -> Iterator[Op]:
    """Transfers/deposits/withdrawals; order-sensitive via overdraft checks."""
    accounts = list(accounts)
    while True:
        roll = rng.random()
        if roll < transfer_ratio:
            src, dst = rng.sample(accounts, 2)
            yield ("transfer", src, dst, rng.randint(1, 50))
        elif roll < transfer_ratio + 0.2:
            yield ("deposit", rng.choice(accounts), rng.randint(1, 100))
        elif roll < transfer_ratio + 0.35:
            yield ("withdraw", rng.choice(accounts), rng.randint(1, 80))
        else:
            yield ("balance", rng.choice(accounts))
