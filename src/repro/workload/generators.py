"""Deterministic operation-stream generators for the bundled state machines.

Each generator is an infinite iterator of operation tuples, fully
determined by the random generator passed in, so a scenario seed pins the
entire workload.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Any, Iterator, Sequence, Tuple

Op = Tuple[Any, ...]


def counter_ops() -> Iterator[Op]:
    """An endless stream of increments (the order-revealing workload)."""
    while True:
        yield ("incr",)


def stack_ops(rng: random.Random, push_bias: float = 0.6) -> Iterator[Op]:
    """The Figure 1 workload: interleaved push(x) / pop().

    ``push_bias`` keeps the stack from being empty most of the time, so
    pops usually return a value and order sensitivity stays high (a pop
    of an empty stack returns the same error everywhere, hiding order
    differences).
    """
    counter = itertools.count()
    while True:
        if rng.random() < push_bias:
            yield ("push", f"x{next(counter)}")
        else:
            yield ("pop",)


def kv_ops(
    rng: random.Random,
    keys: Sequence[str] = ("a", "b", "c", "d"),
    write_ratio: float = 0.7,
) -> Iterator[Op]:
    """Mixed reads/writes/cas over a small hot key set."""
    counter = itertools.count()
    while True:
        key = rng.choice(list(keys))
        roll = rng.random()
        if roll < write_ratio * 0.8:
            yield ("set", key, f"v{next(counter)}")
        elif roll < write_ratio:
            yield ("cas", key, f"v{next(counter)}", f"v{next(counter)}")
        else:
            yield ("get", key)


def zipfian_kv_ops(
    rng: random.Random,
    keys: Sequence[str],
    s: float = 1.2,
    write_ratio: float = 0.7,
) -> Iterator[Op]:
    """Skewed reads/writes: key popularity follows a Zipf(s) law.

    The canonical sharding stress: with high skew most traffic lands on
    the hot keys' shards, so aggregate goodput stops scaling with shard
    count -- the benchmark quantifies exactly that.  ``keys[0]`` is the
    hottest key.
    """
    if not keys:
        raise ValueError("zipfian workload needs at least one key")
    if s < 0:
        raise ValueError("zipf exponent must be >= 0")
    weights = [1.0 / (rank ** s) for rank in range(1, len(keys) + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    counter = itertools.count()

    def pick() -> str:
        index = bisect.bisect_left(cdf, rng.random())
        return keys[min(index, len(keys) - 1)]

    while True:
        key = pick()
        if rng.random() < write_ratio:
            yield ("set", key, f"v{next(counter)}")
        else:
            yield ("get", key)


def read_heavy_kv_ops(
    rng: random.Random,
    keys: Sequence[str],
    s: float = 1.2,
    read_ratio: float = 0.9,
) -> Iterator[Op]:
    """Zipf-skewed kv mix dominated by reads (default 90/10 get/set).

    The replica-local read-path workload (benchmark B12): with reads
    bypassing the sequencer, goodput under this mix should scale with
    replica count while the 10% write stream stays pinned to the
    ordering pipeline.  Values written are unique (``v<n>``), which is
    what lets the read-consistency checker attribute every observed
    value to exactly one write.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise ValueError("read_ratio must be within [0, 1]")
    return zipfian_kv_ops(rng, keys, s=s, write_ratio=1.0 - read_ratio)


def read_heavy_bank_ops(
    rng: random.Random,
    accounts_by_shard: Sequence[Sequence[str]],
    read_ratio: float = 0.9,
    cross_ratio: float = 0.0,
) -> Iterator[Op]:
    """Bank mix dominated by balance reads (transfers keep conservation)."""
    if not 0.0 <= read_ratio <= 1.0:
        raise ValueError("read_ratio must be within [0, 1]")
    return cross_shard_bank_ops(
        rng, accounts_by_shard, cross_ratio=cross_ratio, read_ratio=read_ratio
    )


def hot_shift_kv_ops(
    rng: random.Random,
    keys: Sequence[str],
    s: float = 1.2,
    shift_every: int = 150,
    write_ratio: float = 0.7,
) -> Iterator[Op]:
    """Zipf-skewed ops whose hot set *moves* through the key space.

    The popularity ranking is a Zipf(s) law, but after every
    ``shift_every`` operations the ranking rotates by a quarter of the
    key space, so yesterday's cold keys become today's hot ones.  This
    is the live-rebalancing stress: any static placement eventually has
    the wrong shard hot, so only online migration (``repro.sharding.
    rebalance``) can keep shard loads level over time.
    """
    if not keys:
        raise ValueError("hot-shift workload needs at least one key")
    if s < 0:
        raise ValueError("zipf exponent must be >= 0")
    if shift_every < 1:
        raise ValueError("shift_every must be >= 1")
    weights = [1.0 / (rank ** s) for rank in range(1, len(keys) + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    stride = max(1, len(keys) // 4)
    counter = itertools.count()
    emitted = 0

    while True:
        rank = bisect.bisect_left(cdf, rng.random())
        rank = min(rank, len(keys) - 1)
        shift = (emitted // shift_every) * stride
        key = keys[(rank + shift) % len(keys)]
        emitted += 1
        if rng.random() < write_ratio:
            yield ("set", key, f"v{next(counter)}")
        else:
            yield ("get", key)


def cross_shard_bank_ops(
    rng: random.Random,
    accounts_by_shard: Sequence[Sequence[str]],
    cross_ratio: float = 0.3,
    read_ratio: float = 0.2,
) -> Iterator[Op]:
    """Transfers with a controlled fraction straddling shard boundaries.

    Only transfers and balance reads are generated, so the global
    ``conserved_total`` of the bank machines is invariant -- the
    cross-shard atomicity checker relies on that.  ``cross_ratio`` is the
    probability that a transfer's source and destination live on
    different shards (requires at least two shards holding accounts).
    """
    populated = [list(accounts) for accounts in accounts_by_shard if accounts]
    if not populated:
        raise ValueError("no shard holds any account")
    all_accounts = [account for shard in populated for account in shard]
    multi = [shard for shard in populated if len(shard) >= 2]

    def cross_transfer() -> Op:
        src_shard, dst_shard = rng.sample(populated, 2)
        return (
            "transfer",
            rng.choice(src_shard),
            rng.choice(dst_shard),
            rng.randint(1, 25),
        )

    while True:
        roll = rng.random()
        if roll < read_ratio:
            yield ("balance", rng.choice(all_accounts))
        elif roll < read_ratio + cross_ratio and len(populated) >= 2:
            yield cross_transfer()
        elif multi:
            shard = rng.choice(multi)
            src, dst = rng.sample(shard, 2)
            yield ("transfer", src, dst, rng.randint(1, 25))
        elif len(populated) >= 2:
            # Degenerate placement (every shard holds one account):
            # all transfers are necessarily cross-shard.
            yield cross_transfer()
        else:
            # One shard, one account: reads are the only legal op.
            yield ("balance", all_accounts[0])


def hot_key_bank_ops(
    rng: random.Random,
    accounts: Sequence[str],
    hot_ratio: float = 0.8,
    read_ratio: float = 0.2,
) -> Iterator[Op]:
    """Deposits/withdrawals/balances concentrated on one hot account.

    ``accounts[0]`` is the hot account: with probability ``hot_ratio``
    an operation targets it, so at high skew one key's shard -- and,
    within that shard, one conflict-serialized key -- bounds goodput no
    matter how many shards or execution lanes the cluster has.  This is
    the key-splitting stress (benchmark B14): every generated operation
    is split-rewritable (deposits commute onto any fragment,
    withdrawals run against one fragment's escrow budget, balances
    merge-on-read), so splitting the hot account should recover the
    lost parallelism.  Deposits mean account totals are *not*
    conserved; runs on this workload disable the money-supply checks
    and assert ``check_fragment_conservation`` instead.
    """
    if not accounts:
        raise ValueError("hot-key workload needs at least one account")
    if not 0.0 <= hot_ratio <= 1.0:
        raise ValueError("hot_ratio must be within [0, 1]")
    if not 0.0 <= read_ratio <= 1.0:
        raise ValueError("read_ratio must be within [0, 1]")
    accounts = list(accounts)
    hot, cold = accounts[0], accounts[1:]

    while True:
        if cold and rng.random() >= hot_ratio:
            account = rng.choice(cold)
        else:
            account = hot
        roll = rng.random()
        if roll < read_ratio:
            yield ("balance", account)
        elif roll < read_ratio + (1.0 - read_ratio) / 2:
            yield ("deposit", account, rng.randint(1, 100))
        else:
            yield ("withdraw", account, rng.randint(1, 80))


def bank_ops(
    rng: random.Random,
    accounts: Sequence[str] = ("alice", "bob", "carol"),
    transfer_ratio: float = 0.6,
) -> Iterator[Op]:
    """Transfers/deposits/withdrawals; order-sensitive via overdraft checks."""
    accounts = list(accounts)
    while True:
        roll = rng.random()
        if roll < transfer_ratio:
            src, dst = rng.sample(accounts, 2)
            yield ("transfer", src, dst, rng.randint(1, 50))
        elif roll < transfer_ratio + 0.2:
            yield ("deposit", rng.choice(accounts), rng.randint(1, 100))
        elif roll < transfer_ratio + 0.35:
            yield ("withdraw", rng.choice(accounts), rng.randint(1, 80))
        else:
            yield ("balance", rng.choice(accounts))
