"""The Isis/Amoeba-style sequencer-based Atomic Broadcast (Section 2.4).

This is the baseline the paper builds on -- and whose failure mode it
fixes.  The failure-free protocol (Figure 1(a) of the paper):

1. the client sends its request to all replicas in G;
2. one replica, the *sequencer*, assigns sequence numbers and sends them
   to G;
3. each replica delivers requests in sequence-number order and replies;
   the client adopts the first reply (classic active replication).

Failure handling is the lightweight non-view-synchronous scheme whose
cost profile motivated Isis-style systems, and which exhibits exactly the
anomaly of Figure 1(b): a replica that suspects the sequencer bumps its
view; the first unsuspected replica declares itself the new sequencer and
broadcasts *its own* delivery history as the authoritative order of the
new view, then keeps sequencing.  Nothing already delivered is undone, so
if the crashed sequencer had delivered a request and replied before its
ordering message reached anyone, the new order can contradict that reply:
an **external inconsistency** (category (c) in the paper's optimism
classification), and the replicas' states can silently diverge.

The checkers in :mod:`repro.analysis` detect both; benchmark
``benchmarks/test_external_consistency.py`` measures how often they occur
versus the structurally-zero rate of OAR.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Sequence, Set, Tuple

from repro.core.messages import Reply, Request
from repro.failure.detector import (
    FailureDetector,
    HeartbeatFailureDetector,
    resolve_fd,
)
from repro.sim.component import ComponentProcess
from repro.statemachine.base import StateMachine


@dataclass(frozen=True, slots=True)
class OrderMsg:
    """An incremental ordering assignment from the view's sequencer."""

    view: int
    seqno: int
    rid: str


@dataclass(frozen=True, slots=True)
class OrderBatch:
    """One multi-assignment ordering message: contiguous seqnos for many rids.

    ``rids[i]`` is assigned sequence number ``first_seqno + i``.  The
    sequencer emits one of these per drain instead of one
    :class:`OrderMsg` per request when several requests are pending at
    once (takeover re-sequencing, arrival bursts) -- the same batching
    model OAR's ``SeqOrder`` uses (benchmarks B5/B9).
    """

    view: int
    first_seqno: int
    rids: Tuple[str, ...]


@dataclass(frozen=True, slots=True)
class ViewOrder:
    """A new sequencer's takeover: its full history is the view's order."""

    view: int
    sequence: Tuple[str, ...]


class SequencerAtomicBroadcastServer(ComponentProcess):
    """A replica of the sequencer-based Atomic Broadcast group G.

    The constructor mirrors :class:`~repro.core.server.OARServer` so that
    benchmarks can swap protocols; there is no epoch/undo machinery
    because this protocol never repairs -- that is the point of the
    baseline.
    """

    def __init__(
        self,
        pid: str,
        group: Sequence[str],
        machine: StateMachine,
        fd: FailureDetector,
    ) -> None:
        super().__init__(pid)
        if pid not in group:
            raise ValueError(f"{pid} not in group {group}")
        self.group: Tuple[str, ...] = tuple(group)
        #: Fan-out targets (everyone but us), precomputed once.
        self.peers: Tuple[str, ...] = tuple(m for m in self.group if m != pid)
        self.machine = machine
        self.fd = resolve_fd(fd, self)
        fd = self.fd
        self.requests: Dict[str, Request] = {}
        self.delivered: List[str] = []
        self._delivered_set: Set[str] = set()
        self.view = 0
        self._i_am_sequencer = self.group[0] == pid
        self._next_seqno = 1  # sequencer-side: next number to assign
        self._assignments: Dict[int, str] = {}  # receiver: seqno -> rid (current view)
        self._next_deliver = 1  # receiver-side: next seqno to deliver
        # ViewOrder rids awaiting bodies; deque because it drains from
        # the front (pop(0) on a list is O(queue) per delivery).
        self._adopt_queue: Deque[str] = deque()
        # Takeover views already adopted: a duplicated ViewOrder (link
        # faults) must not clear newer assignments or rewind the
        # delivery cursor.  View equality alone cannot be the guard --
        # a higher-view OrderMsg can legitimately bump `view` before
        # its ViewOrder arrives.
        self._adopted_takeovers: Set[int] = set()
        if isinstance(fd, HeartbeatFailureDetector):
            self.add_component(fd)
        fd.add_listener(self._on_suspicion)

    # ------------------------------------------------------------------

    @property
    def chosen_sequencer(self) -> str:
        """The first group member this replica does not suspect."""
        for pid in self.group:
            if not self.fd.is_suspected(pid):
                return pid
        return self.group[0]  # everyone suspected: degenerate fallback

    @property
    def is_sequencer(self) -> bool:
        """True while this replica believes it is the view's sequencer."""
        return self._i_am_sequencer

    @property
    def delivered_order(self) -> Tuple[str, ...]:
        """This replica's delivery order so far (may diverge -- by design)."""
        return tuple(self.delivered)

    # ------------------------------------------------------------------

    def on_app_message(self, src: str, payload: Any) -> None:
        """Dispatch requests, assignments and view takeovers."""
        if isinstance(payload, Request):
            self._on_request(payload)
        elif isinstance(payload, OrderMsg):
            self._on_order(src, payload)
        elif isinstance(payload, OrderBatch):
            self._on_order_batch(src, payload)
        elif isinstance(payload, ViewOrder):
            self._on_view_order(src, payload)

    def _on_request(self, request: Request) -> None:
        if request.rid in self.requests:
            return
        self.requests[request.rid] = request
        self.env.trace("r_deliver", rid=request.rid)
        if self._i_am_sequencer:
            self._sequence(request.rid)
        self._drain()

    # -- sequencer side -------------------------------------------------

    def _sequence(self, rid: str) -> None:
        if rid in self._delivered_set or rid in self._assignments.values():
            return
        order = OrderMsg(view=self.view, seqno=self._next_seqno, rid=rid)
        self._next_seqno += 1
        self.env.trace("seq_assign", rid=rid, seqno=order.seqno, view=self.view)
        send = self.env.send
        for member in self.peers:
            send(member, order)
        self._assignments[order.seqno] = order.rid
        self._drain()

    def _sequence_batch(self, rids: Sequence[str]) -> None:
        """Assign contiguous seqnos to many rids in one ordering message.

        One :class:`OrderBatch` replaces the per-request ``OrderMsg``
        fan-out (|group|-1 sends per request -> per batch), the same
        batching model the OAR sequencer's ``SeqOrder`` uses.
        """
        assigned = self._assignments.values()
        fresh = [
            rid
            for rid in rids
            if rid not in self._delivered_set and rid not in assigned
        ]
        if not fresh:
            return
        if len(fresh) == 1:
            self._sequence(fresh[0])
            return
        first = self._next_seqno
        batch = OrderBatch(view=self.view, first_seqno=first, rids=tuple(fresh))
        for offset, rid in enumerate(fresh):
            self._assignments[first + offset] = rid
            self.env.trace("seq_assign", rid=rid, seqno=first + offset, view=self.view)
        self._next_seqno = first + len(fresh)
        send = self.env.send
        for member in self.peers:
            send(member, batch)
        self._drain()

    # -- receiver side ----------------------------------------------------

    def _on_order(self, src: str, order: OrderMsg) -> None:
        if order.view < self.view:
            return  # assignment from a deposed sequencer
        if order.view == self.view and self.fd.is_suspected(src):
            return
        if order.view > self.view:
            # We have not executed the view change locally yet; trust the
            # higher view (its ViewOrder is on the way or was processed).
            self.view = order.view
        if order.seqno < self._next_deliver:
            return  # stale duplicate: this slot was already delivered
        self._assignments[order.seqno] = order.rid
        self._drain()

    def _on_order_batch(self, src: str, batch: OrderBatch) -> None:
        if batch.view < self.view:
            return  # assignments from a deposed sequencer
        if batch.view == self.view and self.fd.is_suspected(src):
            return
        if batch.view > self.view:
            self.view = batch.view
        assignments = self._assignments
        first = batch.first_seqno
        next_deliver = self._next_deliver
        for offset, rid in enumerate(batch.rids):
            seqno = first + offset
            if seqno < next_deliver:
                continue  # stale duplicate: slot already delivered
            assignments[seqno] = rid
        self._drain()

    def _on_view_order(self, src: str, takeover: ViewOrder) -> None:
        if takeover.view < self.view or self.fd.is_suspected(src):
            return
        if takeover.view in self._adopted_takeovers:
            return  # duplicated takeover: already adopted this view
        self._adopted_takeovers.add(takeover.view)
        self.view = takeover.view
        self._i_am_sequencer = False
        self._assignments.clear()
        self.env.trace("view_adopt", view=self.view, sequencer=src)
        # The new sequencer's history is the authoritative order of the
        # new view: deliver anything in it we have not delivered (nothing
        # already delivered is undone -- this is where replica states can
        # diverge).  Subsequent OrderMsg seqnos continue after the history.
        self._adopt_queue.extend(
            rid for rid in takeover.sequence if rid not in self._delivered_set
        )
        self._next_deliver = len(takeover.sequence) + 1
        self._drain()

    def _drain(self) -> None:
        """Deliver adopted-history rids, then contiguous assignments."""
        while self._adopt_queue and self._adopt_queue[0] in self.requests:
            rid = self._adopt_queue.popleft()
            if rid not in self._delivered_set:
                self._deliver(rid)
        if self._adopt_queue:
            return  # order within the adopted history must be respected
        while True:
            rid = self._assignments.get(self._next_deliver)
            if rid is None or rid not in self.requests:
                return
            del self._assignments[self._next_deliver]
            self._next_deliver += 1
            if rid not in self._delivered_set:
                self._deliver(rid)

    def _deliver(self, rid: str) -> None:
        request = self.requests[rid]
        result = self.machine.apply(request.op)
        self.delivered.append(rid)
        self._delivered_set.add(rid)
        position = len(self.delivered)
        self.env.trace(
            "a_deliver", rid=rid, position=position, value=result, epoch=self.view
        )
        self.env.send(
            request.client,
            Reply(
                rid=rid,
                value=result,
                position=position,
                weight=frozenset({self.pid}),
                epoch=self.view,
                conservative=True,
            ),
        )

    # ------------------------------------------------------------------

    def _on_suspicion(self, pid: str, suspected: bool) -> None:
        if not suspected or self.crashed:
            return
        chosen = self.chosen_sequencer
        if chosen == self.pid and not self._i_am_sequencer:
            self._take_over()

    def _take_over(self) -> None:
        """Become the sequencer of a new view."""
        self.view += 1
        self._i_am_sequencer = True
        self._assignments.clear()
        self._adopt_queue.clear()
        self.env.trace("view_change", view=self.view, sequencer=self.pid)
        takeover = ViewOrder(view=self.view, sequence=tuple(self.delivered))
        send = self.env.send
        for member in self.peers:
            send(member, takeover)
        self._next_seqno = len(self.delivered) + 1
        self._next_deliver = self._next_seqno
        # One multi-assignment message re-sequences the whole undelivered
        # backlog (was one OrderMsg fan-out per request).
        self._sequence_batch(
            [rid for rid in self.requests if rid not in self._delivered_set]
        )
