"""Conservative Atomic Broadcast by reduction to consensus [CT96].

The classic Chandra-Toueg reduction: requests are disseminated with
reliable multicast; replicas run a sequence of consensus instances, each
deciding the *batch* of messages to deliver next.  Delivery happens only
after consensus -- total order can never be violated, but every request
pays the full consensus latency (3+ communication phases) instead of the
sequencer's single phase.

This is the conservative end of the latency/consistency trade-off the
paper discusses (Section 1): ``benchmarks/test_latency_failure_free.py``
quantifies the gap that motivates optimistic protocols.

The batch order within a decision is made deterministic exactly like
Cnsv-order does: the decision vector is the (pid-sorted) collection of
proposed batches of a majority; replicas deliver their deduplicated
concatenation (⊎), skipping already-delivered messages.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Sequence, Set, Tuple

from repro.broadcast.reliable import ReliableMulticast
from repro.consensus.chandra_toueg import ConsensusManager
from repro.core.messages import Reply, Request
from repro.core.sequences import MessageSequence, merge_dedup
from repro.failure.detector import (
    FailureDetector,
    HeartbeatFailureDetector,
    resolve_fd,
)
from repro.sim.component import ComponentProcess
from repro.statemachine.base import StateMachine


class CTAtomicBroadcastServer(ComponentProcess):
    """A replica delivering requests through per-batch consensus."""

    def __init__(
        self,
        pid: str,
        group: Sequence[str],
        machine: StateMachine,
        fd: FailureDetector,
    ) -> None:
        super().__init__(pid)
        if pid not in group:
            raise ValueError(f"{pid} not in group {group}")
        self.group: Tuple[str, ...] = tuple(group)
        self.machine = machine
        self.fd = resolve_fd(fd, self)
        fd = self.fd
        self.requests: Dict[str, Request] = {}
        self.r_delivered: List[str] = []
        self.delivered: List[str] = []
        self._delivered_set: Set[str] = set()
        self._instance = 0
        self._proposing = False
        # Decided rids awaiting bodies.  A deque: this was a list popped
        # with pop(0), which turned a long decided-but-unknown backlog
        # into an O(n^2) drain (perf regression guard -- keep popleft).
        self._deliver_queue: Deque[str] = deque()
        self.rmc = self.add_component(ReliableMulticast(self, self._on_rdeliver))
        self.consensus = self.add_component(ConsensusManager(self, self.group, fd))
        if isinstance(fd, HeartbeatFailureDetector):
            self.add_component(fd)

    @property
    def delivered_order(self) -> Tuple[str, ...]:
        """The (always totally ordered) delivery sequence so far."""
        return tuple(self.delivered)

    # ------------------------------------------------------------------

    def _on_rdeliver(self, origin: str, payload: Any) -> None:
        if not isinstance(payload, Request):
            raise TypeError(f"unexpected R-delivered payload: {payload!r}")
        if payload.rid in self.requests:
            return
        self.requests[payload.rid] = payload
        self.r_delivered.append(payload.rid)
        self.env.trace("r_deliver", rid=payload.rid)
        self._drain_deliver_queue()
        self._maybe_start_instance()

    def _undelivered(self) -> Tuple[str, ...]:
        queued = set(self._deliver_queue)
        return tuple(
            rid
            for rid in self.r_delivered
            if rid not in self._delivered_set and rid not in queued
        )

    def _maybe_start_instance(self) -> None:
        """Launch the next consensus instance if there is work and none runs."""
        if self._proposing:
            return
        batch = self._undelivered()
        if not batch:
            return
        self._proposing = True
        instance_id = ("abcast", self._instance)
        self.env.trace("abcast_propose", instance=self._instance, batch=batch)
        # Proposals are (batch,) 1-tuples so the decision vector shape is
        # uniform with other consensus users.
        self.consensus.propose(instance_id, batch, self._on_decide)

    def _on_decide(self, instance_id: Tuple[str, int], vector: Any) -> None:
        _tag, number = instance_id
        if number != self._instance:
            raise RuntimeError(
                f"{self.pid}: decision for instance {number}, expected {self._instance}"
            )
        # Deterministic merged order of the decided batches (pid-sorted
        # vector, first occurrence wins) -- same ⊎ discipline as Cnsv-order.
        merged: MessageSequence = merge_dedup(*(batch for _pid, batch in vector))
        self.env.trace(
            "abcast_decide", instance=number, order=merged.items,
        )
        for rid in merged:
            if rid not in self._delivered_set and rid not in self._deliver_queue:
                self._deliver_queue.append(rid)
        self._instance += 1
        self._proposing = False
        self._drain_deliver_queue()
        self._maybe_start_instance()

    def _drain_deliver_queue(self) -> None:
        queue = self._deliver_queue
        requests = self.requests
        while queue and queue[0] in requests:
            self._deliver(queue.popleft())

    def _deliver(self, rid: str) -> None:
        request = self.requests[rid]
        result = self.machine.apply(request.op)
        self.delivered.append(rid)
        self._delivered_set.add(rid)
        position = len(self.delivered)
        self.env.trace(
            "a_deliver", rid=rid, position=position, value=result, epoch=0
        )
        self.env.send(
            request.client,
            Reply(
                rid=rid,
                value=result,
                position=position,
                weight=frozenset(self.group),
                epoch=0,
                conservative=True,
            ),
        )
