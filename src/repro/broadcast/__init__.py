"""Broadcast substrates and baselines.

* :mod:`repro.broadcast.reliable` -- the R-multicast primitive of the
  paper's system model (Section 3): Validity, Agreement, Integrity.
* :mod:`repro.broadcast.sequencer` -- the Isis/Amoeba-style
  sequencer-based Atomic Broadcast of Section 2.4, including the external
  inconsistency of Figure 1(b).  This is the baseline OAR builds on and
  fixes.
* :mod:`repro.broadcast.ct_abcast` -- conservative Atomic Broadcast by
  reduction to consensus [CT96]: always consistent, higher latency.  This
  is the conservative end of the latency/consistency trade-off the paper
  discusses.
"""

from repro.broadcast.ct_abcast import CTAtomicBroadcastServer
from repro.broadcast.reliable import ReliableMulticast, RMsg
from repro.broadcast.sequencer import SequencerAtomicBroadcastServer

__all__ = [
    "CTAtomicBroadcastServer",
    "ReliableMulticast",
    "RMsg",
    "SequencerAtomicBroadcastServer",
]
