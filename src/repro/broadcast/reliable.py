"""Reliable multicast: the R-multicast(m, Π) primitive of Section 3.

Properties (quoted from the paper):

* **Validity** -- if a correct process executes R-multicast(m, Π), then
  every correct process in Π eventually R-delivers m.
* **Agreement** -- if a correct process R-delivers m, then all correct
  processes in Π eventually R-deliver m.
* **Integrity** -- every process R-delivers m at most once, and only if m
  was previously R-multicast.

The classic crash-fault implementation: on first receipt of a message,
relay it to the whole group, then deliver.  If the original sender crashes
mid-multicast so that only some members received it, the relays complete
the dissemination -- this is what makes the OAR algorithm's Proposition 4
(at-least-once request handling) hold even when the client or sequencer
crashes at the worst moment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Sequence, Set, Tuple

from repro.sim.component import Component
from repro.sim.process import Process


@dataclass(frozen=True, slots=True)
class RMsg:
    """The relay envelope of the reliable-multicast protocol."""

    mid: str
    origin: str
    payload: Any
    group: Tuple[str, ...]

    def __repr__(self) -> str:
        return f"RMsg({self.mid} from {self.origin}: {self.payload!r})"


class ReliableMulticast(Component):
    """Relay-on-first-receipt reliable multicast.

    The host receives R-delivered payloads through ``deliver``, called as
    ``deliver(origin, payload)`` -- ``origin`` is the process that invoked
    :meth:`multicast`, not the relaying neighbour.
    """

    MESSAGE_TYPES = (RMsg,)

    def __init__(
        self,
        host: Process,
        deliver: Callable[[str, Any], None],
    ) -> None:
        super().__init__(host)
        self._deliver = deliver
        self._seen: Set[str] = set()
        self._counter = itertools.count()
        # group -> (peers-other-than-self, self in group): multicast and
        # relay fan out to the same few groups thousands of times, so the
        # per-call "everyone but me" filtering is computed once per group.
        self._fanout: dict = {}

    def _group_fanout(self, group: Tuple[str, ...]) -> Tuple[Tuple[str, ...], bool]:
        cached = self._fanout.get(group)
        if cached is None:
            pid = self.host.pid
            cached = (tuple(m for m in group if m != pid), pid in group)
            self._fanout[group] = cached
        return cached

    def multicast(self, payload: Any, group: Sequence[str]) -> str:
        """R-multicast ``payload`` to ``group``; returns the message id.

        If the caller is itself a member of ``group``, its own delivery
        happens locally (no network hop), scheduled as a separate task to
        preserve handler mutual exclusion.
        """
        mid = f"{self.host.pid}:{next(self._counter)}"
        group_tuple = tuple(group)
        message = RMsg(mid=mid, origin=self.host.pid, payload=payload, group=group_tuple)
        self._seen.add(mid)
        peers, self_member = self._group_fanout(group_tuple)
        env = self.env
        send = env.send
        for member in peers:
            send(member, message)
        if self_member:
            env.post(0.0, lambda: self._deliver(self.host.pid, payload))
        return mid

    def on_message(self, src: str, payload: RMsg) -> None:
        """First receipt: relay to the group, then deliver locally."""
        if payload.mid in self._seen:
            return
        self._seen.add(payload.mid)
        # Relay before delivering: if this process crashes inside the
        # delivery handler the relays have already left.
        peers, _ = self._group_fanout(payload.group)
        send = self.env.send
        for member in peers:
            send(member, payload)
        self._deliver(payload.origin, payload.payload)
