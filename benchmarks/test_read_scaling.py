"""Experiment B12: read goodput vs. replica count (replica-local reads).

The paper's protocol orders *every* request through the sequencer, so a
90/10 read/write mix pays the single ordering pipeline for reads that
never change state.  The replica-local read path (``OARConfig.read_mode``)
answers reads at the replicas instead: with a per-replica read service
time (``read_cost``), optimistic reads spread round-robin over n
replicas give an aggregate read capacity of ``n/read_cost`` -- read
goodput scales with *replica count* -- while the sequencer-path baseline
stays pinned at the ordering pipeline's rate no matter how many replicas
exist.  Conservative mode is the middle ground: safe against optimistic
staleness, but every replica serves every read, so capacity does not
scale.

Assertions (shape, not absolute numbers):

* optimistic read goodput grows monotonically over 3 -> 5 -> 7 replicas
  and clearly beats the sequencer path;
* sequencer-path read goodput is flat in replica count (the pipeline is
  the bottleneck);
* write goodput with the read path enabled stays within 5% of (in
  practice: above) the sequencer-read baseline -- offloading reads must
  not cost the ordered path anything;
* the read-consistency checker passes: zero adopted-mode violations,
  optimistic staleness merely counted.
"""

import pytest

from repro.analysis import checkers
from repro.core.server import OARConfig
from repro.harness import Table, write_result
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.statemachine import KVStoreMachine

pytestmark = pytest.mark.bench

REPLICA_COUNTS = [3, 5, 7]
ORDER_COST = 0.5  #: sequencer service time => 2 ordered req/unit
READ_COST = 0.5  #: replica read service time => 2 reads/unit per replica
CLIENTS = 4
REQUESTS = 60  #: per client; 240 total
RATE = 4.0  #: per client; 16 req/unit offered >> any single pipeline
READ_RATIO = 0.9


def run_mix(n_servers: int, read_mode: str, seed: int = 0):
    run = run_scenario(
        ScenarioConfig(
            machine="kv",
            n_servers=n_servers,
            n_clients=CLIENTS,
            requests_per_client=REQUESTS,
            read_mode=read_mode,
            read_ratio=READ_RATIO,
            n_keys=32,
            zipf_s=1.2,
            driver="open",
            open_rate=RATE,
            oar=OARConfig(order_cost=ORDER_COST, read_cost=READ_COST),
            grace=200.0,
            horizon=200_000.0,
            seed=seed,
        )
    )
    assert run.all_done()
    run.check_all()
    return run


def goodputs(run):
    """(read goodput, write goodput), classified by *operation*.

    In sequencer mode reads are ordered like writes and surface as plain
    ``adopt`` events, so adoptions are split by the submitted op (get vs
    set), not by which path answered them -- that is what makes the
    baseline comparable.
    """
    op_of = {e["rid"]: e["op"] for e in run.trace.events(kind="submit")}
    op_of.update(
        {e["rid"]: e["op"] for e in run.trace.events(kind="read_submit")}
    )
    adopts = {"get": [], "set": []}
    for e in run.trace.events_of_kinds(("adopt", "read_adopt")):
        op = op_of.get(e["rid"])
        if op is not None:
            adopts[op[0]].append(e.time)
    start = min(
        e.time for e in run.trace.events_of_kinds(("submit", "read_submit"))
    )

    def rate(times):
        span = (max(times) - start) if times else 0.0
        return len(times) / span if span > 0 else 0.0

    return rate(adopts["get"]), rate(adopts["set"])


def read_stats(run):
    return checkers.check_read_consistency(
        run.trace, run.servers, KVStoreMachine
    )


class TestB12ReadScaling:
    def test_read_goodput_scales_with_replicas(self):
        table = Table(
            "B12  read goodput vs replicas -- 90/10 Zipf mix, "
            f"order_cost={ORDER_COST}, read_cost={READ_COST}",
            [
                "replicas",
                "read mode",
                "read goodput",
                "write goodput",
                "reads",
                "stale opt reads",
            ],
        )
        measured = {}
        for mode in ("sequencer", "optimistic", "conservative"):
            for n in REPLICA_COUNTS:
                if mode == "conservative" and n != 3:
                    continue  # one row: its capacity provably cannot scale
                run = run_mix(n, mode)
                reads, writes = goodputs(run)
                stats = read_stats(run)
                measured[(mode, n)] = (reads, writes)
                if mode == "sequencer":
                    row_reads = "(ordered)"
                    stale = "-"
                else:
                    row_reads = stats["reads"]
                    stale = stats["stale_optimistic"]
                table.add_row(n, mode, reads, writes, row_reads, stale)

        write_result("B12_read_scaling", table.render())

        opt = {n: measured[("optimistic", n)][0] for n in REPLICA_COUNTS}
        seq = {n: measured[("sequencer", n)][0] for n in REPLICA_COUNTS}

        # Read goodput scales with replica count on the local path...
        assert opt[3] < opt[5] < opt[7]
        assert opt[7] > 1.5 * opt[3]
        # ...and not on the sequencer path (flat within 25%).
        flat = max(seq.values()) <= 1.25 * min(seq.values())
        assert flat, f"sequencer-path reads should not scale: {seq}"
        # The local path beats the ordered path outright at every size.
        assert all(opt[n] > 2.0 * seq[n] for n in REPLICA_COUNTS)

    def test_write_goodput_unharmed_by_the_read_path(self):
        # Writes with replica-local reads enabled vs. the PR 3 baseline
        # (every read ordered): offloading reads must keep write goodput
        # within 5% -- in practice it improves, since the sequencer no
        # longer queues reads ahead of writes.
        _, writes_local = goodputs(run_mix(3, "optimistic", seed=1))
        _, writes_baseline = goodputs(run_mix(3, "sequencer", seed=1))
        assert writes_local >= 0.95 * writes_baseline

    def test_conservative_mode_is_safe_but_does_not_scale(self):
        runs = {n: run_mix(n, "conservative", seed=2) for n in (3, 7)}
        for run in runs.values():
            stats = read_stats(run)
            assert stats["conservative"] == stats["reads"] > 0
        r3, _ = goodputs(runs[3])
        r7, _ = goodputs(runs[7])
        # Every replica serves every read: no meaningful scaling.
        assert r7 <= 1.25 * r3
