"""Experiment B8: wall-clock latency on the asyncio runtimes.

Sanity check that the *shape* of the simulator results carries over to a
real networked execution: the same protocol objects run over in-process
asyncio queues and over localhost TCP sockets; all requests are adopted,
total order holds, and the latency distribution is reported.

Absolute numbers here are loopback-scale (microseconds-milliseconds),
not the paper's LAN-scale; the honest comparison is the *ratio* between
protocols and the zero inconsistency count, which match the simulator.
"""

import asyncio

import pytest

from repro.analysis import checkers
from repro.analysis.stats import summarize
from repro.core.client import OARClient
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import HeartbeatFailureDetector
from repro.harness import Table, write_result
from repro.runtime import AsyncioCluster, TcpCluster
from repro.statemachine import CounterMachine

pytestmark = pytest.mark.bench


REQUESTS = 30


def run_cluster(cluster_kind: str, n_servers: int = 3, trace_level: str = "off"):
    # trace_level defaults to "off": these are wall-clock latency cells,
    # and full tracing is a hot-path cost the checker-less runs must not
    # pay.  The consistency test below opts back into "full".
    async def scenario():
        if cluster_kind == "tcp":
            cluster = TcpCluster(trace_level=trace_level)
        else:
            cluster = AsyncioCluster(link_delay=0.0005, trace_level=trace_level)
        group = [f"p{i + 1}" for i in range(n_servers)]
        servers = []
        for pid in group:
            server = OARServer(
                pid,
                group,
                CounterMachine(),
                lambda host: HeartbeatFailureDetector(
                    host, group, interval=0.5, timeout=2.0
                ),
                OARConfig(),
            )
            servers.append(server)
            cluster.add_process(server)
        client = OARClient("c1", group)
        cluster.add_process(client)

        submitted = {"n": 0}

        def submit_next(_adopted=None) -> None:
            if submitted["n"] < REQUESTS:
                submitted["n"] += 1
                client.submit(("incr",))

        client.on_adopt = submit_next
        await cluster.start()
        submit_next()
        done = await cluster.run_until(
            lambda: len(client.adopted) >= REQUESTS, timeout=30
        )
        await cluster.shutdown()
        return cluster, servers, client, done

    return asyncio.run(scenario())


@pytest.mark.parametrize("cluster_kind", ["inmemory", "tcp"])
def test_runtime_completes_consistently(benchmark, cluster_kind):
    cluster, servers, client, done = benchmark.pedantic(
        run_cluster,
        args=(cluster_kind,),
        kwargs={"trace_level": "full"},  # the external-consistency check reads it
        rounds=1,
        iterations=1,
    )
    assert done
    assert len(client.adopted) == REQUESTS
    values = sorted(a.value.value for a in client.adopted.values())
    assert values == list(range(1, REQUESTS + 1))
    checkers.check_total_order(servers)
    checkers.check_replica_convergence(servers)
    checkers.check_external_consistency(cluster.trace, strict=False)


def test_b8_report(benchmark):
    rows = []
    for kind in ("inmemory", "tcp"):
        for n_servers in (3, 5):
            _cluster, _servers, client, done = run_cluster(kind, n_servers)
            assert done
            stats = summarize(
                [a.latency * 1000.0 for a in client.adopted.values()]
            )
            rows.append((kind, n_servers, stats.mean, stats.median, stats.p95))
    benchmark.pedantic(run_cluster, args=("inmemory",), rounds=1, iterations=1)

    table = Table(
        "B8 -- OAR wall-clock latency on the asyncio runtimes (ms)",
        ["transport", "servers", "mean", "p50", "p95"],
    )
    for row in rows:
        table.add_row(*row)
    lines = [
        table.render(),
        "",
        "shape: all requests adopt with zero inconsistencies on both",
        "transports; latency is loopback-scale and grows mildly with the",
        "group size (more weight-bearing replies in flight).",
    ]
    write_result("B8_asyncio_runtime", "\n".join(lines))
