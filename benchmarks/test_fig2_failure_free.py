"""Experiment F2: Figure 2 -- the OAR algorithm with no failure nor suspicion.

Five requests in two sequencer batches, all Opt-delivered in the same
order at every server, zero conservative phases.
"""

from repro.harness.figures import run_figure_2
from repro.harness.tables import Table, write_result

import pytest

pytestmark = pytest.mark.bench


EXPECTED = ("c1-0", "c1-1", "c1-2", "c1-3", "c1-4")


def test_fig2_failure_free(benchmark):
    run = benchmark.pedantic(run_figure_2, rounds=3, iterations=1)
    for pid in ("p1", "p2", "p3"):
        assert run.opt_delivered(pid) == EXPECTED
    assert run.trace.events(kind="phase2_start") == []
    assert run.trace.events(kind="opt_undeliver") == []
    assert len(run.adopted()) == 5


def test_fig2_report(benchmark):
    run = benchmark.pedantic(run_figure_2, rounds=1, iterations=1)
    table = Table(
        "F2 -- Figure 2: OAR failure-free run (3 servers, batches {m1;m2},{m3;m4;m5})",
        ["server", "Opt-delivered", "A-delivered", "Opt-undelivered"],
    )
    for pid in ("p1", "p2", "p3"):
        table.add_row(
            pid,
            ";".join(run.opt_delivered(pid)),
            ";".join(run.a_delivered(pid)) or "-",
            ";".join(run.opt_undelivered(pid)) or "-",
        )
    batches = [e["rids"] for e in run.trace.events(kind="seq_order")]
    lines = [
        table.render(),
        "",
        f"sequencer batches: {[';'.join(b) for b in batches]}",
        f"phase-2 executions: {len(run.trace.events(kind='phase2_start'))}",
        f"client adoptions (all optimistic): {len(run.adopted())}",
    ]
    write_result("F2_figure2_failure_free", "\n".join(lines))
