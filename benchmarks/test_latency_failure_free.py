"""Experiment B1: failure-free latency -- OAR vs the baselines.

The paper's efficiency claim (Sections 1, 6): like sequencer-based
Atomic Broadcast, OAR "requires only one phase for ordering messages in
absence of failures", whereas conservative (consensus-based) Atomic
Broadcast pays the full consensus latency on every request.

Measured shape (simulated time units; 1.0 = one one-way message delay):

* sequencer baseline + first-reply client: 2 phases (the sequencer's own
  reply arrives first),
* OAR + weighted-quorum client: 3 phases (safety costs exactly the wait
  for one weight-2 reply),
* passive replication: 4 phases (request, update, ack, reply),
* CT Atomic Broadcast: >= 5 phases (request + consensus + reply).
"""

import pytest

from repro.analysis.stats import summarize
from repro.harness import ScenarioConfig, Table, run_scenario, write_result

pytestmark = pytest.mark.bench


PROTOCOLS = ["oar", "sequencer", "passive", "ct"]
GROUP_SIZES = [3, 5, 7, 9]
REQUESTS = 30


def run_protocol(protocol: str, n_servers: int, seed: int = 0):
    return run_scenario(
        ScenarioConfig(
            protocol=protocol,
            n_servers=n_servers,
            n_clients=1,
            requests_per_client=REQUESTS,
            seed=seed,
            grace=100.0,
        )
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_latency_by_protocol(benchmark, protocol):
    run = benchmark.pedantic(
        run_protocol, args=(protocol, 3), rounds=3, iterations=1
    )
    assert run.all_done()
    stats = summarize(run.latencies())
    if protocol == "sequencer":
        assert stats.mean == pytest.approx(2.0)
    elif protocol == "oar":
        assert stats.mean == pytest.approx(3.0)
    elif protocol == "passive":
        assert stats.mean == pytest.approx(4.0)
    else:  # ct
        assert stats.mean >= 5.0


def test_b1_report(benchmark):
    results = {}
    for protocol in PROTOCOLS:
        for n_servers in GROUP_SIZES:
            run = run_protocol(protocol, n_servers)
            assert run.all_done(), f"{protocol}/{n_servers} did not finish"
            results[(protocol, n_servers)] = summarize(run.latencies())
    benchmark.pedantic(run_protocol, args=("oar", 3), rounds=1, iterations=1)

    table = Table(
        "B1 -- Failure-free client latency (simulated one-way delays)",
        ["protocol", "n=3 mean", "n=5 mean", "n=7 mean", "n=9 mean", "n=3 p95"],
    )
    for protocol in PROTOCOLS:
        row = [protocol]
        for n_servers in GROUP_SIZES:
            row.append(results[(protocol, n_servers)].mean)
        row.append(results[(protocol, 3)].p95)
        table.add_row(*row)

    oar = results[("oar", 3)].mean
    seq = results[("sequencer", 3)].mean
    ct = results[("ct", 3)].mean
    lines = [
        table.render(),
        "",
        f"shape: sequencer ({seq:.1f}) < OAR ({oar:.1f}) << CT abcast ({ct:.1f})",
        f"OAR pays +{oar - seq:.1f} phase over the unsafe sequencer for external",
        f"consistency, and saves {ct - oar:.1f} phases vs conservative ABcast.",
        "Latency is flat in group size for all protocols (no quorum round-trips",
        "on the fast path).",
    ]
    write_result("B1_latency_failure_free", "\n".join(lines))

    # Shape assertions (the paper's ordering of protocols).
    for n_servers in GROUP_SIZES:
        assert (
            results[("sequencer", n_servers)].mean
            < results[("oar", n_servers)].mean
            < results[("ct", n_servers)].mean
        )
        assert results[("oar", n_servers)].mean < results[("passive", n_servers)].mean
