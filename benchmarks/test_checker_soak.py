"""Experiment P1-P7 (timed form): proposition checkers over a fault soak.

Runs a batch of randomized crash/suspicion schedules and times the full
checker bundle (the machine-checkable Propositions 1-7 and the
Cnsv-order specification) over their traces.  Doubles as a performance
regression guard for the simulator and a last-line correctness soak in
the benchmark suite.
"""

import random

from repro.faults import random_fault_schedule
from repro.harness import ScenarioConfig, Table, run_scenario, write_result

import pytest

pytestmark = pytest.mark.bench


SEEDS = range(6)


def run_soak():
    runs = []
    for seed in SEEDS:
        rng = random.Random(seed * 977)
        schedule = random_fault_schedule(
            rng,
            ["p1", "p2", "p3"],
            horizon=50.0,
            max_crashes=1,
            suspicion_rate=0.5,
        )
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=2,
                requests_per_client=8,
                fd_interval=2.0,
                fd_timeout=6.0,
                fault_schedule=schedule,
                grace=250.0,
                seed=seed,
            )
        )
        runs.append(run)
    return runs


def check_everything(runs):
    for run in runs:
        run.check_all(strict=False)
    return len(runs)


def test_soak_runs_and_checks(benchmark):
    runs = run_soak()
    checked = benchmark.pedantic(
        check_everything, args=(runs,), rounds=3, iterations=1
    )
    assert checked == len(list(SEEDS))
    assert all(run.all_done() for run in runs)


def test_p_report(benchmark):
    runs = run_soak()
    benchmark.pedantic(check_everything, args=(runs,), rounds=1, iterations=1)
    table = Table(
        "P1-P7 -- proposition checker soak (randomized fault schedules)",
        ["seed", "crashes", "phase-2 epochs", "undos", "adoptions", "all checks"],
    )
    for seed, run in zip(SEEDS, runs):
        table.add_row(
            seed,
            len(run.trace.events(kind="crash")),
            len({e["epoch"] for e in run.trace.events(kind="phase2_start")}),
            len(run.trace.events(kind="opt_undeliver")),
            len(run.trace.events(kind="adopt")),
            "pass",
        )
    write_result("P_proposition_soak", table.render())
