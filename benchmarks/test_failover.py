"""Experiment B4: fail-over time vs. failure-detector timeout.

Section 2.2's motivation for FD-based protocols: the crash-detection
timeout directly bounds the service blackout after the sequencer dies.
We crash the sequencer mid-run and measure the *blackout*: the longest
gap between consecutive client adoptions.  Sweeping the ◇S timeout shows
the linear relationship (and the aggressive-detection trade-off: short
timeouts recover fast but risk wrong suspicions, measured as extra
conservative phases).
"""

import pytest

from repro.faults import FaultSchedule
from repro.harness import ScenarioConfig, Table, run_scenario, write_result

pytestmark = pytest.mark.bench


TIMEOUTS = [3.0, 6.0, 12.0, 24.0]
CRASH_AT = 10.0


def run_failover(timeout: float, seed: int = 0):
    return run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=12,
            fd_interval=1.0,
            fd_timeout=timeout,
            fault_schedule=FaultSchedule().crash(CRASH_AT, "p1"),
            grace=300.0,
            horizon=5_000.0,
            seed=seed,
        )
    )


def blackout(run) -> float:
    adoption_times = sorted(e.time for e in run.trace.events(kind="adopt"))
    gaps = [
        later - earlier
        for earlier, later in zip(adoption_times, adoption_times[1:])
    ]
    return max(gaps) if gaps else 0.0


@pytest.mark.parametrize("timeout", [3.0, 12.0])
def test_failover_completes(benchmark, timeout):
    run = benchmark.pedantic(
        run_failover, args=(timeout,), rounds=2, iterations=1
    )
    assert run.all_done()
    run.check_all(strict=False)


def run_aggressive(timeout: float, seed: int = 0):
    """No crash at all: an over-aggressive timeout on a jittery network
    produces wrong suspicions, whose cost is conservative-phase churn."""
    from repro.sim.latency import LanProfile

    return run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=12,
            latency=LanProfile(
                base=1.0, jitter=0.3, spike_probability=0.08, spike_factor=8.0
            ),
            fd_interval=1.0,
            fd_timeout=timeout,
            grace=300.0,
            horizon=5_000.0,
            seed=seed,
        )
    )


def test_b4_report(benchmark):
    rows = []
    for timeout in TIMEOUTS:
        run = run_failover(timeout)
        assert run.all_done()
        rows.append(
            (
                timeout,
                blackout(run),
                len(run.trace.events(kind="phase2_start")),
                run.correct_servers[0].epoch,
            )
        )
    benchmark.pedantic(run_failover, args=(TIMEOUTS[0],), rounds=1, iterations=1)

    table = Table(
        "B4a -- Fail-over blackout vs ◇S timeout (sequencer crash at t=10)",
        ["fd timeout", "blackout (time units)", "phase-2 events", "final epoch"],
    )
    for timeout, gap, phase2, epoch in rows:
        table.add_row(timeout, gap, phase2, epoch)

    # B4b: the flip side -- aggressive timeouts on a spiky network cause
    # wrong suspicions; safety holds but the conservative phase churns.
    aggressive_rows = []
    for timeout in (2.0, 4.0, 8.0, 16.0):
        epochs = 0
        conservative = 0
        adoptions = 0
        for seed in range(3):
            run = run_aggressive(timeout, seed)
            run.check_all(strict=False, at_least_once=False)
            epochs += run.correct_servers[0].epoch
            adopts = run.trace.events(kind="adopt")
            adoptions += len(adopts)
            conservative += sum(1 for a in adopts if a["conservative"])
        aggressive_rows.append(
            (timeout, epochs / 3, 100.0 * conservative / max(1, adoptions))
        )

    aggressive_table = Table(
        "B4b -- Cost of over-aggressive timeouts (no crash; spiky LAN; 3 seeds)",
        ["fd timeout", "mean epochs (wrong-suspicion churn)", "% conservative adoptions"],
    )
    for timeout, epochs, fraction in aggressive_rows:
        aggressive_table.add_row(timeout, epochs, f"{fraction:.0f}%")

    lines = [
        table.render(),
        "",
        aggressive_table.render(),
        "",
        "shape: the blackout tracks the detection timeout (suspicion ->",
        "PhaseII -> consensus adds a constant), while too-small timeouts",
        "buy fast fail-over at the price of wrong-suspicion churn -- the",
        "Section 2.2 trade-off in both directions.  Safety holds at every",
        "point of the sweep (the checkers run on all of these).",
    ]
    write_result("B4_failover", "\n".join(lines))

    blackouts = [gap for _t, gap, _p, _e in rows]
    assert blackouts[0] < blackouts[-1]
    # Blackout must exceed the timeout (detection) but stay within
    # timeout + a small constant (recovery).
    for timeout, gap, _phase2, _epoch in rows:
        assert gap >= timeout * 0.8
        assert gap <= timeout + CRASH_AT + 30.0
    # Churn decreases as the timeout grows.
    assert aggressive_rows[0][1] >= aggressive_rows[-1][1]
