"""Experiment B13: write goodput vs. execution lanes (parallel apply path).

Through PR 4 replica *execution* was free and serial: ``apply_with_undo``
ran inline at delivery time, so ordering (``order_cost``) and reads
(``read_cost``) were the only modeled costs.  B13 measures the new
execution service model (``OARConfig.exec_cost`` / ``exec_lanes``,
:mod:`repro.core.execution`): each replica charges ``exec_cost`` per
operation on one of ``exec_lanes`` worker lanes, and operations whose
``keys_of`` footprints are disjoint execute concurrently while
conflicting operations are dependency-chained in delivered order.

With ``exec_cost`` dominant (instant sequencer, saturating open-loop
offered load):

* a **disjoint-key workload** (near-uniform writes over 64 keys) scales:
  aggregate execution capacity is ``exec_lanes/exec_cost``, so goodput
  at 4 lanes must be at least 2x goodput at 1 lane;
* a **single-hot-key workload** stays flat: every write conflicts with
  every other, the dependency chain serializes them, and extra lanes buy
  nothing -- the quantitative case for key *splitting* (ROADMAP open
  item) as the next hot-shard mitigation;
* determinism is preserved: the 4-lane run's replica states are
  byte-identical to the free-execution (``exec_cost=0``) run's states,
  and the full checker bundle passes.
"""

import pytest

from repro.core.server import OARConfig
from repro.harness import Table, write_result
from repro.harness.scenario import ScenarioConfig, run_scenario

pytestmark = pytest.mark.bench

LANE_COUNTS = [1, 2, 4]
EXEC_COST = 0.5  #: per-op execution service time => 2 ops/unit per lane
CLIENTS = 4
REQUESTS = 50  #: per client; 200 total
RATE = 4.0  #: per client; 16 req/unit offered >> any lane configuration
N_KEYS = 64  #: disjoint workload: near-uniform writes over 64 keys


def run_writes(exec_lanes: int, n_keys: int, seed: int = 0, exec_cost: float = EXEC_COST):
    """A saturated pure-write run with the given lane count and key spread.

    ``read_ratio=0.0`` turns the B12 workload into pure Zipf writes; a
    near-zero skew makes them effectively uniform (disjoint footprints),
    ``n_keys=1`` makes every write conflict with every other.
    """
    run = run_scenario(
        ScenarioConfig(
            machine="kv",
            n_servers=3,
            n_clients=CLIENTS,
            requests_per_client=REQUESTS,
            read_ratio=0.0,
            n_keys=n_keys,
            zipf_s=0.05,
            driver="open",
            open_rate=RATE,
            oar=OARConfig(exec_cost=exec_cost, exec_lanes=exec_lanes),
            grace=200.0,
            horizon=200_000.0,
            seed=seed,
        )
    )
    assert run.all_done()
    run.check_all()
    return run


def goodput(run) -> float:
    """Adopted writes per simulated time unit over the run's active span."""
    adopts = [event.time for event in run.trace.events(kind="adopt")]
    start = min(event.time for event in run.trace.events(kind="submit"))
    span = max(adopts) - start
    return len(adopts) / span if span > 0 else 0.0


class TestB13ExecScaling:
    def test_goodput_scales_with_lanes_on_disjoint_keys(self):
        table = Table(
            f"B13  write goodput vs exec lanes -- exec_cost={EXEC_COST}, "
            f"instant sequencer, saturating open loop",
            ["lanes", "workload", "goodput", "max concurrency", "capacity"],
        )
        disjoint = {}
        hot = {}
        for lanes in LANE_COUNTS:
            run = run_writes(lanes, N_KEYS)
            disjoint[lanes] = goodput(run)
            conc = max(server.engine.max_concurrency for server in run.servers)
            table.add_row(
                lanes, f"disjoint ({N_KEYS} keys)", disjoint[lanes], conc,
                lanes / EXEC_COST,
            )
            # Disjoint footprints actually exploit the lanes.
            if lanes > 1:
                assert conc > 1
        for lanes in LANE_COUNTS:
            run = run_writes(lanes, 1)
            hot[lanes] = goodput(run)
            conc = max(server.engine.max_concurrency for server in run.servers)
            table.add_row(lanes, "single hot key", hot[lanes], conc, 1 / EXEC_COST)
            # Every write conflicts: the chain serializes regardless of lanes.
            assert conc == 1

        write_result("B13_exec_scaling", table.render())

        # Disjoint workload: goodput grows with lanes, >= 2x at 4 lanes.
        assert disjoint[1] < disjoint[2] < disjoint[4]
        assert disjoint[4] >= 2.0 * disjoint[1], (
            f"4 lanes should at least double 1-lane goodput: {disjoint}"
        )
        # Hot-key workload: flat in lane count (within noise) -- the
        # measured argument for key splitting as the next step.
        assert max(hot.values()) <= 1.25 * min(hot.values()), (
            f"single-hot-key goodput should not scale with lanes: {hot}"
        )

    def test_parallel_execution_matches_free_execution_state(self):
        # The engine reorders *when* state mutates, never *what* the
        # final state is: the 4-lane costed run must land every replica
        # in exactly the state the free-execution run computes.
        costed = run_writes(4, N_KEYS, seed=1)
        free = run_writes(1, N_KEYS, seed=1, exec_cost=0.0)
        assert [s.machine.fingerprint() for s in costed.servers] == [
            s.machine.fingerprint() for s in free.servers
        ]
