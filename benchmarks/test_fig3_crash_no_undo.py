"""Experiment F3: Figure 3 -- sequencer crash, but no Opt-undelivery.

The crash leaves only p2 with the ordering of {m3;m4}; the majority
{p1, p2} Opt-delivered m3 before m4, so Cnsv-order returns Bad = ε at
every survivor and p3 A-delivers {m3;m4}.
"""

from repro.harness.figures import run_figure_3
from repro.harness.tables import Table, write_result

import pytest

pytestmark = pytest.mark.bench


M1, M2, M3, M4 = "c1-0", "c1-1", "c1-2", "c1-3"


def test_fig3_crash_without_undo(benchmark):
    run = benchmark.pedantic(run_figure_3, rounds=3, iterations=1)
    assert run.server("p1").crashed
    assert run.opt_delivered("p2") == (M1, M2, M3, M4)
    assert run.opt_delivered("p3") == (M1, M2)
    assert run.trace.events(kind="opt_undeliver") == []
    results = {
        e.pid: (e["bad"], e["new"])
        for e in run.trace.events(kind="cnsv_order")
    }
    assert results["p2"] == ((), ())
    assert results["p3"] == ((), (M3, M4))


def test_fig3_report(benchmark):
    run = benchmark.pedantic(run_figure_3, rounds=1, iterations=1)
    table = Table(
        "F3 -- Figure 3: OAR with sequencer crash, no Opt-undelivery",
        ["server", "Opt-delivered (epoch 0)", "Bad", "New", "final order"],
    )
    results = {
        e.pid: (e["bad"], e["new"])
        for e in run.trace.events(kind="cnsv_order")
    }
    for pid in ("p1", "p2", "p3"):
        bad, new = results.get(pid, ((), ()))
        server = run.server(pid)
        final = (
            "CRASHED"
            if server.crashed
            else ";".join(server.current_order.items)
        )
        table.add_row(
            pid,
            ";".join(run.opt_delivered(pid)),
            ";".join(bad) or "ε",
            ";".join(new) or "ε",
            final,
        )
    adoptions = {
        rid: (a.position, a.conservative) for rid, a in run.adopted().items()
    }
    lines = [
        table.render(),
        "",
        f"adoptions (rid -> position, conservative?): {adoptions}",
        "paper outcome: Bad = ε everywhere; p3 A-delivers {m3;m4}  -- matched",
    ]
    write_result("F3_figure3_crash_no_undo", "\n".join(lines))
