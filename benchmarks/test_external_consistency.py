"""Experiment B2: external inconsistency under sequencer crashes.

The paper's central safety claim: the sequencer baseline can hand clients
replies that the group later contradicts (Figure 1(b), Section 2.4);
OAR's weighted-quorum adoption makes that structurally impossible
(Proposition 7).

Protocol: for a sweep of seeds, crash the sequencer *mid-multicast* of a
randomly chosen ordering message (nobody receives it, but the sequencer
already delivered and replied) under a jittery network, run both
protocols on the same scenario shape, and count client adoptions that a
majority of surviving replicas contradict.
"""

import pytest

from repro.analysis import checkers
from repro.broadcast.sequencer import OrderMsg
from repro.core.messages import SeqOrder
from repro.faults import crash_during_multicast
from repro.harness import ScenarioConfig, Table, run_scenario, write_result
from repro.sim.latency import UniformLatency

pytestmark = pytest.mark.bench


SEEDS = range(12)
LOST_ORDER_INDEX = 4


def arm_for(protocol: str, n_servers: int):
    message_type = OrderMsg if protocol == "sequencer" else SeqOrder

    def arm(run) -> None:
        counter = {"n": 0}
        threshold = (LOST_ORDER_INDEX - 1) * (n_servers - 1)

        def match(payload) -> bool:
            if not isinstance(payload, message_type):
                return False
            counter["n"] += 1
            return counter["n"] > threshold

        crash_during_multicast(
            run.network, "p1", match, deliver_to=set(), crash=True
        )

    return arm


def run_one(protocol: str, seed: int):
    return run_scenario(
        ScenarioConfig(
            protocol=protocol,
            n_servers=3,
            n_clients=3,
            requests_per_client=6,
            latency=UniformLatency(0.5, 1.5),
            fd_interval=1.0,
            fd_timeout=4.0,
            arm=arm_for(protocol, 3),
            grace=250.0,
            seed=seed,
        )
    )


def sweep(protocol: str):
    inconsistent = 0
    finished = 0
    for seed in SEEDS:
        run = run_one(protocol, seed)
        if run.all_done():
            finished += 1
        inconsistent += checkers.count_baseline_inconsistencies(
            run.trace, run.correct_servers
        )
        if protocol == "oar":
            checkers.check_external_consistency(run.trace, strict=False)
    return inconsistent, finished


def test_sequencer_baseline_is_inconsistent(benchmark):
    inconsistent, _finished = benchmark.pedantic(
        sweep, args=("sequencer",), rounds=1, iterations=1
    )
    assert inconsistent >= 1


def test_oar_is_externally_consistent(benchmark):
    inconsistent, finished = benchmark.pedantic(
        sweep, args=("oar",), rounds=1, iterations=1
    )
    assert inconsistent == 0
    assert finished == len(list(SEEDS))


def test_b2_report(benchmark):
    seq_inconsistent, seq_finished = sweep("sequencer")
    oar_inconsistent, oar_finished = benchmark.pedantic(
        sweep, args=("oar",), rounds=1, iterations=1
    )
    total = len(list(SEEDS)) * 18  # 3 clients x 6 requests per run

    table = Table(
        "B2 -- Client-visible inconsistencies under sequencer crash-mid-multicast",
        [
            "protocol",
            "runs",
            "runs finished",
            "adoptions",
            "inconsistent adoptions",
        ],
    )
    table.add_row("sequencer ABcast", len(list(SEEDS)), seq_finished, total,
                  seq_inconsistent)
    table.add_row("OAR", len(list(SEEDS)), oar_finished, total, oar_inconsistent)
    lines = [
        table.render(),
        "",
        "shape: the baseline exposes stale replies under exactly the",
        "Figure 1(b) conditions; OAR's majority-weight rule keeps the count",
        "at zero while finishing every run (Proposition 7).",
    ]
    write_result("B2_external_consistency", "\n".join(lines))
    assert seq_inconsistent > oar_inconsistent == 0
