"""Experiment F1a/F1b: Figure 1 -- sequencer-based Atomic Broadcast runs.

Figure 1(a): the good run -- the stack service stays consistent.
Figure 1(b): the inconsistent run -- the crashed sequencer's reply
("pop -> y") survives at the client while the group settles on the
opposite order; the same scenario under OAR yields zero inconsistencies.
"""

from repro.analysis import checkers
from repro.harness.figures import (
    run_figure_1a,
    run_figure_1b,
    run_figure_1b_with_oar,
)
from repro.harness.tables import Table, write_result

import pytest

pytestmark = pytest.mark.bench



def test_fig1a_good_run(benchmark):
    run = benchmark.pedantic(run_figure_1a, rounds=3, iterations=1)
    assert all(s.delivered_order == ("c2-0", "c1-0") for s in run.servers)
    assert run.adopted()["c2-0"].value.value == "y"
    assert (
        checkers.count_baseline_inconsistencies(run.trace, run.correct_servers)
        == 0
    )


def test_fig1b_inconsistent_run(benchmark):
    run = benchmark.pedantic(run_figure_1b, rounds=3, iterations=1)
    # The client's adopted pop -> y contradicts the surviving replicas'
    # (push; pop) order whose pop returned x.
    assert run.adopted()["c2-0"].value.value == "y"
    for server in run.correct_servers:
        assert server.delivered_order == ("c1-0", "c2-0")
    assert (
        checkers.count_baseline_inconsistencies(run.trace, run.correct_servers)
        == 1
    )


def test_fig1b_scenario_under_oar(benchmark):
    run = benchmark.pedantic(run_figure_1b_with_oar, rounds=3, iterations=1)
    # OAR: the doomed optimistic reply never reaches majority weight; the
    # client adopts the conservative reply that matches the group.
    assert run.adopted()["c2-0"].value.value == "x"
    checkers.check_external_consistency(run.trace)
    assert (
        checkers.count_baseline_inconsistencies(run.trace, run.correct_servers)
        == 0
    )


def test_fig1_report(benchmark):
    baseline_good = benchmark.pedantic(run_figure_1a, rounds=1, iterations=1)
    baseline_bad = run_figure_1b()
    oar = run_figure_1b_with_oar()

    table = Table(
        "F1 -- Figure 1: sequencer ABcast vs OAR on the stack service",
        ["run", "client adopted pop", "group's pop result", "inconsistent"],
    )

    def group_pop(run):
        def order_of(server):
            if hasattr(server, "delivered_order"):
                return server.delivered_order
            return tuple(server.current_order.items)

        orders = {order_of(s) for s in run.correct_servers}
        order = next(iter(orders))
        return "y" if order[0] == "c2-0" else "x"

    def adopted_pop(run):
        return run.adopted()["c2-0"].value.value

    for name, run in [
        ("fig1a sequencer (good)", baseline_good),
        ("fig1b sequencer (crash)", baseline_bad),
        ("fig1b OAR (same crash)", oar),
    ]:
        inconsistent = checkers.count_baseline_inconsistencies(
            run.trace, run.correct_servers
        )
        table.add_row(name, adopted_pop(run), group_pop(run), inconsistent)

    write_result("F1_figure1_sequencer_anomaly", table.render())
