"""Experiment B16: goodput + latency percentiles vs offered load, with
and without admission control (graceful degradation past saturation).

Every benchmark before this one runs closed-loop or mildly open-loop:
the system has never been pushed *past* its service rate.  B16 uses the
overload harness (``repro.workload.openloop``) to sweep a sessioned
Poisson arrival process from half saturation to 3x saturation against a
sequencer with ``order_cost = 0.5`` (2 ops/unit of ordering capacity)
and a bounded admission queue (``admission_limit = 16``).

What graceful degradation must look like (the ISSUE 8 acceptance):

* **Goodput plateaus** at the service ceiling instead of collapsing --
  offered load beyond capacity is shed deterministically, not queued
  into a metastable backlog that starves everything.
* **p99 latency of *admitted* ops stays bounded** by the queue: an
  admitted request waits behind at most ``admission_limit`` others at
  ``order_cost`` each, plus fixed delivery hops.  The contrast cell
  (same 2x offered load, admission off) shows the alternative: the
  unbounded queue grows for the whole run and p99 grows with it.
* **The conservation law is exact in every cell** --
  ``offered == admitted + shed + throttled`` at quiescence, asserted by
  ``check_admission_accounting`` inside the full checker bundle.

Latency percentiles come from the driver's streaming
:class:`~repro.workload.openloop.LatencyRecorder` with the warm-up rule
(ops submitted before ``measure_from`` are excluded), per the
methodology in docs/BENCHMARKS.md.
"""

import pytest

from repro.core.server import OARConfig
from repro.harness import Table, write_result
from repro.harness.scenario import ScenarioConfig, run_scenario

pytestmark = pytest.mark.bench

ORDER_COST = 0.5  #: sequencer service time/op => capacity 2 ops/unit
LIMIT = 16  #: admission queue bound (writes)
RATES = [1.0, 2.0, 4.0, 6.0]  #: offered load: 0.5x, 1x, 2x, 3x capacity
REQUESTS = 400  #: offered arrivals per cell
WARMUP = 20.0  #: measure_from: percentile warm-up window
SEED = 42
#: Queueing bound for an admitted op: a full admission queue of service
#: times, plus a generous constant for delivery hops + adoption quorum.
P99_BOUND = LIMIT * ORDER_COST + 12.0


def run_cell(rate: float, limit, seed: int = SEED):
    """One overload cell: sessioned Poisson arrivals at ``rate``/unit."""
    config = ScenarioConfig(
        seed=seed,
        driver="session",
        requests_per_client=REQUESTS,
        open_rate=rate,
        n_sessions=50,
        measure_from=WARMUP,
        oar=OARConfig(order_cost=ORDER_COST),
        admission_limit=limit,
        horizon=50_000.0,
        grace=100.0,
    )
    run = run_scenario(config)
    assert run.all_done()
    run.check_all()
    return run


def goodput(run) -> float:
    """Admitted adoptions per unit time over the p10-p90 adoption window.

    Shed outcomes (position -1) are refusals, not service; only really
    ordered-and-adopted ops count.  The interquantile window keeps the
    metric about the sustained rate (B14's rule).
    """
    times = sorted(
        record.adopt_time
        for client in run.clients
        for record in client.adopted.values()
        if record.position >= 0
    )
    n = len(times)
    lo, hi = times[n // 10], times[(9 * n) // 10]
    return (0.8 * n) / (hi - lo) if hi > lo else 0.0


class TestB16Overload:
    def test_goodput_plateaus_and_p99_stays_bounded(self):
        table = Table(
            f"B16  overload sweep -- order_cost={ORDER_COST} (capacity 2/unit), "
            f"admission_limit={LIMIT}, sessioned Poisson arrivals",
            ["offered/unit", "goodput", "admitted", "shed", "p50", "p99", "p999"],
        )
        curve = {}
        for rate in RATES:
            run = run_cell(rate, LIMIT)
            driver = run.drivers[0]
            # Conservation, exact (also asserted inside check_all).
            assert driver.offered == driver.admitted + driver.shed + driver.throttled
            assert driver.offered == REQUESTS
            curve[rate] = goodput(run)
            rec = driver.recorder
            table.add_row(
                rate, curve[rate], driver.admitted, driver.shed,
                rec.p50, rec.p99, rec.p999,
            )
            if rate >= 2.0 * (1.0 / ORDER_COST):
                # At and past 2x saturation: bounded p99 for admitted
                # ops -- the admission queue, not the offered load, sets
                # the wait.
                assert rec.p99 <= P99_BOUND, (
                    f"admitted p99 {rec.p99:.1f} exceeds the queue bound "
                    f"{P99_BOUND} at {rate} offered/unit"
                )
                # Past saturation the excess is shed, not queued.
                assert driver.shed > 0
        write_result("B16_overload", table.render())

        # Below saturation nothing is shed and goodput tracks offered.
        assert curve[1.0] > 0.8
        # The plateau: goodput holds (within 20%) from 1x through 3x
        # offered -- graceful degradation, no metastable collapse.
        assert curve[4.0] >= 0.8 * curve[2.0], f"collapse at 2x: {curve}"
        assert curve[6.0] >= 0.8 * curve[4.0], f"collapse at 3x: {curve}"

    def test_no_admission_contrast_unbounded_queue_unbounded_p99(self):
        # The same 2x-saturation offered load with the admission plane
        # off: every arrival queues, the backlog grows for the whole
        # run, and p99 grows with run length instead of the queue bound.
        bounded = run_cell(4.0, LIMIT)
        unbounded = run_cell(4.0, None)
        p99_bounded = bounded.drivers[0].recorder.p99
        p99_unbounded = unbounded.drivers[0].recorder.p99
        assert unbounded.drivers[0].shed == 0
        assert p99_unbounded >= 3.0 * p99_bounded, (
            f"expected the unbounded queue to blow up p99: "
            f"bounded={p99_bounded:.1f} unbounded={p99_unbounded:.1f}"
        )
        assert p99_bounded <= P99_BOUND
