"""Experiment B9: batching trade-off and the spontaneous-order assumption.

Two secondary quantities the paper's design discussion leans on:

* **B9a** -- Task 1a batching: the sequencer may order per-request
  (lowest latency, one ordering message each) or batch (fewer ordering
  messages, bounded extra latency).  The sweep quantifies the trade.
* **B9b** -- the *spontaneous total order* assumption (Section 2.3,
  [PS98]): optimistic protocols profit when the network delivers
  concurrent messages to all replicas in the same order.  OAR does not
  need the assumption for its fast path (the sequencer defines the
  order), but the Cnsv-order ⊎-merge of `O_notdelivered` sequences is
  cleanest when it holds.  We measure how often replicas disagree on
  their reception order as network jitter grows -- reproducing the
  qualitative observation that LANs are mostly-but-not-always
  spontaneously ordered.
"""

import pytest

from repro.analysis.stats import summarize
from repro.core.server import OARConfig
from repro.faults import FaultSchedule
from repro.harness import ScenarioConfig, Table, run_scenario, write_result
from repro.sim.latency import LanProfile

pytestmark = pytest.mark.bench


BATCH_INTERVALS = [0.0, 1.0, 2.0, 5.0]
JITTERS = [0.0, 0.5, 2.0, 5.0]


def run_batched(batch_interval: float, seed: int = 0):
    return run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=4,
            requests_per_client=10,
            driver="open",
            open_rate=1.0,
            oar=OARConfig(batch_interval=batch_interval),
            grace=100.0,
            horizon=5_000.0,
            seed=seed,
        )
    )


def run_jittered(jitter: float, seed: int = 0):
    # Periodic GC forces phase 2, whose proposals expose each replica's
    # local reception order of the not-yet-ordered messages.
    return run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=4,
            requests_per_client=8,
            driver="open",
            open_rate=2.0,
            latency=LanProfile(base=1.0, jitter=jitter),
            oar=OARConfig(batch_interval=1.0, gc_after_requests=4),
            grace=200.0,
            horizon=5_000.0,
            seed=seed,
        )
    )


def spontaneous_order_agreement(run) -> float:
    """Fraction of phase-2 epochs with spontaneously-ordered receptions.

    Proposals are snapshots taken at slightly different instants, so the
    honest spontaneous-order measure is pairwise: do any two replicas
    order the messages they *both* hold the same way?  (This is exactly
    the property [PS98] measures on LANs.)
    """
    by_epoch = {}
    for event in run.trace.events(kind="cnsv_propose"):
        by_epoch.setdefault(event["epoch"], []).append(
            tuple(event["o_notdelivered"])
        )

    def pair_agrees(left, right) -> bool:
        shared = set(left) & set(right)
        if len(shared) < 2:
            return True
        project = lambda seq: [m for m in seq if m in shared]
        return project(left) == project(right)

    comparable = 0
    agreed = 0
    for orders in by_epoch.values():
        if len(orders) < 2:
            continue
        comparable += 1
        if all(
            pair_agrees(orders[i], orders[j])
            for i in range(len(orders))
            for j in range(i + 1, len(orders))
        ):
            agreed += 1
    if comparable == 0:
        return 1.0
    return agreed / comparable


@pytest.mark.parametrize("batch_interval", [0.0, 5.0])
def test_batching_preserves_correctness(benchmark, batch_interval):
    run = benchmark.pedantic(
        run_batched, args=(batch_interval,), rounds=2, iterations=1
    )
    assert run.all_done()
    run.check_all()


def test_b9_report(benchmark):
    batch_rows = []
    for interval in BATCH_INTERVALS:
        run = run_batched(interval)
        assert run.all_done()
        orders = run.trace.events(kind="seq_order")
        batch_rows.append(
            (
                interval,
                summarize(run.latencies()).mean,
                len(orders),
                sum(len(o["rids"]) for o in orders) / len(orders),
            )
        )

    jitter_rows = []
    for jitter in JITTERS:
        agreements = []
        for seed in range(4):
            run = run_jittered(jitter, seed)
            run.check_all(strict=False, at_least_once=False)
            agreements.append(spontaneous_order_agreement(run))
        jitter_rows.append((jitter, sum(agreements) / len(agreements)))

    benchmark.pedantic(run_batched, args=(0.0,), rounds=1, iterations=1)

    batch_table = Table(
        "B9a -- Task 1a batching trade-off (open load, 40 requests)",
        ["batch interval", "mean latency", "ordering msgs", "avg batch"],
    )
    for row in batch_rows:
        batch_table.add_row(*row)

    jitter_table = Table(
        "B9b -- Spontaneous total order vs network jitter (Section 2.3)",
        ["jitter (x base delay)", "epochs with agreeing reception order"],
    )
    for jitter, agreement in jitter_rows:
        jitter_table.add_row(jitter, f"{agreement * 100:.0f}%")

    lines = [
        batch_table.render(),
        "",
        jitter_table.render(),
        "",
        "shape: batching divides the ordering-message count while latency",
        "grows by at most the batch interval; spontaneous order holds on a",
        "calm LAN and decays with jitter -- OAR's fast path is immune (the",
        "sequencer defines the order) but the observation motivates the",
        "optimistic-delivery literature the paper builds on.",
    ]
    write_result("B9_batching_spontaneous_order", "\n".join(lines))

    latencies = [latency for _i, latency, _n, _b in batch_rows]
    message_counts = [n for _i, _l, n, _b in batch_rows]
    assert message_counts[0] > message_counts[-1]
    assert latencies[-1] > latencies[0]
    agreements = [agreement for _j, agreement in jitter_rows]
    assert agreements[0] >= agreements[-1]
    assert agreements[0] == 1.0  # no jitter -> perfect spontaneous order
