"""Tracked performance harness (``BENCH_perf.json``).

Microbenchmarks for the simulation kernel and network plus end-to-end
wall-clock runs of the B5 (single-group open-loop) and B10 (4-shard)
scenario shapes.  ``python benchmarks/perf/run_perf.py`` writes
``BENCH_perf.json`` at the repo root so the perf trajectory is tracked
across PRs; ``--check-against`` gates CI on kernel regressions.
"""
