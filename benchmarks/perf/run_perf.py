"""Run the perf suite and write ``BENCH_perf.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py            # full suite
    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick \
        --check-against BENCH_perf.json                          # CI gate

The CI gate fails when the measured kernel dispatch rate regresses more
than 30% against the committed pre-PR baseline recorded in the given
file.  The gate compares against the *pre-PR* number on purpose: the
optimization's >3x margin is the headroom that keeps the gate meaningful
on CI machines slower than the reference box, while a real loss of the
fast path (back to pre-PR speed) still trips it.  The gate also verifies
the fixed-seed determinism digest.

The B10 sharded wall-clock is gated too, so a regression in the
sharding layer (router/client/2PC/migration plumbing) is caught even
when the kernel itself is fine.  Wall-clocks are machine-dependent, so
the gate compares *kernel-normalized work*: ``b10_wallclock x
kernel_events_per_sec`` measured in the same run, against the same
product from the committed file's same-shape reference (``results`` in
full mode, ``quick_reference`` in quick mode) -- a slow CI box scales
both factors' machine term away, while B10 getting slower *relative to
the kernel* beyond ``B10_TOLERANCE`` fails.

The real-backend ``wallclock`` section is gated on its *same-run
ratios* -- binary codec >= ``CODEC_MIN_RATIO`` x pickle on the protocol
mix, optimized TCP OAR >= ``OAR_MIN_RATIO`` x the pre-PR transport
shape -- plus a kernel-normalized regression tolerance on the binary
OAR cell (see ``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

from benchmarks.perf.harness import (  # noqa: E402
    GOLDEN_DIGEST,
    format_table,
    run_suite,
    write_payload,
)

#: A regression of more than this fraction against the committed kernel
#: baseline fails the CI gate.
REGRESSION_TOLERANCE = 0.30

#: Tolerance for the replica-local read-path gate.  Like the B10 gate it
#: compares kernel-normalized work (read rate / kernel rate) so a slow
#: CI box cancels out; only the read fast lane getting slower relative
#: to the kernel trips it.
READ_TOLERANCE = 0.50

#: Tolerance for the execution-engine gate (kernel-normalized like the
#: read gate): only the conflict scheduler getting slower relative to
#: the kernel trips it.
EXEC_TOLERANCE = 0.50

#: Tolerance for the B10 sharded wall-clock gate.  Wall-clocks carry
#: cross-process systematic skew the rate micros do not (CPython's
#: adaptive specialization warms differently depending on what ran
#: before), so the gate is looser: it exists to catch *structural*
#: sharding-layer regressions (an accidental O(n^2) drain, a lost fast
#: path), which overshoot this margin by far.
B10_TOLERANCE = 0.60

#: The binary codec must beat pickle by at least this factor on the
#: protocol-mix micro.  Same-run ratio, so machine speed cancels; the
#: measured margin is ~3.3-3.5x and one interleaved re-measure absorbs
#: scheduler noise before the gate fails.
CODEC_MIN_RATIO = 3.0

#: The optimized TCP transport (binary codec + coalescing + order
#: batching) must beat the pre-PR shape (pickle, one write per frame,
#: no batching) by at least this factor on failure-free OAR ops/sec.
OAR_MIN_RATIO = 2.0

#: Tolerance for the kernel-normalized regression check on the binary
#: TCP OAR cell -- as loose as the B10 gate and for the same reason:
#: real-socket wall-clocks are the noisiest numbers in the suite, and
#: this check exists to catch structural transport regressions.
WALLCLOCK_TOLERANCE = 0.60


def _b10_reference(payload: dict, committed: dict) -> dict:
    """The committed same-shape B10 reference for this run's mode."""
    if payload["mode"] == "full":
        return committed.get("results", {})
    return committed.get("quick_reference", {})


def check_against(payload: dict, committed_path: str) -> int:
    """Gate: kernel dispatch, B10 sharded wall-clock, determinism digest."""
    with open(committed_path) as handle:
        committed = json.load(handle)
    baseline = committed["baseline_pre_pr"]["kernel_events_per_sec"]
    measured = payload["results"]["kernel_events_per_sec"]
    floor = baseline * (1.0 - REGRESSION_TOLERANCE)
    failures = []
    notes = []
    if measured < floor:
        failures.append(
            f"kernel dispatch regressed: {measured:,.0f} events/s is below "
            f"{floor:,.0f} (70% of the committed pre-PR baseline "
            f"{baseline:,.0f})"
        )

    # B10 sharded wall-clock, normalized by the same run's kernel rate
    # so a uniformly slower machine cancels out and only the sharding
    # layer getting slower relative to the kernel trips the gate.
    reference = _b10_reference(payload, committed)
    if "b10_wallclock_sec" in reference and "kernel_events_per_sec" in reference:
        measured_work = payload["results"]["b10_wallclock_sec"] * measured
        reference_work = (
            reference["b10_wallclock_sec"] * reference["kernel_events_per_sec"]
        )
        ceiling = reference_work * (1.0 + B10_TOLERANCE)
        if measured_work > ceiling:
            failures.append(
                f"B10 sharded wall-clock regressed: "
                f"{measured_work:,.0f} kernel-equivalent events exceed "
                f"{ceiling:,.0f} ({100 * (1 + B10_TOLERANCE):.0f}% of the "
                f"committed {reference_work:,.0f})"
            )
        else:
            notes.append(
                f"b10 {measured_work:,.0f} <= {ceiling:,.0f} kernel-equiv"
            )
    else:
        notes.append("b10 gate skipped (no same-shape reference committed)")

    # Replica-local read path, normalized the same way.  Rates are
    # cross-mode comparable, so the committed full-mode figure is the
    # reference for quick runs too.
    committed_read = committed.get("results", {}).get("read_ops_per_sec")
    committed_kernel = committed.get("results", {}).get("kernel_events_per_sec")
    if committed_read and committed_kernel:
        measured_ratio = payload["results"]["read_ops_per_sec"] / measured
        reference_ratio = committed_read / committed_kernel
        floor_ratio = reference_ratio * (1.0 - READ_TOLERANCE)
        if measured_ratio < floor_ratio:
            failures.append(
                f"read path regressed: {measured_ratio:.6f} reads per kernel "
                f"event is below {floor_ratio:.6f} "
                f"({100 * (1 - READ_TOLERANCE):.0f}% of the committed "
                f"{reference_ratio:.6f})"
            )
        else:
            notes.append(
                f"read path {measured_ratio:.6f} >= {floor_ratio:.6f} "
                f"reads/kernel-event"
            )
    else:
        notes.append("read gate skipped (no committed read_ops_per_sec)")

    # Execution engine (conflict-scheduled lanes), normalized the same
    # way.
    committed_exec = committed.get("results", {}).get("exec_ops_per_sec")
    if committed_exec and committed_kernel:
        measured_ratio = payload["results"]["exec_ops_per_sec"] / measured
        reference_ratio = committed_exec / committed_kernel
        floor_ratio = reference_ratio * (1.0 - EXEC_TOLERANCE)
        if measured_ratio < floor_ratio:
            failures.append(
                f"execution engine regressed: {measured_ratio:.6f} ops per "
                f"kernel event is below {floor_ratio:.6f} "
                f"({100 * (1 - EXEC_TOLERANCE):.0f}% of the committed "
                f"{reference_ratio:.6f})"
            )
        else:
            notes.append(
                f"exec engine {measured_ratio:.6f} >= {floor_ratio:.6f} "
                f"ops/kernel-event"
            )
    else:
        notes.append("exec gate skipped (no committed exec_ops_per_sec)")

    # Wall-clock section: same-run ratio floors (machine-independent)
    # plus a kernel-normalized regression check on the binary OAR cell.
    wallclock = payload.get("wallclock")
    if wallclock:
        codec_ratio = wallclock["ratios"]["codec_binary_vs_pickle"]
        if codec_ratio < CODEC_MIN_RATIO:
            # One interleaved re-measure before failing: a loaded CI
            # neighbour can shave a run's ratio; a real codec regression
            # shaves every run's.
            from benchmarks.perf.wallclock import codec_rates

            rates = codec_rates(4_000)
            codec_ratio = max(codec_ratio, rates["binary"] / rates["pickle"])
        if codec_ratio < CODEC_MIN_RATIO:
            failures.append(
                f"binary codec lost its margin: {codec_ratio:.2f}x over "
                f"pickle is below the {CODEC_MIN_RATIO:.0f}x floor"
            )
        else:
            notes.append(f"codec {codec_ratio:.2f}x >= {CODEC_MIN_RATIO:.0f}x")
        oar_ratio = wallclock["ratios"]["oar_binary_vs_pre_pr"]
        if oar_ratio < OAR_MIN_RATIO:
            # Same one-retry policy as the codec ratio: the end-to-end
            # cells run ~1 s each, so one re-measure of interleaved
            # pairs distinguishes a noisy neighbour from a real loss.
            from benchmarks.perf.wallclock import oar_rates

            rates = oar_rates(150)
            oar_ratio = max(
                oar_ratio, rates["binary"] / rates["pickle_unbatched"]
            )
        if oar_ratio < OAR_MIN_RATIO:
            failures.append(
                f"TCP OAR transport lost its margin: {oar_ratio:.2f}x over "
                f"the pre-PR shape is below the {OAR_MIN_RATIO:.0f}x floor"
            )
        else:
            notes.append(f"tcp oar {oar_ratio:.2f}x >= {OAR_MIN_RATIO:.0f}x")

        committed_oar = (
            committed.get("wallclock", {})
            .get("tcp_oar_ops_per_sec", {})
            .get("binary")
        )
        if committed_oar and committed_kernel:
            measured_ratio = wallclock["tcp_oar_ops_per_sec"]["binary"] / measured
            reference_ratio = committed_oar / committed_kernel
            floor_ratio = reference_ratio * (1.0 - WALLCLOCK_TOLERANCE)
            if measured_ratio < floor_ratio:
                failures.append(
                    f"TCP OAR wall-clock regressed: {measured_ratio:.6f} ops "
                    f"per kernel event is below {floor_ratio:.6f} "
                    f"({100 * (1 - WALLCLOCK_TOLERANCE):.0f}% of the "
                    f"committed {reference_ratio:.6f})"
                )
            else:
                notes.append(
                    f"tcp oar {measured_ratio:.6f} >= {floor_ratio:.6f} "
                    f"ops/kernel-event"
                )
        else:
            notes.append(
                "tcp oar regression check skipped (no committed wallclock)"
            )
    else:
        notes.append("wallclock gates skipped (suite ran without wallclock)")

    expected_digest = committed.get("golden_digest", GOLDEN_DIGEST)
    if payload["golden_digest"] != expected_digest:
        failures.append(
            "determinism broken: fixed-seed scenario digest "
            f"{payload['golden_digest']} != committed {expected_digest}"
        )
    if failures:
        for failure in failures:
            print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"perf gate ok: kernel {measured:,.0f} events/s >= {floor:,.0f}; "
        f"{'; '.join(notes)}; digest matches"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workloads (CI smoke)"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="best-of-N repeats per benchmark"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON payload (default: BENCH_perf.json at the "
        "repo root in full mode, BENCH_perf_quick.json in quick mode)",
    )
    parser.add_argument(
        "--check-against",
        metavar="FILE",
        default=None,
        help="fail (exit 1) if kernel events/s regresses >30%% against the "
        "committed baseline in FILE, or if the determinism digest drifts",
    )
    args = parser.parse_args(argv)

    payload = run_suite(quick=args.quick, repeats=args.repeats)
    print(format_table(payload))

    output = args.output
    if output is None:
        name = "BENCH_perf_quick.json" if args.quick else "BENCH_perf.json"
        output = os.path.join(REPO_ROOT, name)
    write_payload(payload, output)
    print(f"\nwrote {output}")

    if args.check_against is not None:
        return check_against(payload, args.check_against)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
