"""Run the perf suite and write ``BENCH_perf.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py            # full suite
    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick \
        --check-against BENCH_perf.json                          # CI gate

The CI gate fails when the measured kernel dispatch rate regresses more
than 30% against the committed pre-PR baseline recorded in the given
file.  The gate compares against the *pre-PR* number on purpose: the
optimization's >3x margin is the headroom that keeps the gate meaningful
on CI machines slower than the reference box, while a real loss of the
fast path (back to pre-PR speed) still trips it.  The gate also verifies
the fixed-seed determinism digest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

from benchmarks.perf.harness import (  # noqa: E402
    GOLDEN_DIGEST,
    format_table,
    run_suite,
    write_payload,
)

#: A regression of more than this fraction against the committed kernel
#: baseline fails the CI gate.
REGRESSION_TOLERANCE = 0.30


def check_against(payload: dict, committed_path: str) -> int:
    """Gate: kernel dispatch within tolerance of the committed baseline."""
    with open(committed_path) as handle:
        committed = json.load(handle)
    baseline = committed["baseline_pre_pr"]["kernel_events_per_sec"]
    measured = payload["results"]["kernel_events_per_sec"]
    floor = baseline * (1.0 - REGRESSION_TOLERANCE)
    failures = []
    if measured < floor:
        failures.append(
            f"kernel dispatch regressed: {measured:,.0f} events/s is below "
            f"{floor:,.0f} (70% of the committed pre-PR baseline "
            f"{baseline:,.0f})"
        )
    expected_digest = committed.get("golden_digest", GOLDEN_DIGEST)
    if payload["golden_digest"] != expected_digest:
        failures.append(
            "determinism broken: fixed-seed scenario digest "
            f"{payload['golden_digest']} != committed {expected_digest}"
        )
    if failures:
        for failure in failures:
            print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"perf gate ok: kernel {measured:,.0f} events/s "
        f">= {floor:,.0f}; digest matches"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workloads (CI smoke)"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="best-of-N repeats per benchmark"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON payload (default: BENCH_perf.json at the "
        "repo root in full mode, BENCH_perf_quick.json in quick mode)",
    )
    parser.add_argument(
        "--check-against",
        metavar="FILE",
        default=None,
        help="fail (exit 1) if kernel events/s regresses >30%% against the "
        "committed baseline in FILE, or if the determinism digest drifts",
    )
    args = parser.parse_args(argv)

    payload = run_suite(quick=args.quick, repeats=args.repeats)
    print(format_table(payload))

    output = args.output
    if output is None:
        name = "BENCH_perf_quick.json" if args.quick else "BENCH_perf.json"
        output = os.path.join(REPO_ROOT, name)
    write_payload(payload, output)
    print(f"\nwrote {output}")

    if args.check_against is not None:
        return check_against(payload, args.check_against)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
