"""Smoke tests for the perf harness (catches harness bitrot in tier-1).

These do not assert absolute speed -- machines differ -- only that every
benchmark runs, produces sane numbers, and that the kernel fast path is
actually faster than a trivially slow floor.  The determinism digest is
asserted exactly (it is machine-independent).
"""

import json

import pytest

from benchmarks.perf import harness

pytestmark = pytest.mark.bench


def test_suite_runs_quick_and_payload_is_complete(tmp_path):
    payload = harness.run_suite(quick=True, repeats=1)
    for bench in harness.BENCHES:
        assert payload["results"][bench.key] > 0
    assert payload["mode"] == "quick"
    # Rate-style micros are compared against the pre-PR baseline even in
    # quick mode; quick wall-clocks are not (different workload sizes),
    # and benchmarks of paths that did not exist pre-PR (the read path)
    # have no baseline to compare against.
    assert set(payload["speedup_vs_pre_pr"]) == {
        key for key in harness.RATE_KEYS if key in harness.PRE_PR_BASELINE
    }
    # The payload is JSON-serializable and round-trips.
    out = tmp_path / "perf.json"
    harness.write_payload(payload, str(out))
    assert json.loads(out.read_text())["schema"] == 1
    # Table rendering covers every benchmark.
    table = harness.format_table(payload)
    for bench in harness.BENCHES:
        assert bench.label in table


def test_golden_digest_is_stable():
    assert harness.golden_scenario_digest() == harness.GOLDEN_DIGEST


def test_kernel_dispatch_uses_fast_lane():
    """The cascade must beat a conservative floor that even modest
    hardware exceeds with the fast lane but not without it."""
    rate = max(harness.kernel_dispatch(60_000) for _ in range(2))
    assert rate > 500_000, f"kernel dispatch suspiciously slow: {rate:,.0f}/s"
