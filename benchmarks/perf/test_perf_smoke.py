"""Smoke tests for the perf harness (catches harness bitrot in tier-1).

These do not assert absolute speed -- machines differ -- only that every
benchmark runs, produces sane numbers, and that the kernel fast path is
actually faster than a trivially slow floor.  The determinism digest is
asserted exactly (it is machine-independent).
"""

import json

import pytest

from benchmarks.perf import harness

pytestmark = pytest.mark.bench


def test_suite_runs_quick_and_payload_is_complete(tmp_path):
    # wallclock=False: the TCP cells take tens of seconds and are
    # covered by test_wallclock_cells below with tiny shapes.
    payload = harness.run_suite(quick=True, repeats=1, wallclock=False)
    assert "wallclock" not in payload
    for bench in harness.BENCHES:
        assert payload["results"][bench.key] > 0
    assert payload["mode"] == "quick"
    # Rate-style micros are compared against the pre-PR baseline even in
    # quick mode; quick wall-clocks are not (different workload sizes),
    # and benchmarks of paths that did not exist pre-PR (the read path)
    # have no baseline to compare against.
    assert set(payload["speedup_vs_pre_pr"]) == {
        key for key in harness.RATE_KEYS if key in harness.PRE_PR_BASELINE
    }
    # The payload is JSON-serializable and round-trips.
    out = tmp_path / "perf.json"
    harness.write_payload(payload, str(out))
    assert json.loads(out.read_text())["schema"] == 1
    # Table rendering covers every benchmark.
    table = harness.format_table(payload)
    for bench in harness.BENCHES:
        assert bench.label in table


def test_wallclock_cells():
    """Tiny-shape versions of the real-backend cells: the codec micro
    keeps its margin over pickle, the TCP ping-pong moves messages, and
    the section renders.  Full-size cells run in ``run_perf.py``."""
    from benchmarks.perf import wallclock

    rates = wallclock.codec_rates(300)
    assert rates["binary"] > rates["pickle"] > 0
    pingpong = wallclock.tcp_pingpong_msgs_per_sec("binary", 200)
    assert pingpong > 0
    # The reconstructed pre-PR transport (the OAR baseline cell's
    # denominator) still hosts a full scenario end to end.
    assert wallclock.tcp_oar_ops_per_sec_baseline(5) > 0
    section = {
        "codec_roundtrips_per_sec": {k: round(v, 1) for k, v in rates.items()},
        "tcp_pingpong_msgs_per_sec": {"binary": round(pingpong, 1)},
        "ratios": {
            "codec_binary_vs_pickle": round(rates["binary"] / rates["pickle"], 2),
            "oar_binary_vs_pre_pr": 1.0,
        },
    }
    rendered = wallclock.format_wallclock(section)
    assert "codec binary/pickle" in rendered


def test_golden_digest_is_stable():
    assert harness.golden_scenario_digest() == harness.GOLDEN_DIGEST


def test_kernel_dispatch_uses_fast_lane():
    """The cascade must beat a conservative floor that even modest
    hardware exceeds with the fast lane but not without it."""
    rate = max(harness.kernel_dispatch(60_000) for _ in range(2))
    assert rate > 500_000, f"kernel dispatch suspiciously slow: {rate:,.0f}/s"
