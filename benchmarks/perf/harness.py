"""Perf harness: workload definitions, measurement, reporting.

Every benchmark here is defined by its *workload semantics*, not by the
API used to implement it, so the same harness measures any version of the
substrate and the numbers stay comparable across PRs:

* ``kernel_dispatch``   -- same-instant event cascade through the raw
  :class:`~repro.sim.loop.Simulator` (the ``call_soon``/zero-delay
  delivery path: one event fires, posts the next at the same instant).
* ``kernel_timers``     -- delayed one-shot events (the heap path).
* ``kernel_cancels``    -- schedule/cancel churn (heartbeat-style timer
  re-arming; exercises lazy-cancellation compaction).
* ``network_pingpong``  -- messages/second through :class:`SimNetwork`
  (two processes bouncing one message).
* ``exec_engine_throughput`` -- ops/second through the conflict-aware
  execution engine (4 lanes, costed, disjoint keys): the scheduler's
  own overhead, kernel-normalized by the CI gate.
* ``b5_scenario``       -- end-to-end wall-clock of the B5 shape: one
  OAR group, 2 clients, open-loop Poisson load (tracing off -- the
  zero-waste throughput mode).
* ``b10_scenario``      -- end-to-end wall-clock of the B10 shape: the
  4-shard cluster under overload with a costed sequencer (tracing off).

``PRE_PR_BASELINE`` pins the numbers measured at commit f35608a (the
last commit before the hot-path overhaul) on the same reference machine
that produced the first committed ``BENCH_perf.json``; speedups in the
report are relative to it.  The CI gate compares the kernel dispatch
number against this baseline: the optimization margin (>3x) doubles as
headroom for slower CI machines, so only a real regression of the fast
path trips it.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.execution import ExecutionEngine
from repro.core.server import OARConfig
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.sharding.cluster import ShardedScenarioConfig, run_sharded_scenario
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.process import Process
from repro.statemachine.kvstore import KVStoreMachine
from repro.statemachine.undo import UndoLog
from repro.workload.openloop import DiurnalProcess, LatencyRecorder

#: Commit f35608a numbers (reference machine, see module docstring).
PRE_PR_BASELINE: Dict[str, float] = {
    "kernel_events_per_sec": 1_695_486.0,
    "kernel_timer_events_per_sec": 1_550_570.0,
    "kernel_cancel_ops_per_sec": 622_042.0,
    "network_messages_per_sec": 417_066.0,
    "b5_wallclock_sec": 0.6415,
    "b10_wallclock_sec": 0.3522,
}
PRE_PR_COMMIT = "f35608a"

#: Fixed-seed determinism scenario (full tracing, message-level events
#: included): its trace digest must never change under a semantics-
#: preserving optimization.  The golden value was captured at f35608a
#: and is asserted by tests/property/test_kernel_determinism.py.
GOLDEN_DIGEST = "83faff120b9b5c1eb25b54c56ed4c06fa72536a2ad217dffb50a6e323c06d3be"
GOLDEN_CONFIG = dict(
    n_servers=3,
    n_clients=2,
    requests_per_client=15,
    machine="kv",
    driver="open",
    open_rate=1.0,
    grace=100.0,
    horizon=10_000.0,
    seed=1234,
    trace_messages=True,
)


def golden_scenario_digest() -> str:
    """Digest of the fixed-seed determinism scenario (must stay golden)."""
    run = run_scenario(ScenarioConfig(**GOLDEN_CONFIG))
    assert run.all_done()
    return run.trace.digest()


# ----------------------------------------------------------------------
# Kernel micros
# ----------------------------------------------------------------------

def kernel_dispatch(n: int) -> float:
    """Events/sec: same-instant cascade (each event posts the next)."""
    sim = Simulator(seed=0)
    remaining = [n]

    def pump() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_soon(pump)

    sim.call_soon(pump)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert sim.events_processed == n
    return n / elapsed


def kernel_timers(n: int) -> float:
    """Events/sec: chain of delayed one-shot events (heap path)."""
    sim = Simulator(seed=0)
    remaining = [n]

    def pump() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(1.0, pump)

    sim.schedule(1.0, pump)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return n / elapsed


def kernel_cancels(n: int) -> float:
    """Cancel ops/sec: schedule a timer, cancel the previous one (FD-style)."""
    sim = Simulator(seed=0)
    fired = [0]

    def noop() -> None:
        fired[0] += 1

    start = time.perf_counter()
    live = None
    for _ in range(n):
        if live is not None:
            live.cancel()
        live = sim.schedule(10.0, noop)
        sim.run(max_events=0)  # keep loop shape comparable across versions
    sim.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == 1  # only the last timer survives
    return n / elapsed


def exec_engine_throughput(n: int) -> float:
    """Ops/sec through the conflict-aware execution engine (costed path).

    A bare :class:`~repro.core.execution.ExecutionEngine` (4 lanes,
    cost 1.0) on a raw simulator, fed waves of writes cycling over 64
    disjoint keys: measures the scheduler's own overhead -- footprint
    linking, dependency bookkeeping, lane dispatch, undo-log
    pending/resolve -- with the kernel timer per completion as the only
    other cost.  The log is committed between waves, mirroring epoch
    settles, so it stays bounded.
    """
    sim = Simulator(seed=0)
    machine = KVStoreMachine()
    undo_log = UndoLog()
    engine = ExecutionEngine(
        machine, lanes=4, cost=1.0, timer=sim.schedule, undo_log=undo_log
    )
    completed = [0]

    def on_done(result: Any, lane: int) -> None:
        completed[0] += 1

    keys = [f"k{i:02d}" for i in range(64)]
    wave = 512
    submitted = 0
    start = time.perf_counter()
    while submitted < n:
        count = min(wave, n - submitted)
        for i in range(submitted, submitted + count):
            engine.submit(f"r{i}", ("set", keys[i % 64], i), on_done, True)
        submitted += count
        sim.run()
        undo_log.commit()
    elapsed = time.perf_counter() - start
    assert completed[0] == n and engine.idle
    return n / elapsed


def openloop_arrivals(n: int) -> float:
    """Arrivals/sec through the overload harness's per-op CPU work.

    The open-loop driver's cost per offered arrival is one thinned
    sample from the arrival process plus one streaming-recorder insert
    (the token bucket and session pick are O(1) arithmetic on top).
    This micro runs that pair -- a non-homogeneous
    :class:`~repro.workload.openloop.DiurnalProcess` (the thinning loop
    rejects ~half its candidates at mid rate, so it is the expensive
    arrival shape) feeding a bucketed
    :class:`~repro.workload.openloop.LatencyRecorder` -- so B16-style
    sweeps stay dominated by protocol simulation, not harness overhead.
    """
    import random as _random

    process = DiurnalProcess(base_rate=1.0, peak_rate=3.0, period=100.0)
    recorder = LatencyRecorder(exact_limit=256)
    rng = _random.Random(0)
    t = 0.0
    start = time.perf_counter()
    for _ in range(n):
        gap = process.next_gap(t, rng)
        t += gap
        recorder.record(gap + 0.5)
    elapsed = time.perf_counter() - start
    assert recorder.count == n
    return n / elapsed


# ----------------------------------------------------------------------
# Network micro
# ----------------------------------------------------------------------

class _Pinger(Process):
    """Bounces one message back and forth until the budget is spent."""

    def __init__(self, pid: str, peer: str, budget: int) -> None:
        super().__init__(pid)
        self.peer = peer
        self.budget = budget

    def on_start(self) -> None:
        if self.pid == "a":
            self.env.send(self.peer, ("ball", self.budget))

    def on_message(self, src: str, payload: Any) -> None:
        _tag, remaining = payload
        if remaining > 0:
            self.env.send(src, ("ball", remaining - 1))


def network_pingpong(n: int) -> float:
    """Messages/sec through SimNetwork (default latency, no msg tracing)."""
    sim = Simulator(seed=0)
    network = SimNetwork(sim)
    network.add_process(_Pinger("a", "b", n))
    network.add_process(_Pinger("b", "a", n))
    network.start_all()
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert network.messages_delivered == n + 1
    return network.messages_delivered / elapsed


# ----------------------------------------------------------------------
# Scenario wall-clocks (zero-waste mode: tracing off)
# ----------------------------------------------------------------------

def b5_scenario(requests_per_client: int) -> float:
    """Wall-clock seconds for the B5 shape (single OAR group, open loop)."""
    start = time.perf_counter()
    run = run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=requests_per_client,
            machine="kv",
            driver="open",
            open_rate=2.0,
            grace=100.0,
            horizon=50_000.0,
            seed=0,
            trace_level="off",
        )
    )
    elapsed = time.perf_counter() - start
    assert run.all_done()
    return elapsed


def read_path_scenario(total_reads: int) -> float:
    """Reads/sec through the replica-local read path (optimistic mode).

    Two closed-loop clients issue a pure-get Zipf stream against one
    3-replica group with tracing off: every request takes the
    sequencer-free path (round-robin replica, one hop each way), so this
    measures the read fast lane end to end -- classification, routing,
    the replica's serve-and-reply, and client adoption.
    """
    start = time.perf_counter()
    run = run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=total_reads // 2,
            machine="kv",
            read_mode="optimistic",
            read_ratio=1.0,
            driver="closed",
            grace=50.0,
            horizon=10_000_000.0,
            seed=0,
            trace_level="off",
        )
    )
    elapsed = time.perf_counter() - start
    assert run.all_done()
    served = sum(client.reads_adopted for client in run.clients)
    assert served == 2 * (total_reads // 2)
    return served / elapsed


def b10_scenario(requests_per_client: int) -> float:
    """Wall-clock seconds for the B10 shape (4-shard overload, order_cost)."""
    start = time.perf_counter()
    run = run_sharded_scenario(
        ShardedScenarioConfig(
            n_shards=4,
            n_servers=3,
            n_clients=8,
            requests_per_client=requests_per_client,
            machine="kv",
            workload="uniform",
            n_keys=64,
            driver="open",
            open_rate=1.5,
            oar=OARConfig(order_cost=0.5),
            grace=200.0,
            horizon=50_000.0,
            seed=0,
            trace_level="off",
        )
    )
    elapsed = time.perf_counter() - start
    assert run.all_done()
    return elapsed


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Bench:
    """One tracked benchmark: how to run it and how to compare it."""

    key: str
    label: str
    unit: str
    higher_is_better: bool
    run: Callable[[bool], float]  # quick -> measurement


#: The quick-mode B10 shape (requests per client).  Big enough that the
#: wall-clock is tens of milliseconds -- the CI gate compares this
#: number across processes, so it must dominate fixed per-run overhead.
B10_QUICK_REQUESTS = 80


def _best(fn: Callable[[], float], repeats: int, higher_is_better: bool) -> float:
    results = []
    for _ in range(repeats):
        gc.collect()  # garbage from earlier benchmarks must not bill here
        results.append(fn())
    return max(results) if higher_is_better else min(results)


BENCHES: List[Bench] = [
    Bench(
        "kernel_events_per_sec",
        "kernel dispatch (same-instant cascade)",
        "events/s",
        True,
        lambda quick: kernel_dispatch(60_000 if quick else 200_000),
    ),
    Bench(
        "kernel_timer_events_per_sec",
        "kernel timers (heap path)",
        "events/s",
        True,
        lambda quick: kernel_timers(60_000 if quick else 200_000),
    ),
    Bench(
        "kernel_cancel_ops_per_sec",
        "kernel cancel churn (lazy compaction)",
        "ops/s",
        True,
        lambda quick: kernel_cancels(20_000 if quick else 50_000),
    ),
    Bench(
        "network_messages_per_sec",
        "SimNetwork ping-pong",
        "msgs/s",
        True,
        lambda quick: network_pingpong(30_000 if quick else 100_000),
    ),
    Bench(
        "read_ops_per_sec",
        "replica-local read path (optimistic)",
        "reads/s",
        True,
        lambda quick: read_path_scenario(3_000 if quick else 10_000),
    ),
    Bench(
        "exec_ops_per_sec",
        "execution engine (4 lanes, costed, disjoint)",
        "ops/s",
        True,
        lambda quick: exec_engine_throughput(30_000 if quick else 100_000),
    ),
    Bench(
        "openloop_arrivals_per_sec",
        "open-loop harness (diurnal thinning + recorder)",
        "arrivals/s",
        True,
        lambda quick: openloop_arrivals(50_000 if quick else 200_000),
    ),
    Bench(
        "b5_wallclock_sec",
        "B5 scenario (1 group, open loop, trace off)",
        "s",
        False,
        lambda quick: b5_scenario(150 if quick else 600),
    ),
    Bench(
        "b10_wallclock_sec",
        "B10 scenario (4 shards, overload, trace off)",
        "s",
        False,
        lambda quick: b10_scenario(B10_QUICK_REQUESTS if quick else 160),
    ),
]

#: Quick mode shrinks the workloads, so wall-clock results are not
#: comparable to the full-mode baseline -- only the rate-style micros
#: (events/s, msgs/s) stay comparable across modes.
RATE_KEYS = tuple(b.key for b in BENCHES if b.higher_is_better)


def run_suite(
    quick: bool = False,
    repeats: Optional[int] = None,
    wallclock: bool = True,
) -> Dict[str, Any]:
    """Run every benchmark; returns the BENCH_perf.json payload.

    A full run additionally measures the *quick-shape* B10 wall-clock
    and records it as ``quick_reference`` so CI (which runs in quick
    mode) has a same-shape committed baseline to gate the sharded
    end-to-end path against -- see ``run_perf.check_against``.

    ``wallclock=True`` (the default, used by ``run_perf.py`` and the CI
    gate) appends the real-backend section from
    :mod:`benchmarks.perf.wallclock` -- TCP cells take tens of seconds,
    so the in-tier smoke test passes ``wallclock=False`` and covers the
    section with tiny shapes separately.
    """
    if repeats is None:
        repeats = 2 if quick else 3
    results: Dict[str, float] = {}
    for bench in BENCHES:
        best = _best(lambda: bench.run(quick), repeats, bench.higher_is_better)
        # Rates round to whole units; wall-clocks keep sub-ms precision.
        results[bench.key] = round(best, 1 if bench.higher_is_better else 4)
    speedups: Dict[str, float] = {}
    for bench in BENCHES:
        if quick and bench.key not in RATE_KEYS:
            continue  # quick wall-clocks use smaller workloads
        base = PRE_PR_BASELINE.get(bench.key)
        if base is None:
            continue  # benchmark measures a path that did not exist pre-PR
        current = results[bench.key]
        ratio = current / base if bench.higher_is_better else base / current
        speedups[bench.key] = round(ratio, 2)
    payload: Dict[str, Any] = {
        "schema": 1,
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "baseline_pre_pr": {"commit": PRE_PR_COMMIT, **PRE_PR_BASELINE},
        "results": results,
        "speedup_vs_pre_pr": speedups,
        "golden_digest": golden_scenario_digest(),
    }
    if not quick:
        quick_b10 = _best(lambda: b10_scenario(B10_QUICK_REQUESTS), repeats, False)
        payload["quick_reference"] = {
            "b10_wallclock_sec": round(quick_b10, 4),
            "kernel_events_per_sec": results["kernel_events_per_sec"],
        }
    if wallclock:
        from benchmarks.perf.wallclock import run_wallclock

        payload["wallclock"] = run_wallclock(quick)
    return payload


def format_table(payload: Dict[str, Any]) -> str:
    """Human-readable before/after table for one suite run."""
    lines = [
        f"Perf suite ({payload['mode']} mode, best of {payload['repeats']})",
        "",
        f"{'benchmark':<44} {'pre-PR':>14} {'now':>14} {'speedup':>9}",
        "-" * 84,
    ]
    speedups = payload["speedup_vs_pre_pr"]
    for bench in BENCHES:
        base = PRE_PR_BASELINE.get(bench.key)
        current = payload["results"][bench.key]
        ratio = speedups.get(bench.key)
        ratio_text = f"{ratio:.2f}x" if ratio is not None else "n/a"
        precision = 1 if bench.higher_is_better else 4
        base_text = f"{base:>12,.{precision}f}" if base is not None else f"{'(new)':>12}"
        lines.append(
            f"{bench.label:<44} {base_text} {current:>14,.{precision}f} "
            f"{ratio_text:>9}  ({bench.unit})"
        )
    lines.append("")
    lines.append(f"golden digest: {payload['golden_digest']}")
    if "wallclock" in payload:
        from benchmarks.perf.wallclock import format_wallclock

        lines.append("")
        lines.append(format_wallclock(payload["wallclock"]))
    return "\n".join(lines)


def write_payload(payload: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
