"""Wall-clock benchmarks: the real asyncio/TCP backend, measured in ops/sec.

Everything else in the perf suite runs on the simulator's virtual
clock; these cells are the throughput story over real sockets -- the
ROADMAP's "as fast as the hardware allows" claim, measured.  Two kinds
of numbers live here:

* **Micros** -- ``codec_roundtrips_per_sec`` (frames through
  encode+decode of a representative protocol mix) and
  ``tcp_pingpong_msgs_per_sec`` (loopback round trips through
  :class:`~repro.runtime.tcp.TcpCluster`), each with a ``binary`` and a
  ``pickle`` cell.
* **End-to-end cells** -- adopted operations per second for the
  failure-free OAR shape, the 2-shard B10 shape, and the read-heavy
  B12 shape, over TCP with tracing off.  The OAR shape is measured
  twice: the optimized transport (binary codec, write coalescing,
  sequencer order batching, direct-dispatch receive) and the pre-PR
  shape (pickle codec, ``flush_bytes=1`` so every frame is its own
  ``writer.write``, no batching, inbox-queue + pump-task receive) --
  their ratio is the end-to-end win the CI gate holds.

Absolute wall-clock rates are machine-dependent; the committed numbers
carry machine provenance in ``BENCH_perf.json`` and the gates compare
*same-run ratios* (binary vs pickle) or kernel-normalized work, never
raw rates across machines (see ``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import asyncio
import struct
import time
from typing import Any, Dict, List

from repro.broadcast.reliable import RMsg
from repro.core.messages import Reply, Request, SeqOrder
from repro.failure.detector import Heartbeat
from repro.runtime.codec import make_codec
from repro.runtime.scenario import (
    RuntimeScenarioConfig,
    run_runtime_scenario,
)
from repro.runtime.tcp import TcpCluster
from repro.sharding.cluster import ShardedScenarioConfig
from repro.sim.process import Process
from repro.statemachine.base import OpResult

GROUP = ("p1", "p2", "p3")

_RMSG = RMsg(
    "p1:17",
    "c1",
    Request("c1:17", "c1", ("set", "k042", 1234)),
    GROUP,
)
_REPLY = Reply(
    "c1:17",
    OpResult(True, 1234),
    17,
    frozenset(GROUP),
    0,
    conservative=False,
    slot=17,
)

#: The codec micro's message mix, weighted by what one failure-free OAR
#: round actually puts on the wire with a 3-replica group: the
#: R-multicast request frame fans out to each replica, each replica
#: answers with its own reply frame, the sequencer emits one ordering
#: message, and the failure detectors tick heartbeats throughout.
PROTOCOL_MIX: List[Any] = [
    _RMSG,
    _RMSG,
    _RMSG,
    _REPLY,
    _REPLY,
    _REPLY,
    SeqOrder(0, ("c1:15", "c2:16", "c1:17"), start=15),
    Heartbeat(17),
    Heartbeat(18),
]


def _codec_trial(codec: Any, n: int) -> float:
    """One timed pass of ``n`` x mix frames; returns frames/sec."""
    encode, decode = codec.encode_frame, codec.decode_frame
    mix = PROTOCOL_MIX
    start = time.perf_counter()
    for _ in range(n):
        for message in mix:
            decode(encode("p1", message))
    return n * len(mix) / (time.perf_counter() - start)


def _codec_check(codec: Any) -> None:
    """The codec must be lossless on the mix (repr fidelity is what the
    trace digests hang off)."""
    for message in PROTOCOL_MIX:
        src, out = codec.decode_frame(codec.encode_frame("p1", message))
        assert src == "p1" and repr(out) == repr(message)


def codec_roundtrips_per_sec(codec_name: str, n: int) -> float:
    """Frames/sec through ``encode_frame`` + ``decode_frame`` of the mix."""
    codec = make_codec(codec_name)
    _codec_check(codec)
    return max(_codec_trial(codec, n) for _ in range(3))


def codec_rates(n: int) -> Dict[str, float]:
    """Both codec cells, measured as *interleaved* paired trials.

    Timing binary in one block and pickle in another lets CPU-state
    drift (frequency scaling, cache warmth) between the blocks move the
    reported ratio by tens of percent; alternating the trials gives both
    codecs the same conditions, so the binary/pickle ratio the perf gate
    holds is stable across runs."""
    codecs = {name: make_codec(name) for name in ("binary", "pickle")}
    for codec in codecs.values():
        _codec_check(codec)
        _codec_trial(codec, max(1, n // 10))  # warmup
    rates = {name: 0.0 for name in codecs}
    for _ in range(5):
        for name, codec in codecs.items():
            rates[name] = max(rates[name], _codec_trial(codec, n))
    return rates


#: Balls in flight for the TCP ping-pong: a window deep enough that the
#: transport pipeline (encode, coalesce, syscall, decode) is measured
#: rather than a single ball's loopback round-trip latency.
PINGPONG_WINDOW = 32


class _TcpPinger(Process):
    """Bounces a window of messages over real sockets until spent."""

    def __init__(self, pid: str, peer: str, budget: int) -> None:
        super().__init__(pid)
        self.peer = peer
        self.budget = budget  # remaining sends this side may make
        self.received = 0

    def on_start(self) -> None:
        if self.pid == "a":
            window = min(PINGPONG_WINDOW, self.budget)
            self.budget -= window
            for i in range(window):
                # The ball is a registered wire message, not a bare
                # tuple: the cell measures the transport pipeline on
                # the frames real runs put through it.
                self.env.send(
                    self.peer, Request(f"c1:{i}", "c1", ("set", "k042", i))
                )

    def on_message(self, src: str, payload: Any) -> None:
        self.received += 1
        if self.budget > 0:
            self.budget -= 1
            self.env.send(src, payload)


def tcp_pingpong_msgs_per_sec(codec_name: str, n: int) -> float:
    """Messages/sec for a windowed two-process ping-pong over TCP."""

    async def scenario() -> float:
        cluster = TcpCluster(codec=codec_name, trace_level="off")
        a = _TcpPinger("a", "b", n)
        b = _TcpPinger("b", "a", n)
        cluster.add_process(a)
        cluster.add_process(b)
        await cluster.start()
        start = time.perf_counter()
        done = await cluster.run_until(
            lambda: a.received + b.received >= 2 * n,
            timeout=60.0,
            poll=0.001,
        )
        elapsed = time.perf_counter() - start
        total = a.received + b.received
        await cluster.shutdown()
        assert done, "ping-pong did not finish"
        return total / elapsed

    # Best of three scenarios: a single run's rate swings with loop
    # scheduling jitter; three fresh clusters give a stable ceiling.
    return max(asyncio.run(scenario()) for _ in range(3))


# ----------------------------------------------------------------------
# End-to-end cells (ops/sec over TCP, tracing off)
# ----------------------------------------------------------------------

_FRAME_HEADER = struct.Struct(">I")


class SeedTcpCluster(TcpCluster):
    """The pre-PR transport, reconstructed verbatim for the baseline cell.

    The optimized :class:`TcpCluster` can emulate the seed's *frame
    shape* (``flush_bytes=1``, ``encode_cache=False``,
    ``direct_dispatch=False``) but not its *mechanics*, which are what
    this PR actually removed: one :func:`asyncio.ensure_future` task
    per send, a per-channel :class:`asyncio.Lock` held across the
    write, ``await writer.drain()`` after every frame, and a receive
    loop of two ``readexactly`` awaits per frame feeding the inbox
    queue.  This subclass restores exactly that send/receive code (from
    the seed tree) so the committed ``oar_binary_vs_pre_pr`` ratio
    compares against the transport that actually existed, not a
    flattering approximation of it.
    """

    def __init__(
        self,
        seed: int = 0,
        codec: Any = "pickle",
        trace_level: str = "off",
        **_ignored: Any,
    ) -> None:
        super().__init__(
            seed=seed,
            codec=codec,
            trace_level=trace_level,
            flush_bytes=1,
            encode_cache=False,
            direct_dispatch=False,  # seed dispatch: inbox queue + pump
        )
        self._writers: Dict[Any, asyncio.StreamWriter] = {}
        self._writer_locks: Dict[Any, asyncio.Lock] = {}
        self._closing = False

    def send_frame(self, src: str, dst: str, payload: Any) -> None:
        # The closing guard keeps late dispatches (a pump draining its
        # inbox while shutdown cancels it) from spawning send tasks
        # that nothing will ever cancel or await.
        if self._closing or src in self._crashed or dst not in self._addresses:
            return
        self._stats["frames_sent"] += 1
        self._track(asyncio.ensure_future(self._send_frame(src, dst, payload)))

    async def _send_frame(self, src: str, dst: str, payload: Any) -> None:
        key = (src, dst)
        lock = self._writer_locks.setdefault(key, asyncio.Lock())
        # The lock both serializes the lazy connect and keeps frames
        # from interleaving on the stream (FIFO per channel).
        async with lock:
            writer = self._writers.get(key)
            if writer is None or writer.is_closing():
                if dst in self._crashed:
                    return
                host, port = self._addresses[dst]
                try:
                    _reader, writer = await asyncio.open_connection(host, port)
                except OSError:
                    return  # destination crashed between check and connect
                self._writers[key] = writer
            body = self.codec.encode_frame(src, payload)
            writer.write(_FRAME_HEADER.pack(len(body)) + body)
            self._stats["flushes"] += 1
            self._stats["bytes_sent"] += _FRAME_HEADER.size + len(body)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self._writers.pop(key, None)

    def _make_connection_handler(self, pid: str):
        async def handle(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            try:
                while True:
                    header = await reader.readexactly(_FRAME_HEADER.size)
                    (length,) = _FRAME_HEADER.unpack(header)
                    body = await reader.readexactly(length)
                    src, payload = self.codec.decode_frame(body)
                    self._stats["frames_received"] += 1
                    self._inboxes[pid].put_nowait((src, payload))
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
                asyncio.CancelledError,
            ):
                pass
            finally:
                writer.close()

        return handle

    async def shutdown(self) -> None:
        self._closing = True
        await super().shutdown()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()


def _ops_per_sec(config: RuntimeScenarioConfig) -> float:
    run = run_runtime_scenario(config)
    assert run.completed, "wall-clock scenario did not reach quiescence"
    return run.ops_per_sec()


def _oar_scenario(requests_per_client: int) -> ShardedScenarioConfig:
    """Failure-free OAR under saturation: one group, 3 replicas, 4
    open-loop clients offering load far above capacity, so the measured
    ops/sec is the pipeline's throughput ceiling (codec + transport +
    protocol CPU), not a closed loop's round-trip latency."""
    return ShardedScenarioConfig(
        seed=0,
        n_shards=1,
        n_servers=3,
        n_clients=4,
        requests_per_client=requests_per_client,
        machine="kv",
        workload="uniform",
        n_keys=64,
        driver="open",
        open_rate=500.0,  # x time_scale 0.04 = 12,500/s offered per client
        trace_level="off",
    )


def tcp_oar_ops_per_sec(requests_per_client: int) -> float:
    """The optimized transport: binary codec + coalescing (with a 2 ms
    timed flush window -- the throughput cells accept the latency
    trade) + sequencer order batching + direct-dispatch receive."""
    return _ops_per_sec(
        RuntimeScenarioConfig(
            scenario=_oar_scenario(requests_per_client),
            backend="tcp",
            codec="binary",
            tcp_flush_interval=0.002,
        )
    )


def tcp_oar_ops_per_sec_baseline(requests_per_client: int) -> float:
    """The pre-PR transport: the same scenario hosted on
    :class:`SeedTcpCluster` -- pickle per frame, a task + lock +
    write + drain per send, readexactly + inbox-pump receive, no order
    batching.  See the class docstring; this is the denominator of the
    ``oar_binary_vs_pre_pr`` ratio the CI gate holds."""
    return _ops_per_sec(
        RuntimeScenarioConfig(
            scenario=_oar_scenario(requests_per_client),
            backend="tcp",
            codec="pickle",
            tcp_batch_interval=None,
            tcp_cluster_factory=SeedTcpCluster,
        )
    )


def oar_rates(requests_per_client: int, pairs: int = 3) -> Dict[str, float]:
    """Both OAR cells, measured as *interleaved* pairs (best of each).

    The same reasoning as :func:`codec_rates`: the host's effective CPU
    speed drifts by tens of percent across minutes, so measuring the
    optimized cell and the baseline cell in separate blocks lets that
    drift masquerade as (or hide) a transport win.  Alternating them
    gives both cells the same conditions; best-of discards the
    slow-outlier runs both cells occasionally take."""
    rates = {"binary": 0.0, "pickle_unbatched": 0.0}
    for _ in range(pairs):
        rates["binary"] = max(
            rates["binary"], tcp_oar_ops_per_sec(requests_per_client)
        )
        rates["pickle_unbatched"] = max(
            rates["pickle_unbatched"],
            tcp_oar_ops_per_sec_baseline(requests_per_client),
        )
    return rates


def tcp_sharded_ops_per_sec(requests_per_client: int) -> float:
    """The B10 shape over sockets: 2 shards, 6 clients, uniform keys."""
    return _ops_per_sec(
        RuntimeScenarioConfig(
            scenario=ShardedScenarioConfig(
                seed=0,
                n_shards=2,
                n_servers=3,
                n_clients=6,
                requests_per_client=requests_per_client,
                machine="kv",
                workload="uniform",
                n_keys=64,
                driver="open",
                open_rate=500.0,
                trace_level="off",
            ),
            backend="tcp",
            codec="binary",
        )
    )


def tcp_readheavy_ops_per_sec(requests_per_client: int) -> float:
    """The B12 shape over sockets: replica-local optimistic reads."""
    return _ops_per_sec(
        RuntimeScenarioConfig(
            scenario=ShardedScenarioConfig(
                seed=0,
                n_shards=2,
                n_servers=3,
                n_clients=6,
                requests_per_client=requests_per_client,
                machine="bank",
                workload="readheavy",
                read_ratio=0.9,
                read_mode="optimistic",
                driver="open",
                open_rate=500.0,
                trace_level="off",
            ),
            backend="tcp",
            codec="binary",
        )
    )


# ----------------------------------------------------------------------
# Section driver
# ----------------------------------------------------------------------

def run_wallclock(quick: bool = False) -> Dict[str, Any]:
    """Measure every wall-clock cell; returns the ``wallclock`` section."""
    codec_n = 4_000 if quick else 12_000  # x len(mix) frames, best of 3
    pingpong_n = 3_000 if quick else 10_000
    oar_requests = 150 if quick else 400
    sharded_requests = 100 if quick else 250

    codec = {
        name: round(rate, 1) for name, rate in codec_rates(codec_n).items()
    }
    pingpong = {
        name: round(tcp_pingpong_msgs_per_sec(name, pingpong_n), 1)
        for name in ("binary", "pickle")
    }
    oar = {
        name: round(rate, 1)
        for name, rate in oar_rates(
            oar_requests, pairs=3 if quick else 5
        ).items()
    }
    section: Dict[str, Any] = {
        "codec_roundtrips_per_sec": codec,
        "tcp_pingpong_msgs_per_sec": pingpong,
        "tcp_oar_ops_per_sec": oar,
        "tcp_sharded_ops_per_sec": {
            "binary": round(tcp_sharded_ops_per_sec(sharded_requests), 1)
        },
        "tcp_readheavy_ops_per_sec": {
            "binary": round(tcp_readheavy_ops_per_sec(sharded_requests), 1)
        },
        "ratios": {
            "codec_binary_vs_pickle": round(codec["binary"] / codec["pickle"], 2),
            "oar_binary_vs_pre_pr": round(
                oar["binary"] / oar["pickle_unbatched"], 2
            ),
        },
    }
    return section


def format_wallclock(section: Dict[str, Any]) -> str:
    """Human-readable rendering of the wallclock section."""
    lines = ["Wall-clock cells (real TCP backend, tracing off)", ""]
    for key, cells in section.items():
        if key == "ratios":
            continue
        rendered = ", ".join(f"{name}={value:,.0f}" for name, value in cells.items())
        lines.append(f"  {key:<28} {rendered}")
    ratios = section["ratios"]
    lines.append("")
    lines.append(
        f"  codec binary/pickle: {ratios['codec_binary_vs_pickle']:.2f}x   "
        f"OAR binary vs pre-PR shape: {ratios['oar_binary_vs_pre_pr']:.2f}x"
    )
    return "\n".join(lines)
