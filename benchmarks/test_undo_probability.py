"""Experiment B3: how rare is Opt-undeliver?

Section 6 argues an Opt-undelivery needs a *triple* coincidence: (1) the
sequencer fails so that only a minority received its ordering, (2) no
member of that minority has its initial value in the consensus decision
(all of them suspected, footnote 5), and (3) the conservative order
actually differs.

The sweep escalates the adversary and counts, per condition, how many
runs execute phase 2 at all versus how many actually undo:

* ``crash``            -- sequencer crashes cleanly (ordering delivered).
* ``partial``          -- crash mid-multicast, minority got the ordering.
* ``partial+isolated`` -- additionally the minority is partitioned and
  suspected (the full Figure 4 conditions, "unsuspected" consensus).
"""

import pytest

from repro.core.messages import SeqOrder
from repro.core.server import OARConfig
from repro.faults import FaultSchedule, crash_during_multicast
from repro.harness import ScenarioConfig, Table, run_scenario, write_result
from repro.sim.latency import UniformLatency

pytestmark = pytest.mark.bench


SEEDS = range(8)


def make_config(condition: str, seed: int) -> ScenarioConfig:
    collect = "unsuspected" if condition == "partial+isolated" else "majority"
    schedule = FaultSchedule()
    arm = None

    if condition == "crash":
        schedule.crash(8.0, "p1")
    else:
        def arm(run) -> None:
            counter = {"n": 0}

            def match(payload) -> bool:
                if not isinstance(payload, SeqOrder):
                    return False
                counter["n"] += 1
                return counter["n"] > 2 * 3  # lose the 3rd ordering multicast

            crash_during_multicast(
                run.network, "p1", match, deliver_to={"p2"}, crash=True
            )

    if condition == "partial+isolated":
        # The isolation starts well after the partial multicast (~t=9)
        # so the minority member has actually Opt-delivered the doomed
        # batch before the conservative phase begins.
        schedule.partition(13.0, [["p1", "p2"], ["p3", "p4", "c1", "c2"]])
        schedule.suspect(13.5, "p1")
        schedule.suspect(13.5, "p2")
        schedule.heal(45.0)
        schedule.unsuspect(50.0, "p2")
        fd_kind = "scripted"
    else:
        fd_kind = "heartbeat"

    return ScenarioConfig(
        protocol="oar",
        n_servers=4,
        n_clients=2,
        requests_per_client=6,
        # Jitter makes the replicas receive concurrent requests in
        # different orders -- without it, the conservative order always
        # coincides with the undone optimistic order and the thriftiness
        # rule (Fig. 7, lines 15-19) cancels every undo.
        latency=UniformLatency(0.5, 1.5),
        oar=OARConfig(batch_interval=1.5, consensus_collect=collect),
        fd_kind=fd_kind,
        fd_interval=1.5,
        fd_timeout=5.0,
        fault_schedule=schedule,
        arm=arm,
        grace=300.0,
        horizon=3_000.0,
        seed=seed,
    )


def sweep(condition: str):
    phase2_runs = 0
    undo_runs = 0
    undone_messages = 0
    for seed in SEEDS:
        run = run_scenario(make_config(condition, seed))
        run.check_all(strict=False, at_least_once=False)
        if run.trace.events(kind="phase2_start"):
            phase2_runs += 1
        undos = run.trace.events(kind="opt_undeliver")
        if undos:
            undo_runs += 1
        undone_messages += len(undos)
    return phase2_runs, undo_runs, undone_messages


def test_clean_crash_never_undoes(benchmark):
    phase2, undo_runs, _messages = benchmark.pedantic(
        sweep, args=("crash",), rounds=1, iterations=1
    )
    assert phase2 == len(list(SEEDS))  # recovery always runs...
    assert undo_runs == 0  # ...but never needs to undo


def test_partial_multicast_alone_rarely_undoes(benchmark):
    # Minority optimism exists, but with majority estimate collection the
    # minority's value is always in the decision: no undo.
    _phase2, undo_runs, _messages = benchmark.pedantic(
        sweep, args=("partial",), rounds=1, iterations=1
    )
    assert undo_runs == 0


def test_full_triple_event_undoes(benchmark):
    phase2, undo_runs, messages = benchmark.pedantic(
        sweep, args=("partial+isolated",), rounds=1, iterations=1
    )
    assert phase2 == len(list(SEEDS))
    # Even with all three conditions forced, the thriftiness rule still
    # cancels undos whose re-delivery order happens to coincide -- so we
    # require undo in *some* but not necessarily all runs.
    assert 1 <= undo_runs <= len(list(SEEDS))
    assert messages >= undo_runs


def test_b3_report(benchmark):
    rows = {}
    for condition in ("crash", "partial", "partial+isolated"):
        rows[condition] = sweep(condition)
    benchmark.pedantic(
        sweep, args=("crash",), rounds=1, iterations=1
    )
    table = Table(
        "B3 -- Opt-undeliver requires the paper's triple event (8 runs each)",
        ["condition", "runs w/ phase 2", "runs w/ undo", "messages undone"],
    )
    labels = {
        "crash": "sequencer crash (ordering delivered)",
        "partial": "crash mid-multicast (minority ordered)",
        "partial+isolated": "+ minority partitioned & suspected",
    }
    for condition, (phase2, undo_runs, messages) in rows.items():
        table.add_row(labels[condition], phase2, undo_runs, messages)
    lines = [
        table.render(),
        "",
        "shape: phase 2 is routine after any suspicion, but Opt-undeliver",
        "appears only when all three of the paper's conditions coincide",
        "(Section 6) -- matching the claim that undo probability is very low.",
    ]
    write_result("B3_undo_probability", "\n".join(lines))
