"""Experiment B6: the cost of the weighted-quorum client rule.

Classic active replication adopts the *first* reply (Section 2.1); OAR's
client waits for majority weight (Fig. 5).  Failure-free, this costs
exactly one extra message delay (the sequencer's weight-1 reply cannot be
adopted alone); under the Figure 1(b) crash it is precisely what keeps
the client consistent.  This bench quantifies both sides of the trade.
"""

import pytest

from repro.analysis import checkers
from repro.analysis.stats import summarize
from repro.harness import ScenarioConfig, Table, run_scenario, write_result
from repro.harness.figures import run_figure_1b, run_figure_1b_with_oar

pytestmark = pytest.mark.bench



def run_clean(protocol: str, seed: int = 0):
    return run_scenario(
        ScenarioConfig(
            protocol=protocol,
            n_servers=3,
            n_clients=1,
            requests_per_client=30,
            seed=seed,
        )
    )


def test_quorum_client_latency(benchmark):
    run = benchmark.pedantic(run_clean, args=("oar",), rounds=3, iterations=1)
    assert summarize(run.latencies()).mean == pytest.approx(3.0)


def test_first_reply_client_latency(benchmark):
    run = benchmark.pedantic(
        run_clean, args=("sequencer",), rounds=3, iterations=1
    )
    assert summarize(run.latencies()).mean == pytest.approx(2.0)


def test_b6_report(benchmark):
    oar_clean = run_clean("oar")
    seq_clean = run_clean("sequencer")
    seq_crash = run_figure_1b()
    oar_crash = benchmark.pedantic(
        run_figure_1b_with_oar, rounds=1, iterations=1
    )

    oar_stats = summarize(oar_clean.latencies())
    seq_stats = summarize(seq_clean.latencies())
    seq_bad = checkers.count_baseline_inconsistencies(
        seq_crash.trace, seq_crash.correct_servers
    )
    oar_bad = checkers.count_baseline_inconsistencies(
        oar_crash.trace, oar_crash.correct_servers
    )

    table = Table(
        "B6 -- First-reply vs weighted-quorum adoption",
        [
            "client rule",
            "failure-free mean latency",
            "fig-1b inconsistencies",
        ],
    )
    table.add_row("first reply (classic)", seq_stats.mean, seq_bad)
    table.add_row("majority weight (OAR)", oar_stats.mean, oar_bad)
    lines = [
        table.render(),
        "",
        f"shape: the quorum rule costs {oar_stats.mean - seq_stats.mean:.1f}",
        "message delay failure-free and eliminates the stale-reply anomaly",
        "entirely -- the trade the paper's title is about.",
    ]
    write_result("B6_client_quorum", "\n".join(lines))
    assert oar_stats.mean > seq_stats.mean
    assert seq_bad > oar_bad == 0
