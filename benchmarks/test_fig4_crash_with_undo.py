"""Experiment F4: Figure 4 -- sequencer crash *with* Opt-undelivery.

Four servers; only p2 received the ordering of {m3;m4}; p3/p4 wrongly
suspect p2 (minority partition) so the consensus decision excludes p2's
optimistic sequence; p2 must Opt-undeliver m4, m3 (reverse order) and
A-deliver the agreed {m4;m3}.  The clients only ever adopt the agreed
replies -- the paper's headline safety property under its worst scenario.
"""

from repro.analysis import checkers
from repro.harness.figures import run_figure_4
from repro.harness.tables import Table, write_result

import pytest

pytestmark = pytest.mark.bench


M1, M2, M3, M4 = "c1-0", "c2-0", "c1-1", "c2-1"


def test_fig4_crash_with_undo(benchmark):
    run = benchmark.pedantic(run_figure_4, rounds=3, iterations=1)
    assert run.opt_undelivered("p2") == (M4, M3)  # reverse delivery order
    epoch0 = {
        e.pid: (e["bad"], e["new"])
        for e in run.trace.events(kind="cnsv_order")
        if e["epoch"] == 0
    }
    assert epoch0["p2"] == ((M3, M4), (M4, M3))
    assert epoch0["p3"] == ((), (M4, M3))
    assert epoch0["p4"] == ((), (M4, M3))
    for server in run.correct_servers:
        assert tuple(server.settled_order.items)[:4] == (M1, M2, M4, M3)
    checkers.check_external_consistency(run.trace)
    checkers.check_cnsv_order_properties(run.trace, 4)


def test_fig4_report(benchmark):
    run = benchmark.pedantic(run_figure_4, rounds=1, iterations=1)
    table = Table(
        "F4 -- Figure 4: OAR with sequencer crash and Opt-undelivery (4 servers)",
        ["server", "Opt-delivered (epoch 0)", "Bad", "New", "Opt-undelivered"],
    )
    epoch0 = {
        e.pid: (e["bad"], e["new"])
        for e in run.trace.events(kind="cnsv_order")
        if e["epoch"] == 0
    }
    for pid in ("p1", "p2", "p3", "p4"):
        bad, new = epoch0.get(pid, ((), ()))
        table.add_row(
            pid,
            ";".join(run.opt_delivered(pid)) or "ε",
            ";".join(bad) or "ε",
            ";".join(new) or "ε",
            ";".join(run.opt_undelivered(pid)) or "-",
        )
    adoptions = {
        rid: (a.position, a.conservative) for rid, a in run.adopted().items()
    }
    lines = [
        table.render(),
        "",
        f"agreed epoch-0 order: {';'.join(run.correct_servers[0].settled_order.items[:4])}",
        f"adoptions (rid -> position, conservative?): {adoptions}",
        "paper outcome: Bad={m3;m4}, New={m4;m3} at p2; Bad=ε, New={m4;m3} at"
        " p3/p4; clients adopt only the agreed replies  -- matched",
    ]
    write_result("F4_figure4_crash_with_undo", "\n".join(lines))
