"""Experiment B7: ablations of the paper's two engineering remarks.

1. **Periodic PhaseII garbage collection** (Remark, Section 5.3): without
   it, ``O_delivered`` grows with the entire failure-free history, so the
   eventual phase-2 consensus carries a proposal proportional to the whole
   run; with GC every N requests the proposal stays O(N).

2. **Rotating sequencer** (Section 5.3): with a fixed sequencer, a
   crashed sequencer forces *every* subsequent epoch through the
   conservative path; rotation restores the optimistic fast path after a
   single recovery epoch.
"""

import pytest

from repro.core.server import OARConfig
from repro.faults import FaultSchedule
from repro.harness import ScenarioConfig, Table, run_scenario, write_result

pytestmark = pytest.mark.bench


REQUESTS = 40


def run_gc(gc_after, seed: int = 0):
    # A suspicion late in the run forces one "real" phase 2 so we can
    # measure the proposal size with and without GC having trimmed it.
    schedule = FaultSchedule().suspect(90.0, "p1").unsuspect(120.0, "p1")
    return run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=REQUESTS // 2,
            think_time=1.0,
            fd_kind="scripted",
            oar=OARConfig(gc_after_requests=gc_after),
            fault_schedule=schedule,
            grace=200.0,
            horizon=5_000.0,
            seed=seed,
        )
    )


def max_proposal(run) -> int:
    proposals = run.trace.events(kind="cnsv_propose")
    if not proposals:
        return 0
    return max(
        len(p["o_delivered"]) + len(p["o_notdelivered"]) for p in proposals
    )


def run_rotation(rotate: bool, seed: int = 0):
    return run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=8,
            fd_interval=1.5,
            fd_timeout=5.0,
            oar=OARConfig(rotate_sequencer=rotate),
            fault_schedule=FaultSchedule().crash(8.0, "p1"),
            grace=400.0,
            horizon=5_000.0,
            seed=seed,
        )
    )


def test_gc_bounds_proposals(benchmark):
    run = benchmark.pedantic(run_gc, args=(5,), rounds=2, iterations=1)
    assert run.all_done()
    run.check_all()
    assert max_proposal(run) <= 12


def test_no_gc_grows_proposals(benchmark):
    run = benchmark.pedantic(run_gc, args=(None,), rounds=2, iterations=1)
    assert run.all_done()
    # Everything Opt-delivered before the suspicion sits in one proposal.
    assert max_proposal(run) >= REQUESTS * 0.75


def test_rotation_restores_fast_path(benchmark):
    run = benchmark.pedantic(
        run_rotation, args=(True,), rounds=2, iterations=1
    )
    assert run.all_done()
    # After the single recovery epoch, adoption goes optimistic again.
    post_crash = [
        e for e in run.trace.events(kind="adopt") if e.time > 20.0
    ]
    assert post_crash
    assert any(not e["conservative"] for e in post_crash)


def test_b7_report(benchmark):
    gc_run = run_gc(5)
    nogc_run = run_gc(None)
    rot_run = run_rotation(True)
    fixed_run = benchmark.pedantic(
        run_rotation, args=(False,), rounds=1, iterations=1
    )

    def conservative_fraction(run):
        adoptions = run.trace.events(kind="adopt")
        if not adoptions:
            return 0.0
        conservative = sum(1 for a in adoptions if a["conservative"])
        return conservative / len(adoptions)

    gc_table = Table(
        "B7a -- PhaseII garbage collection (Remark, Section 5.3)",
        ["config", "max consensus proposal size", "phase-2 executions"],
    )
    gc_table.add_row(
        "no GC", max_proposal(nogc_run),
        len({e["epoch"] for e in nogc_run.trace.events(kind="phase2_start")}),
    )
    gc_table.add_row(
        "GC every 5 requests", max_proposal(gc_run),
        len({e["epoch"] for e in gc_run.trace.events(kind="phase2_start")}),
    )

    rot_table = Table(
        "B7b -- Rotating vs fixed sequencer after a sequencer crash",
        ["config", "final epoch", "conservative adoption fraction"],
    )
    rot_table.add_row(
        "rotating (paper)", rot_run.correct_servers[0].epoch,
        conservative_fraction(rot_run),
    )
    rot_table.add_row(
        "fixed sequencer", fixed_run.correct_servers[0].epoch,
        conservative_fraction(fixed_run),
    )

    lines = [
        gc_table.render(),
        "",
        rot_table.render(),
        "",
        "shape: GC keeps the eventual consensus input O(gc window) instead",
        "of O(history); rotation returns to the optimistic path after one",
        "recovery epoch while the fixed-sequencer variant burns one",
        "conservative phase per epoch forever (its epoch counter races).",
    ]
    write_result("B7_ablations", "\n".join(lines))

    assert max_proposal(gc_run) < max_proposal(nogc_run)
    assert conservative_fraction(rot_run) < 1.0
    assert fixed_run.correct_servers[0].epoch >= rot_run.correct_servers[0].epoch
