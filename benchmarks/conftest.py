"""Benchmark-suite configuration.

Every module here regenerates one experiment from DESIGN.md's index
(figure-exact scenarios F1a-F4, quantitative claims B1-B8).  Reports are
written to ``benchmarks/results/local/`` (git-ignored) by default and the
*shape* of each result (who wins, by what factor, what is zero) is
asserted -- absolute numbers are simulator-scale, not the authors'
testbed.  Pass ``--update-results`` to refresh the *tracked* reports
under ``benchmarks/results/`` (the numbers that land in git).
"""

import os

import pytest  # noqa: F401  (fixtures/plugins hook through this module)


def pytest_addoption(parser):
    parser.addoption(
        "--update-results",
        action="store_true",
        default=False,
        help="write benchmark reports to the tracked benchmarks/results/ "
        "directory instead of the git-ignored local scratch dir",
    )


def pytest_configure(config):
    if config.getoption("--update-results"):
        os.environ["REPRO_UPDATE_RESULTS"] = "1"
