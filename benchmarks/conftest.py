"""Benchmark-suite configuration.

Every module here regenerates one experiment from DESIGN.md's index
(figure-exact scenarios F1a-F4, quantitative claims B1-B8).  Reports are
written to ``benchmarks/results/`` and the *shape* of each result (who
wins, by what factor, what is zero) is asserted -- absolute numbers are
simulator-scale, not the authors' testbed.
"""

import pytest
