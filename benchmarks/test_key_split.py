"""Experiment B14: single-hot-key goodput vs. fragment count (key splitting).

B13 ends on a negative result: with every write hitting one key, the
dependency chain serializes execution and extra lanes buy nothing (the
hot-key curve is a ~2 ops/unit flatline at ``exec_cost=0.5``).  B14 is
the follow-through.  Splitting the hot bank account into ``n`` escrow
fragments (:meth:`repro.sharding.rebalance.RebalanceCoordinator.split_key`)
gives each fragment its own key, its own conflict footprint, and -- via
the router -- its own shard, so commutative deposits/withdrawals on the
*same logical account* flow through ``lanes x shards`` independent
serial chains instead of one.

Setup: 4 shards x 3 replicas, 4 open-loop clients driving a saturating
hot-key bank workload (``hot_ratio=1.0``: every op touches account 0;
the generator's built-in 20% balance reads scatter-gather across the
fragments).  ``read_mode="conservative"`` serves reads replica-locally
so the curve isolates the *write* path the splitting argument is about.
Split runs delay the drivers to ``t=30`` so the split (committed around
``t=10``) and a routing-table sync land before the measured window --
B14 measures steady-state split goodput, not the migration transient
(B10 covers move transients).

Goodput is logical adoptions per unit time over the p10-p90 adoption
window.  The interquantile window keeps the metric about sustained
throughput: a single straggling borrow chain (fragment exhausted ->
escrow transfer -> retry) can stretch the max-adoption span by tens of
units without changing the steady rate.

Acceptance (ISSUE 6): split-4 goodput must be at least 2x the unsplit
flatline; the prototype margin is ~3.8x.  Every cell runs the full
checker bundle, including fragment conservation, under live traffic.
"""

import pytest

from repro.harness import Table, write_result
from repro.sharding.cluster import ShardedScenarioConfig, build_sharded_scenario
from repro.sharding.rebalance import attach_rebalancer

pytestmark = pytest.mark.bench

FRAG_COUNTS = [0, 2, 4, 8]  #: 0 = unsplit baseline (the B13 flatline)
EXEC_COST = 0.5  #: per-op execution service time => 2 ops/unit per lane
LANES = 4
CLIENTS = 4
REQUESTS = 100  #: per client; 400 total
RATE = 8.0  #: per client; 32 req/unit offered >> any configuration


def run_hotkey(frags: int, seed: int = 0):
    """A saturated single-hot-key bank run, split into ``frags`` fragments.

    ``frags=0`` runs unsplit.  Otherwise the coordinator splits the hot
    account across the shards at ``t=0`` (commit lands around ``t=10``)
    and re-syncs every client's routing table at ``t=25``, before the
    delayed drivers start submitting at ``t=30``.
    """
    config = ShardedScenarioConfig(
        n_shards=4,
        n_servers=3,
        n_clients=CLIENTS,
        requests_per_client=REQUESTS,
        machine="bank",
        workload="hotkey",
        hot_ratio=1.0,
        accounts_per_shard=4,
        driver="open",
        open_rate=RATE,
        driver_start_at=30.0 if frags else 0.0,
        read_mode="conservative",
        exec_cost=EXEC_COST,
        exec_lanes=LANES,
        seed=seed,
        horizon=200_000.0,
        grace=200.0,
    )
    run = build_sharded_scenario(config)
    if frags:
        coordinator = attach_rebalancer(run)
        hot = run.key_universe[0]
        coordinator.schedule(0.0, lambda: coordinator.split_key(hot, frags))
        table, clients = run.routing_table, run.clients
        coordinator.schedule(
            25.0, lambda: [c.router.sync_from(table) for c in clients]
        )
    run.execute()
    assert run.all_done()
    run.check_all()
    return run


def goodput(run) -> float:
    """Logical adoptions per unit time over the p10-p90 adoption window.

    ``run.adopted()`` counts each logical operation once: scatter-read
    branches and escrow borrows are client-internal and never surface as
    extra adoptions, so splitting cannot inflate the numerator.
    """
    times = sorted(record.adopt_time for record in run.adopted().values())
    n = len(times)
    lo, hi = times[n // 10], times[(9 * n) // 10]
    return (0.8 * n) / (hi - lo) if hi > lo else 0.0


class TestB14KeySplit:
    def test_split_goodput_scales_past_the_hot_key_flatline(self):
        table = Table(
            f"B14  hot-key goodput vs fragment count -- exec_cost={EXEC_COST}, "
            f"{LANES} lanes, 4 shards, saturating open loop",
            ["fragments", "goodput", "max concurrency", "redirects"],
        )
        curve = {}
        for frags in FRAG_COUNTS:
            run = run_hotkey(frags)
            curve[frags] = goodput(run)
            conc = max(server.engine.max_concurrency for server in run.servers)
            redirects = len(list(run.trace.events(kind="redirect")))
            table.add_row(
                frags or "unsplit", curve[frags], conc, redirects
            )
            if frags == 0:
                # Unsplit, every write conflicts: the dependency chain
                # serializes the hot shard regardless of lanes (B13).
                hot_shard = run.shards[0]
                assert max(s.engine.max_concurrency for s in hot_shard) == 1
            else:
                # Steady state: no client chases a stale route.
                assert redirects == 0
                if frags > 4:
                    # With more fragments than shards, co-located
                    # fragments have disjoint footprints and the lanes
                    # engage *within* a shard too (4 shards x >1 lane).
                    assert conc > 1

        write_result("B14_key_split", table.render())

        # The curve climbs with fragment count: each fragment adds an
        # independent serial chain on its own shard.
        assert curve[0] < curve[2] < curve[4] < curve[8], (
            f"goodput should rise with fragment count: {curve}"
        )
        # ISSUE 6 acceptance: splitting at least doubles the flatline.
        assert curve[4] >= 2.0 * curve[0], (
            f"4 fragments should at least double unsplit goodput: {curve}"
        )

    def test_unsplit_baseline_matches_b13_flatline(self):
        # The unsplit hot-key run reproduces B13's serialized bound:
        # ~1/exec_cost ops/unit of write capacity on the hot shard, plus
        # the ~20% replica-local reads that never enter the lanes.
        run = run_hotkey(0)
        assert goodput(run) <= 1.5 / EXEC_COST, (
            "unsplit hot-key goodput should sit near the serial bound"
        )
