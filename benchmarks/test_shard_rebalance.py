"""Experiment B11: live rebalancing recovers goodput under hot-key skew.

The B10b table showed the ceiling: under Zipfian skew the hot keys'
shard saturates its one ordering pipeline and aggregate goodput stops
scaling with shard count.  B11 closes the loop.  A range-partitioned
4-shard cluster puts the Zipf head keys contiguously on shard 0 (the
worst case a static placement can produce); after a warm-up window a
:class:`~repro.sharding.rebalance.RebalanceCoordinator` snapshots the
clients' per-key load counters, plans moves off the hot shard, and
migrates the head keys to the cold shards as escrow-style migration
transactions -- while the open-loop workload keeps firing and stale
clients ride WrongShard redirects onto the new placement.

Measured: steady-state goodput *after the rebalance completes*, versus
the same window of the identical run with the static router.  Also
asserted: every migration scenario in this file -- including a
coordinator crash mid-migration healed by a recovery coordinator --
passes ``check_migration_atomicity`` plus the full per-shard bundle.
"""

import pytest

from repro.analysis import checkers
from repro.core.server import OARConfig
from repro.harness import (
    ShardedScenarioConfig,
    Table,
    run_sharded_scenario,
    write_result,
)
from repro.sharding import attach_rebalancer

pytestmark = pytest.mark.bench

N_SHARDS = 4
ORDER_COST = 0.5  #: sequencer service time => 2 req/unit per pipeline
CLIENTS = 8
REQUESTS = 120  #: per client; 960 total => ~300 time units of arrivals
RATE = 0.4  #: per client; 3.2 req/unit offered, ~2.9 of which hit shard 0
ZIPF_S = 1.5  #: range router packs the top-16 keys (~90% of load) on shard 0
#: Rebalance early, before the hot sequencer's backlog grows deep: the
#: migration steps are ordinary totally-ordered requests, so they queue
#: behind that same backlog (rebalancing is cheapest exactly when it is
#: acted on promptly -- the experiment shows the cost of waiting too).
REBALANCE_AT = 20.0
MAX_MOVES = 4
END_OF_ARRIVALS = REQUESTS / RATE


def base_config(seed: int = 0, arm=None) -> ShardedScenarioConfig:
    return ShardedScenarioConfig(
        n_shards=N_SHARDS,
        n_servers=3,
        n_clients=CLIENTS,
        requests_per_client=REQUESTS,
        machine="kv",
        workload="zipf",
        zipf_s=ZIPF_S,
        router="range",  # head keys contiguous on shard 0: worst case
        n_keys=64,
        driver="open",
        open_rate=RATE,
        oar=OARConfig(order_cost=ORDER_COST),
        redirect_delay=2.0,
        grace=200.0,
        horizon=50_000.0,
        seed=seed,
        arm=arm,
    )


def goodput_in(run, since: float, until: float) -> float:
    """Adoptions per time unit inside [since, until]."""
    adopts = [
        e.time for e in run.trace.events(kind="adopt") if since <= e.time <= until
    ]
    span = until - since
    return len(adopts) / span if span > 0 else 0.0


def makespan(run) -> float:
    """Time of the last adoption (the fixed workload's completion)."""
    return max(e.time for e in run.trace.events(kind="adopt"))


def hot_share_after(run, since: float) -> float:
    """Fraction of post-``since`` submissions that routed to shard 0."""
    clients_by_pid = {client.pid: client for client in run.clients}
    total = 0
    hot = 0
    for event in run.trace.events(kind="submit"):
        client = clients_by_pid.get(event.pid)
        if client is None or event.time < since:
            continue
        shard = client.routed.get(event["rid"])
        if shard is None:
            continue  # a cross-shard txid, not a physical routed rid
        total += 1
        hot += shard == 0
    return hot / total if total else 0.0


def check_big_run(run):
    """The linear-cost slice of the checker bundle, for the goodput runs.

    The pairwise majority-guarantee sweep is quadratic in requests per
    shard; at B11's scale (~860 requests on the hot shard) it would cost
    tens of seconds while adding no coverage -- the full bundle
    (including it) runs on every smaller scenario in this file and the
    test tiers.  Everything the rebalancing could actually break is
    checked here: per-shard at-most-once and order/state agreement,
    external consistency of adoptions, and migration atomicity +
    conservation + single-owner across shards.
    """
    assert run.all_done()
    client_pids = [client.pid for client in run.clients] + [
        coordinator.client.pid for coordinator in run.rebalancers
    ]
    for shard, servers in enumerate(run.shards):
        view = checkers.subtrace(
            run.trace, [server.pid for server in servers] + client_pids
        )
        checkers.check_at_most_once(view, servers)
        checkers.check_total_order(servers)
        checkers.check_replica_convergence(servers)
        checkers.check_external_consistency(view)
        checkers.check_at_least_once(
            view,
            [server for server in servers if not server.crashed],
            run.routed_to(shard),
        )
    checkers.check_cross_shard_atomicity(run.trace, run.shards, quiescent=True)
    checkers.check_migration_atomicity(
        run.trace,
        run.shards,
        run.routing_table,
        run.key_universe,
        quiescent=True,
    )


def run_static(seed: int = 0):
    return run_sharded_scenario(base_config(seed))


def run_rebalanced(seed: int = 0):
    state = {}

    def arm(run):
        state["coordinator"] = attach_rebalancer(
            run, start_at=REBALANCE_AT, max_moves=MAX_MOVES
        )

    run = run_sharded_scenario(base_config(seed, arm=arm))
    return run, state["coordinator"]


def test_b11_rebalance_recovers_goodput(benchmark):
    static = run_static()
    check_big_run(static)

    rebalanced, coordinator = run_rebalanced()
    assert coordinator.done
    assert coordinator.moves_committed > 0
    check_big_run(rebalanced)  # incl. check_migration_atomicity

    # When did the last migration land?  Measure both runs' goodput over
    # the identical window from that instant to the end of arrivals.
    done_events = rebalanced.trace.events(kind="mig_done")
    rebalance_done = max(e.time for e in done_events)
    assert rebalance_done < END_OF_ARRIVALS * 0.7  # a real steady-state window
    static_tail = goodput_in(static, rebalance_done, END_OF_ARRIVALS)
    rebalanced_tail = goodput_in(rebalanced, rebalance_done, END_OF_ARRIVALS)

    # Load actually left the hot shard: shard 0's share of the traffic
    # submitted after the rebalance drops well below the static run's.
    static_hot = hot_share_after(static, rebalance_done)
    rebalanced_hot = hot_share_after(rebalanced, rebalance_done)
    assert rebalanced_hot < static_hot * 0.7

    # And the fixed workload as a whole completes sooner.
    static_makespan = makespan(static)
    rebalanced_makespan = makespan(rebalanced)
    assert rebalanced_makespan < static_makespan

    table = Table(
        f"B11 -- Zipf(s={ZIPF_S}) head keys packed on shard 0 "
        f"(range router, order_cost {ORDER_COST}, offered "
        f"{CLIENTS * RATE:.1f} req/unit): steady state after rebalance "
        f"(t in [{rebalance_done:.0f}, {END_OF_ARRIVALS:.0f}])",
        [
            "router",
            "goodput (req/unit)",
            "hot-shard share",
            "makespan",
            "moves",
            "redirects",
        ],
    )
    table.add_row("static", static_tail, static_hot, static_makespan, 0, 0)
    table.add_row(
        "rebalanced",
        rebalanced_tail,
        rebalanced_hot,
        rebalanced_makespan,
        coordinator.moves_committed,
        sum(client.redirects for client in rebalanced.clients),
    )

    # B11b: the same machinery under a coordinator crash -- the recovery
    # coordinator heals the stranded migration and atomicity holds.
    crash_run = run_coordinator_crash_scenario()

    lines = [
        table.render(),
        "",
        "B11b -- coordinator crash mid-migration: the key is stranded in "
        "the source's outbound escrow (owned by nobody, clients redirect "
        "and wait); a recovery coordinator adopting the journal completes "
        f"the move.  check_migration_atomicity passes; routing epoch "
        f"{crash_run.routing_table.epoch} after recovery.",
        "",
        "shape: with the Zipf head packed onto one shard, the static",
        "router caps aggregate goodput at roughly the hot pipeline's",
        "service rate; migrating the head keys across the cold shards'",
        "pipelines lifts post-rebalance goodput above the static run in",
        "the same time window, and every migration (crashed or not) is",
        "atomic: one owner per key, no state lost, conservation holds.",
    ]
    write_result("B11_shard_rebalance", "\n".join(lines))

    benchmark.pedantic(run_static, rounds=1, iterations=1)

    # The headline claim: goodput after rebalance beats the static
    # baseline over the identical window, with real margin.
    assert rebalanced_tail > static_tail * 1.15


def run_coordinator_crash_scenario():
    """Crash the coordinator mid-move, recover, verify atomicity."""
    state = {}

    def arm(run):
        coordinator = attach_rebalancer(run)
        state["coordinator"] = coordinator
        key = run.key_universe[0]
        src = run.routing_table.shard_of(key)
        dst = (src + 1) % run.config.n_shards
        run.sim.schedule_at(30.0, lambda: coordinator.migrate(key, dst))
        run.sim.schedule_at(
            32.5, lambda: run.network.crash(coordinator.client.pid)
        )

        def probe_stranded():
            # Safety holds even while the key is ownerless (the checker
            # in non-quiescent mode accepts the in-flight state).
            checkers.check_migration_atomicity(
                run.trace,
                run.shards,
                run.routing_table,
                run.key_universe,
                quiescent=False,
            )

        run.sim.schedule_at(60.0, probe_stranded)

        def recover():
            recovery = attach_rebalancer(run, pid="rb2")
            recovery.resume(coordinator.journal)
            state["recovery"] = recovery

        run.sim.schedule_at(90.0, recover)

    run = run_sharded_scenario(
        ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=25,
            machine="kv",
            workload="zipf",
            zipf_s=1.5,
            seed=17,
            arm=arm,
            horizon=50_000.0,
            grace=100.0,
        )
    )
    assert run.all_done()
    assert state["recovery"].done
    assert state["recovery"].journal[-1].phase == "done"
    run.check_all(strict=False)  # incl. migration atomicity, post-recovery
    return run
