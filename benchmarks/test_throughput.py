"""Experiment B5: throughput and latency under open-loop load.

Poisson arrivals at increasing rates drive the OAR group; Task 1a
batching (the sequencer orders *all* pending requests in one message)
keeps the ordering cost per request sub-linear, so the protocol sustains
offered load with near-flat latency until the batching interval
saturates.
"""

import pytest

from repro.analysis.stats import summarize
from repro.core.server import OARConfig
from repro.harness import ScenarioConfig, Table, run_scenario, write_result

pytestmark = pytest.mark.bench


RATES = [0.1, 0.5, 1.0, 2.0]
REQUESTS = 60


def run_at_rate(rate: float, batch_interval: float = 0.0, seed: int = 0):
    return run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=REQUESTS // 2,
            driver="open",
            open_rate=rate,
            oar=OARConfig(batch_interval=batch_interval),
            grace=100.0,
            horizon=10_000.0,
            seed=seed,
        )
    )


def measurements(run):
    adoption_times = [e.time for e in run.trace.events(kind="adopt")]
    span = max(adoption_times) - min(
        e.time for e in run.trace.events(kind="submit")
    )
    throughput = len(adoption_times) / span if span > 0 else float("inf")
    return summarize(run.latencies()), throughput


@pytest.mark.parametrize("rate", [0.5, 2.0])
def test_open_loop_sustains_load(benchmark, rate):
    run = benchmark.pedantic(run_at_rate, args=(rate,), rounds=2, iterations=1)
    assert run.all_done()
    run.check_all()


def test_b5_report(benchmark):
    rows = []
    for rate in RATES:
        run = run_at_rate(rate)
        assert run.all_done()
        stats, throughput = measurements(run)
        orders = run.trace.events(kind="seq_order")
        avg_batch = (
            sum(len(o["rids"]) for o in orders) / len(orders) if orders else 0.0
        )
        rows.append((rate, stats.mean, stats.p95, throughput, avg_batch))
    benchmark.pedantic(run_at_rate, args=(RATES[0],), rounds=1, iterations=1)

    table = Table(
        "B5 -- OAR under open-loop Poisson load (2 clients, 60 requests)",
        [
            "offered rate (req/unit)",
            "mean latency",
            "p95 latency",
            "goodput (req/unit)",
            "avg batch size",
        ],
    )
    for row in rows:
        table.add_row(*row)
    lines = [
        table.render(),
        "",
        "shape: goodput tracks the offered rate; latency stays within a",
        "few message delays of the 3-phase floor because the sequencer",
        "batches every pending request into one ordering message.",
    ]
    write_result("B5_throughput", "\n".join(lines))

    latencies = [mean for _r, mean, _p, _tp, _b in rows]
    goodputs = [tp for _r, _m, _p, tp, _b in rows]
    # Latency stays within 2x of the fast-path floor across a 20x load
    # increase, and goodput grows with the offered rate.
    assert max(latencies) <= 6.0
    assert goodputs[0] < goodputs[-1]
