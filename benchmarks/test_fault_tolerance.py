"""Experiment B15: robustness under link faults beyond crash-stop.

The paper's system model (Section 3) assumes reliable FIFO channels;
every benchmark so far ran on them.  B15 breaks the assumption with the
composable fault plane (:mod:`repro.sim.faultplane`) and measures what
the hardening costs:

* **goodput and retransmit overhead vs. link fault rate** -- a sweep of
  independent per-message drop/duplication probabilities applied to
  *every* link, with client retransmission and the sequencer's
  anti-entropy ``sync_interval`` repairing the losses.  Every cell must
  converge (all requests adopted) and pass the full checker bundle,
  including ``check_fault_plane_accounting``;
* **corruption is detected, never applied** -- a corruption cell where
  the wire checksum drops every mangled payload before the protocol
  sees it (``corrupt_dropped == corrupted``, replicas converge);
* **equivocation is detected** -- a scripted Byzantine sequencer sends
  one replica a different order than the rest; the clients' order
  certificates raise the alarm deterministically.
"""

import pytest

from repro.core.client import OARClient
from repro.core.messages import SeqOrder
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import ScriptedFailureDetector
from repro.harness import Table, write_result
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.sim.faultplane import install_uniform_faults
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.statemachine import CounterMachine

pytestmark = pytest.mark.bench

#: (drop, duplicate) per-message probabilities, uniform on every link.
FAULT_CELLS = [
    (0.00, 0.00),
    (0.02, 0.02),
    (0.05, 0.05),
    (0.08, 0.04),
]
CLIENTS = 3
REQUESTS = 15  #: per client
RETRY_INTERVAL = 25.0
SYNC_INTERVAL = 20.0


def run_lossy(drop: float, duplicate: float, seed: int = 0):
    """One convergence cell: uniform drop+dup, retransmit + anti-entropy.

    Scripted (silent) failure detectors keep the run in phase 1: the
    Cnsv-order consensus assumes reliable channels, so loss resilience
    is the optimistic path's job -- retransmission for requests and
    replies, the sync tick for ordering messages.
    """
    faults = None
    if drop > 0.0 or duplicate > 0.0:
        faults = lambda net: install_uniform_faults(
            net, drop=drop, duplicate=duplicate
        )
    run = run_scenario(
        ScenarioConfig(
            protocol="oar",
            machine="kv",
            n_servers=3,
            n_clients=CLIENTS,
            requests_per_client=REQUESTS,
            fd_kind="scripted",
            retry_interval=RETRY_INTERVAL,
            oar=OARConfig(sync_interval=SYNC_INTERVAL),
            faults=faults,
            grace=100.0,
            horizon=50_000.0,
            seed=seed,
        )
    )
    assert run.all_done(), f"no convergence at drop={drop} dup={duplicate}"
    run.check_all()
    return run


def goodput(run) -> float:
    adopts = [event.time for event in run.trace.events(kind="adopt")]
    start = min(event.time for event in run.trace.events(kind="submit"))
    span = max(adopts) - start
    return len(adopts) / span if span > 0 else 0.0


class TestB15FaultTolerance:
    def test_goodput_and_overhead_vs_fault_rate(self):
        table = Table(
            "B15  goodput + retransmit overhead vs link drop/dup rate -- "
            f"retry={RETRY_INTERVAL}, sync={SYNC_INTERVAL}, every link lossy",
            [
                "drop", "dup", "adopted", "goodput",
                "retransmits", "dropped", "duplicated",
            ],
        )
        results = {}
        for drop, duplicate in FAULT_CELLS:
            run = run_lossy(drop, duplicate)
            adopted = len(run.adopted())
            assert adopted == CLIENTS * REQUESTS
            retransmits = sum(c.retransmissions for c in run.clients)
            stats = run.network.stats()
            table.add_row(
                drop, duplicate, adopted, round(goodput(run), 4),
                retransmits, stats.get("dropped", 0),
                stats.get("duplicated", 0),
            )
            results[(drop, duplicate)] = (goodput(run), retransmits)
        write_result("B15_fault_tolerance", table.render())

        # The fault-free cell needs no repair at all.
        assert results[(0.0, 0.0)][1] == 0
        # The acceptance cell (>= 5% drop + dup on every link) converged
        # (asserted in run_lossy) -- and the faults genuinely fired.
        heavy = run_lossy(0.05, 0.05, seed=1)
        assert heavy.network.fault_plane.dropped > 0
        assert heavy.network.fault_plane.duplicated > 0

    def test_corruption_detected_and_dropped(self):
        run = run_scenario(
            ScenarioConfig(
                protocol="oar",
                machine="kv",
                n_servers=3,
                n_clients=CLIENTS,
                requests_per_client=REQUESTS,
                fd_kind="scripted",
                retry_interval=RETRY_INTERVAL,
                oar=OARConfig(sync_interval=SYNC_INTERVAL),
                faults=lambda net: install_uniform_faults(net, corrupt=0.04),
                grace=100.0,
                horizon=50_000.0,
                seed=2,
            )
        )
        assert run.all_done(), "no convergence under corruption"
        run.check_all()
        plane = run.network.fault_plane
        assert plane.corrupted > 0
        # Detected-and-dropped, never applied: every corrupted payload
        # was stopped at the checksum gate.
        assert run.network.corrupt_dropped == plane.corrupted

    def test_equivocating_sequencer_raises_alarm(self):
        sim = Simulator(seed=5)
        network = SimNetwork(sim, latency=ConstantLatency(1.0))
        group = ["p1", "p2", "p3"]
        for pid in group:
            network.add_process(
                OARServer(
                    pid, group, CounterMachine(), ScriptedFailureDetector(),
                    OARConfig(batch_interval=5.0),
                )
            )
        clients = [OARClient(f"c{i + 1}", group) for i in range(2)]
        for client in clients:
            network.add_process(client)
        network.start_all()
        plane = network.ensure_fault_plane()
        swapped = []

        def equivocate(src, dst, payload):
            if swapped or src != "p1" or dst != "p3":
                return None
            if isinstance(payload, SeqOrder) and len(payload.rids) >= 2:
                swapped.append(True)
                rids = list(payload.rids)
                rids[0], rids[1] = rids[1], rids[0]
                return SeqOrder(payload.epoch, tuple(rids), payload.start)
            return None

        plane.add_rewrite(equivocate)
        sim.schedule_at(0.0, lambda: clients[0].submit(("incr",)))
        sim.schedule_at(0.0, lambda: clients[1].submit(("incr",)))
        sim.run(until=100.0, max_events=200_000)
        assert swapped
        assert sum(c.equivocations_detected for c in clients) > 0
        assert network.trace.events(kind="equivocation_alarm")
