"""Experiment B10: aggregate goodput vs. shard count.

The single-sequencer design (benchmark B5) funnels every request through
one ordering pipeline; with a per-request sequencer service time
(``OARConfig.order_cost``) that pipeline saturates at ``1/order_cost``
requests per time unit no matter how many replicas serve reads.  The
sharded cluster runs one pipeline per shard, so an overloaded uniform
single-key workload should see aggregate goodput grow monotonically with
the shard count -- while every per-shard paper property and the
cross-shard atomicity invariant keep holding.  A second table shows the
flip side: a heavily skewed (Zipfian) workload concentrates on the hot
shard and caps the speed-up, and a crash-failover run demonstrates that
scaling does not cost fault tolerance.
"""

import pytest

from repro.core.server import OARConfig
from repro.faults import FaultSchedule
from repro.harness import (
    ShardedScenarioConfig,
    Table,
    run_sharded_scenario,
    write_result,
)

pytestmark = pytest.mark.bench

SHARD_COUNTS = [1, 2, 4]
ORDER_COST = 0.5  #: sequencer service time => 2 req/unit per pipeline
CLIENTS = 8
REQUESTS = 40  #: per client; 320 total
RATE = 1.5  #: per client; 12 req/unit offered >> 8 req/unit 4-shard capacity


def run_uniform(n_shards: int, seed: int = 0):
    return run_sharded_scenario(
        ShardedScenarioConfig(
            n_shards=n_shards,
            n_servers=3,
            n_clients=CLIENTS,
            requests_per_client=REQUESTS,
            machine="kv",
            workload="uniform",
            n_keys=64,
            driver="open",
            open_rate=RATE,
            oar=OARConfig(order_cost=ORDER_COST),
            grace=200.0,
            horizon=50_000.0,
            seed=seed,
        )
    )


def goodput(run) -> float:
    adopts = [e.time for e in run.trace.events(kind="adopt")]
    submits = [e.time for e in run.trace.events(kind="submit")]
    span = max(adopts) - min(submits)
    return len(run.adopted()) / span if span > 0 else float("inf")


def test_sharding_scales_goodput(benchmark):
    run = benchmark.pedantic(run_uniform, args=(2,), rounds=2, iterations=1)
    assert run.all_done()
    run.check_all()


def test_b10_report(benchmark):
    rows = []
    for n_shards in SHARD_COUNTS:
        run = run_uniform(n_shards)
        assert run.all_done()
        run.check_all()
        loads = [len(run.routed_to(shard)) for shard in range(n_shards)]
        rows.append((n_shards, goodput(run), max(loads), min(loads)))
    benchmark.pedantic(run_uniform, args=(1,), rounds=1, iterations=1)

    table = Table(
        "B10a -- Aggregate goodput vs shard count "
        f"(uniform keys, offered {CLIENTS * RATE:.0f} req/unit, "
        f"order_cost {ORDER_COST})",
        ["shards", "goodput (req/unit)", "hottest shard (reqs)", "coldest shard (reqs)"],
    )
    for row in rows:
        table.add_row(*row)

    # B10b: skew caps the speed-up -- the hot shard's pipeline is still
    # a single sequencer.
    skew_rows = []
    for n_shards in (1, 4):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=n_shards,
                n_servers=3,
                n_clients=CLIENTS,
                requests_per_client=REQUESTS // 2,
                machine="kv",
                workload="zipf",
                zipf_s=1.5,
                n_keys=64,
                driver="open",
                open_rate=RATE,
                oar=OARConfig(order_cost=ORDER_COST),
                grace=200.0,
                horizon=50_000.0,
                seed=1,
            )
        )
        assert run.all_done()
        run.check_all()
        skew_rows.append((n_shards, goodput(run)))

    skew_table = Table(
        "B10b -- Zipfian skew (s=1.5): the hot shard limits scaling",
        ["shards", "goodput (req/unit)"],
    )
    for row in skew_rows:
        skew_table.add_row(*row)

    # B10c: crash-failover under the sharded cross-shard bank workload --
    # scaling keeps the paper's fault tolerance and 2PC atomicity.
    failover = run_sharded_scenario(
        ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=12,
            machine="bank",
            workload="cross",
            cross_ratio=0.5,
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            fault_schedule=FaultSchedule().crash(10.0, "s0.p1"),
            grace=300.0,
            seed=3,
        )
    )
    assert failover.all_done()
    failover.check_all(strict=False)  # includes cross-shard atomicity
    committed = sum(c.cross_shard_committed for c in failover.clients)
    aborted = sum(c.cross_shard_aborted for c in failover.clients)

    lines = [
        table.render(),
        "",
        skew_table.render(),
        "",
        f"B10c -- crash-failover (shard 0 sequencer dies at t=10): all "
        f"{committed + aborted} cross-shard transactions atomic "
        f"({committed} committed, {aborted} aborted); per-shard checkers "
        f"and the conservation invariant pass.",
        "",
        "shape: with one ordering pipeline per shard, goodput on the",
        "uniform workload grows monotonically with the shard count (the",
        "1-shard row is the B5 single-sequencer baseline); Zipfian skew",
        "concentrates load on the hot shard and caps the speed-up.",
    ]
    write_result("B10_sharded_throughput", "\n".join(lines))

    goodputs = [g for _n, g, _h, _c in rows]
    # Monotone scaling 1 -> 2 -> 4 shards, with real margin end-to-end.
    assert goodputs[0] < goodputs[1] < goodputs[2]
    assert goodputs[2] > 2.0 * goodputs[0]
    # Skew must not scale anywhere near as well as uniform.
    uniform_speedup = goodputs[2] / goodputs[0]
    skew_speedup = skew_rows[1][1] / skew_rows[0][1]
    assert skew_speedup < uniform_speedup
