"""Docs smoke checker: the documentation must actually work.

Scans ``README.md`` and every markdown file under ``docs/`` and fails
(nonzero exit) unless:

* every fenced ```python code block executes cleanly in a fresh
  subprocess (repo root as cwd, ``src/`` on ``PYTHONPATH``), and
* every intra-repo markdown link ``[text](target)`` resolves to an
  existing file or directory.

External links (http/https/mailto) and pure-anchor links are skipped;
a ``#fragment`` suffix on a repo path is stripped before resolving.
Non-python fences (sh, text, ascii diagrams) are never executed.

Run from the repo root::

    PYTHONPATH=src python tools/docs_smoke.py
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FENCE_RE = re.compile(r"^```(\w*)\s*$")
# [text](target) -- skip images' extra ! is harmless (same syntax).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SNIPPET_TIMEOUT = 120  # seconds per snippet


def doc_files():
    files = [os.path.join(REPO, "README.md")]
    docs = os.path.join(REPO, "docs")
    for dirpath, _dirnames, filenames in os.walk(docs):
        for name in sorted(filenames):
            if name.endswith(".md"):
                files.append(os.path.join(dirpath, name))
    return files


def python_snippets(path):
    """Yield (start_line, source) for every fenced python block."""
    snippets = []
    lang, start, lines = None, 0, []
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.rstrip("\n")
            match = FENCE_RE.match(line.strip())
            if match is None:
                if lang is not None:
                    lines.append(line)
                continue
            if lang is None:  # opening fence
                lang, start, lines = match.group(1).lower(), lineno, []
            else:  # closing fence
                if lang == "python":
                    snippets.append((start, "\n".join(lines) + "\n"))
                lang = None
    return snippets


def run_snippet(source):
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-"],
        input=source,
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
        timeout=SNIPPET_TIMEOUT,
    )


def check_links(path):
    """Return a list of (lineno, target) for broken intra-repo links."""
    broken = []
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                target = target.split("#", 1)[0]
                if not target:  # pure anchor
                    continue
                resolved = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    failures = 0
    snippets_run = 0
    links_checked = 0
    for path in doc_files():
        rel = os.path.relpath(path, REPO)
        if not os.path.exists(path):
            print(f"FAIL {rel}: file missing")
            failures += 1
            continue
        for lineno, target in check_links(path):
            print(f"FAIL {rel}:{lineno}: broken link -> {target}")
            failures += 1
        links_checked += 1
        for start, source in python_snippets(path):
            snippets_run += 1
            try:
                result = run_snippet(source)
            except subprocess.TimeoutExpired:
                print(f"FAIL {rel}:{start}: snippet timed out")
                failures += 1
                continue
            if result.returncode != 0:
                print(f"FAIL {rel}:{start}: snippet exited "
                      f"{result.returncode}\n{result.stderr.strip()}")
                failures += 1
            else:
                print(f"ok   {rel}:{start}: snippet ran")
    print(f"docs-smoke: {snippets_run} snippet(s) executed, "
          f"{links_checked} file(s) link-checked, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
