#!/usr/bin/env python
"""A transactional bank replicated with OAR, surviving a sequencer crash.

This is the deployment scenario of the paper's conclusion (Section 6):
operations are transactions whose effects can be rolled back, so
optimistic processing starts immediately on Opt-delivery and an
Opt-undeliver is a rollback.  The run crashes the sequencer mid-workload
and shows that:

* every transfer/withdrawal settles in the same order everywhere,
* total money is conserved across crash, recovery, and (potential) undo,
* clients only ever see balances consistent with the final order.

Run:  python examples/replicated_bank.py
"""

from repro import ScenarioConfig, run_scenario
from repro.analysis.stats import adoption_breakdown, summarize
from repro.faults import FaultSchedule


def main() -> None:
    config = ScenarioConfig(
        protocol="oar",
        n_servers=5,
        n_clients=3,
        requests_per_client=12,
        machine="bank",
        fd_interval=2.0,
        fd_timeout=6.0,
        fault_schedule=FaultSchedule().crash(12.0, "p1"),
        grace=200.0,
        seed=7,
    )
    print("Running: 5 OAR replicas, 3 clients, 36 bank operations,")
    print("sequencer p1 crashes at t=12...\n")
    run = run_scenario(config)

    assert run.all_done(), "the scenario did not quiesce"
    run.check_all()

    breakdown = adoption_breakdown(run.trace)
    stats = summarize(run.latencies())
    print(f"adoptions       : {len(run.adopted())} "
          f"(optimistic={breakdown['optimistic']}, "
          f"conservative={breakdown['conservative']})")
    print(f"latency         : {stats.row()}")
    print(f"phase-2 epochs  : "
          f"{sorted({e['epoch'] for e in run.trace.events(kind='phase2_start')})}")
    print(f"opt-undeliveries: {len(run.trace.events(kind='opt_undeliver'))}")

    print("\nsurviving replica ledgers (identical by Proposition 5):")
    for server in run.correct_servers:
        balances = dict(server.machine.fingerprint())
        total = server.machine.total_balance()
        print(f"  {server.pid}: {balances}  (total={total})")

    totals = {s.machine.total_balance() for s in run.correct_servers}
    assert len(totals) == 1, "replicas disagree on total balance"
    print("\nmoney conserved and replicas identical -- the transactional")
    print("save-point discipline of Section 6 in action.")


if __name__ == "__main__":
    main()
