#!/usr/bin/env python
"""A bank sharded across independent OAR groups, with cross-shard transfers.

Accounts are partitioned over two replication groups by a deterministic
hash router; each group runs the full OAR protocol with its own
sequencer.  Transfers between accounts on different shards run the
client-coordinated escrow commit: a ``tx_prepare`` debit on the source
shard, a ``tx_prepare`` credit on the destination shard, then
``tx_commit`` / ``tx_abort`` once both prepares are adopted -- every
branch an ordinary totally-ordered request.

Mid-run, shard 0's sequencer crashes.  That shard fails over (suspicion
-> PhaseII -> Cnsv-order -> sequencer rotation) while shard 1 keeps
serving undisturbed, and every in-flight cross-shard transfer still
commits or aborts on *both* sides: summed over shards, balances plus
escrow equal the initial money supply.

Run:  python examples/sharded_bank.py
"""

from repro import ShardedScenarioConfig, run_sharded_scenario
from repro.faults import FaultSchedule


def main() -> None:
    config = ShardedScenarioConfig(
        n_shards=2,
        n_servers=3,
        n_clients=3,
        requests_per_client=12,
        machine="bank",
        workload="cross",
        cross_ratio=0.5,
        accounts_per_shard=3,
        fd_interval=1.0,
        fd_timeout=8.0,
        retry_interval=30.0,
        fault_schedule=FaultSchedule().crash(10.0, "s0.p1"),
        grace=300.0,
        seed=7,
    )
    print("Running: 2 shards x 3 OAR replicas, 3 clients, 36 bank ops")
    print("(half the transfers cross-shard); sequencer s0.p1 crashes at t=10...\n")
    run = run_sharded_scenario(config)

    assert run.all_done(), "the scenario did not quiesce"
    run.check_all(strict=False)  # per-shard properties + cross-shard atomicity

    started = sum(c.cross_shard_started for c in run.clients)
    committed = sum(c.cross_shard_committed for c in run.clients)
    aborted = sum(c.cross_shard_aborted for c in run.clients)
    print(f"adoptions            : {len(run.adopted())}")
    print(f"cross-shard transfers: {started} "
          f"(committed={committed}, aborted={aborted})")
    for shard in range(config.n_shards):
        servers = run.correct_servers(shard)
        epochs = sorted({server.epoch for server in servers})
        print(f"shard {shard}: placement={run.router.placement(run.key_universe)[shard]}"
              f" epochs={epochs}")

    print("\nper-shard ledgers (survivors; identical within each shard):")
    grand_total = 0
    for shard in range(config.n_shards):
        server = run.correct_servers(shard)[0]
        total = server.machine.conserved_total()
        grand_total += total
        print(f"  shard {shard} via {server.pid}: "
              f"{dict(sorted(server.machine.state()['accounts'].items()))} "
              f"(balances+escrow={total})")

    print(f"\nglobal money supply: {grand_total} "
          f"(initial {run.initial_total}) -- conserved across the crash,")
    print("the fail-over, and every two-phase cross-shard commit.")
    assert grand_total == run.initial_total


if __name__ == "__main__":
    main()
