#!/usr/bin/env python
"""Redraw the paper's Figures 2, 3 and 4 as ASCII space-time diagrams.

Each scenario is executed on the deterministic simulator with the exact
arrival orders, crash points and suspicions of the corresponding figure;
the diagram below each run is generated from the trace -- compare with
the diamonds of the original paper.

Run:  python examples/spacetime_figures.py
"""

from repro.analysis.timeline import describe_run, render_timeline
from repro.harness.figures import run_figure_2, run_figure_3, run_figure_4


def show(title: str, run, pids, end: float) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
    print(
        render_timeline(
            run.trace,
            pids,
            width=68,
            start=0.0,
            end=end,
        )
    )
    print(f"\nsynopsis: {describe_run(run.trace, pids)}")


def main() -> None:
    fig2 = run_figure_2()
    show(
        "Figure 2 -- OAR, no failure nor suspicion "
        "(batches {m1;m2} then {m3;m4;m5})",
        fig2,
        ["p1", "p2", "p3"],
        end=10.0,
    )

    fig3 = run_figure_3()
    show(
        "Figure 3 -- sequencer crash, no Opt-undelivery "
        "(majority had Opt-delivered)",
        fig3,
        ["p1", "p2", "p3"],
        end=25.0,
    )

    fig4 = run_figure_4()
    show(
        "Figure 4 -- sequencer crash with Opt-undelivery at p2 "
        "(minority optimism undone)",
        fig4,
        ["p1", "p2", "p3", "p4"],
        end=60.0,
    )

    print(
        "\nreading guide: 'o' diamonds are optimistic deliveries, 'A' the\n"
        "conservative ones, 'x' the rollbacks -- Figure 4 shows the two\n"
        "'x' markers on p2's lane right after its PhaseII ('P'), exactly\n"
        "like the grey diamonds in the paper."
    )


if __name__ == "__main__":
    main()
