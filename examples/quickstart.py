#!/usr/bin/env python
"""Quickstart: a replicated counter on the OAR protocol.

Builds three OAR replicas and two clients on the deterministic
simulator, runs a small workload, and verifies every guarantee the paper
proves (Propositions 1-7 plus the Cnsv-order specification).

Run:  python examples/quickstart.py
"""

from repro import ScenarioConfig, run_scenario
from repro.analysis.stats import summarize


def main() -> None:
    config = ScenarioConfig(
        protocol="oar",
        n_servers=3,
        n_clients=2,
        requests_per_client=15,
        machine="counter",
        seed=42,
    )
    print("Running: 3 OAR replicas, 2 clients, 30 increments...\n")
    run = run_scenario(config)

    assert run.all_done(), "the scenario did not quiesce"
    run.check_all()  # raises CheckFailure on any violated paper property

    stats = summarize(run.latencies())
    print(f"adopted replies : {len(run.adopted())}")
    print(f"latency         : {stats.row()}")
    print("                  (time unit = one one-way message delay;")
    print("                   3.0 = request + ordering + reply)")

    print("\nreplica state after the run:")
    for server in run.servers:
        print(
            f"  {server.pid}: epoch={server.epoch} "
            f"delivered={len(server.current_order)} "
            f"counter={server.machine.fingerprint()}"
        )

    print("\nall paper guarantees verified:")
    print("  - Cnsv-order specification (Section 5.4)")
    print("  - majority guarantee (Section 4)")
    print("  - at-most-once / at-least-once request handling (Prop. 2-4)")
    print("  - total order of replies (Prop. 5)")
    print("  - external consistency of adopted replies (Prop. 7)")


if __name__ == "__main__":
    main()
