#!/usr/bin/env python
"""Run the OAR protocol as a real asyncio program over localhost TCP.

The exact same protocol classes that power the deterministic simulator
are hosted on sockets: three replica processes, one client, pickled
length-prefixed frames, a live heartbeat failure detector.  The script
measures wall-clock latency, then crashes the sequencer and shows the
fail-over happening in real time.

Run:  python examples/asyncio_cluster.py
"""

import asyncio

from repro.analysis import checkers
from repro.analysis.stats import summarize
from repro.core.client import OARClient
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import HeartbeatFailureDetector
from repro.runtime import TcpCluster
from repro.statemachine import KVStoreMachine

REQUESTS_BEFORE_CRASH = 10
REQUESTS_TOTAL = 20


async def scenario() -> None:
    cluster = TcpCluster()
    group = ["p1", "p2", "p3"]
    servers = []
    for pid in group:
        server = OARServer(
            pid,
            group,
            KVStoreMachine(),
            lambda host: HeartbeatFailureDetector(
                host, group, interval=0.05, timeout=0.3
            ),
            OARConfig(),
        )
        servers.append(server)
        cluster.add_process(server)
    client = OARClient("c1", group)
    cluster.add_process(client)

    submitted = {"n": 0}

    def submit_next(_adopted=None) -> None:
        if submitted["n"] < REQUESTS_TOTAL:
            key = f"k{submitted['n'] % 4}"
            client.submit(("set", key, submitted["n"]))
            submitted["n"] += 1

    client.on_adopt = submit_next

    print("starting 3 replicas on localhost TCP sockets...")
    await cluster.start()
    submit_next()

    await cluster.run_until(
        lambda: len(client.adopted) >= REQUESTS_BEFORE_CRASH, timeout=15
    )
    before = summarize(
        [a.latency * 1000 for a in client.adopted.values()]
    )
    print(f"  {REQUESTS_BEFORE_CRASH} requests adopted; latency {before.row()} (ms)")

    print("\ncrashing the sequencer p1 ...")
    cluster.crash("p1")
    done = await cluster.run_until(
        lambda: len(client.adopted) >= REQUESTS_TOTAL, timeout=20
    )
    await cluster.shutdown()
    assert done, "fail-over did not complete"

    survivors = [s for s in servers if not s.crashed]
    checkers.check_total_order(survivors)
    checkers.check_replica_convergence(survivors)
    checkers.check_external_consistency(cluster.trace, strict=False)

    after = summarize([a.latency * 1000 for a in client.adopted.values()])
    print(f"  all {REQUESTS_TOTAL} requests adopted; latency {after.row()} (ms)")
    print(f"  survivors now in epoch {survivors[0].epoch}, "
          f"sequencer {survivors[0].current_sequencer}")
    print("\nfinal replicated key-value store (identical on every survivor):")
    for key, value in survivors[0].machine.fingerprint():
        print(f"  {key} = {value}")
    print("\ntotal order, convergence and external consistency verified.")


if __name__ == "__main__":
    asyncio.run(scenario())
