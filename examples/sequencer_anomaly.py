#!/usr/bin/env python
"""The paper's motivating example: Figure 1(b), then the OAR fix.

Replays the exact inconsistent run of the sequencer-based Atomic
Broadcast -- a replicated stack [y], a pop racing a push(x), the
sequencer replying "pop -> y" and dying before its ordering escapes --
and then the *same* scenario under OAR, where the weighted-quorum client
rule makes the stale reply unadoptable.

Run:  python examples/sequencer_anomaly.py
"""

from repro.analysis import checkers
from repro.harness.figures import run_figure_1b, run_figure_1b_with_oar


def describe(run, protocol: str) -> int:
    print(f"--- {protocol} ---")
    pop = run.adopted().get("c2-0")
    print(f"client adopted   : pop -> {pop.value.value!r} (position {pop.position})")
    for server in run.servers:
        if server.crashed:
            print(f"  {server.pid}: CRASHED mid-run")
            continue
        if hasattr(server, "delivered_order"):
            order = server.delivered_order
        else:
            order = tuple(server.current_order.items)
        stack = server.machine.fingerprint()
        print(f"  {server.pid}: delivered {order}  stack={list(stack)}")
    inconsistencies = checkers.count_baseline_inconsistencies(
        run.trace, run.correct_servers
    )
    print(f"client-visible inconsistencies: {inconsistencies}\n")
    return inconsistencies


def main() -> None:
    print(__doc__)

    print("Scenario: stack starts as [y]; c1 sends push(x), c2 sends pop.")
    print("The sequencer p1 orders (pop; push), delivers pop -> y, replies,")
    print("and crashes before any replica hears the ordering.\n")

    baseline = run_figure_1b()
    bad = describe(baseline, "sequencer-based Atomic Broadcast (Isis-style)")

    oar = run_figure_1b_with_oar()
    good = describe(oar, "Optimistic Active Replication (same crash)")

    print("What happened:")
    print("  * baseline: the client kept the dead sequencer's 'y' while the")
    print("    surviving group settled on (push; pop), whose pop returns 'x'.")
    print("  * OAR: the doomed reply carried weight {p1} = 1 < majority 2, so")
    print("    the client waited; phase 2 agreed on the order and the client")
    print("    adopted the consistent conservative reply.")
    assert bad == 1 and good == 0


if __name__ == "__main__":
    main()
