#!/usr/bin/env python
"""Watch an OAR fail-over, event by event.

Crashes the sequencer mid-run and prints an annotated timeline of the
protocol's reaction: the suspicion, the PhaseII broadcast, the consensus,
the A-deliveries, the epoch change, and the return to the optimistic fast
path under the new sequencer.

Run:  python examples/failover_timeline.py
"""

from repro import ScenarioConfig, run_scenario
from repro.faults import FaultSchedule

INTERESTING = {
    "crash": "CRASH",
    "phase2_request": "suspicion -> R-broadcast PhaseII",
    "phase2_start": "enter conservative phase",
    "cnsv_propose": "propose (O_delivered, O_notdelivered)",
    "consensus_decide": "consensus decides",
    "opt_undeliver": "OPT-UNDELIVER (rollback)",
    "a_deliver": "A-deliver",
    "epoch_start": "new epoch",
}


def main() -> None:
    config = ScenarioConfig(
        protocol="oar",
        n_servers=3,
        n_clients=2,
        requests_per_client=8,
        fd_interval=1.0,
        fd_timeout=4.0,
        fault_schedule=FaultSchedule().crash(9.0, "p1"),
        grace=150.0,
        seed=3,
    )
    print("Running: 3 replicas, sequencer p1 crashes at t=9.0 ...\n")
    run = run_scenario(config)
    assert run.all_done()
    run.check_all()

    print(f"{'time':>8}  {'process':<8}  event")
    print("-" * 64)
    shown = 0
    for event in run.trace:
        label = INTERESTING.get(event.kind)
        if label is None:
            continue
        detail = ""
        if event.kind == "a_deliver":
            detail = f" {event['rid']} at position {event['position']}"
        elif event.kind == "epoch_start" and event["epoch"] > 0:
            detail = f" k={event['epoch']}, sequencer={event['sequencer']}"
        elif event.kind == "epoch_start":
            continue  # skip the k=0 boot events
        elif event.kind == "consensus_decide":
            detail = f" after {event['rounds']} round(s)"
        elif event.kind == "phase2_start":
            detail = f" (k={event['epoch']}, reason={event['reason']})"
        elif event.kind == "opt_undeliver":
            detail = f" {event['rid']}"
        print(f"{event.time:8.2f}  {event.pid:<8}  {label}{detail}")
        shown += 1

    adoptions = run.trace.events(kind="adopt")
    optimistic_after = [
        a for a in adoptions if a.time > 9.0 and not a["conservative"]
    ]
    print("-" * 64)
    print(f"\n{shown} protocol events shown; {len(adoptions)} requests adopted.")
    print(
        f"{len(optimistic_after)} adoptions after the crash were optimistic: "
        "the fast path is back under the new sequencer."
    )


if __name__ == "__main__":
    main()
