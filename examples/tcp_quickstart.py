#!/usr/bin/env python
"""Quickstart: a sharded OAR cluster over real TCP sockets.

The simulator is the correctness oracle; this is the same protocol code
on the real backend -- every replica, sequencer, and client behind a
localhost TCP socket, frames on the compact binary wire codec, sends
coalesced per connection.  The run returns the same ``ShardedRun`` view
the simulator produces, so the full paper-property checker bundle
applies to a wall-clock run unchanged.

Run:  python examples/tcp_quickstart.py
"""

from repro.runtime import RuntimeScenarioConfig, run_runtime_scenario
from repro.sharding.cluster import ShardedScenarioConfig


def main() -> None:
    config = RuntimeScenarioConfig(
        scenario=ShardedScenarioConfig(
            seed=42,
            n_shards=2,
            n_servers=3,
            n_clients=4,
            requests_per_client=15,
            machine="kv",
            workload="uniform",
            n_keys=32,
        ),
        backend="tcp",  # or "asyncio" for in-process queues
        codec="binary",  # or "pickle" for the seed wire format
    )
    print("Running: 2 shards x 3 replicas + 4 clients over TCP sockets...\n")
    run = run_runtime_scenario(config)

    assert run.completed, "the scenario did not quiesce"
    run.check_all()  # the same checkers that gate every simulator run

    stats = run.transport_stats()
    print(f"adopted replies : {len(run.adopted())}")
    print(f"throughput      : {run.ops_per_sec():,.0f} ops/sec wall-clock")
    print(
        f"transport       : {stats['frames_sent']:,} frames in "
        f"{stats['flushes']:,} socket writes "
        f"({stats['bytes_sent'] / 1024:,.0f} KiB, "
        f"{stats['encode_cache_hits']:,} fan-out encode-cache hits)"
    )

    print("\nall paper guarantees verified over real sockets:")
    print("  - per-shard total order and replica convergence")
    print("  - read consistency (replica-local reads)")
    print("  - cross-shard atomicity (2PC)")
    print("  - admission and fault-plane accounting")


if __name__ == "__main__":
    main()
