#!/usr/bin/env python
"""Compare all four replication protocols on one workload.

Runs the same closed-loop counter workload over:

* OAR (this paper),
* sequencer-based Atomic Broadcast (Isis-style, the unsafe baseline),
* conservative Atomic Broadcast by reduction to consensus [CT96],
* passive (primary-backup) replication,

first failure-free, then with a crash of the lead replica, and prints the
latency / consistency scoreboard the paper's introduction describes.

Run:  python examples/protocol_comparison.py
"""

from repro import ScenarioConfig, run_scenario
from repro.analysis import checkers
from repro.analysis.stats import summarize
from repro.faults import FaultSchedule
from repro.harness.tables import Table

PROTOCOLS = ["oar", "sequencer", "ct", "passive"]
LABELS = {
    "oar": "OAR (this paper)",
    "sequencer": "sequencer ABcast",
    "ct": "consensus ABcast",
    "passive": "primary-backup",
}


def run_case(protocol: str, crash: bool):
    schedule = FaultSchedule().crash(10.0, "p1") if crash else None
    return run_scenario(
        ScenarioConfig(
            protocol=protocol,
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            fd_interval=1.5,
            fd_timeout=5.0,
            fault_schedule=schedule,
            grace=250.0,
            seed=11,
        )
    )


def main() -> None:
    table = Table(
        "Protocol comparison: 3 replicas, 20 requests, crash of p1 at t=10",
        [
            "protocol",
            "clean mean latency",
            "crash mean latency",
            "finished",
            "inconsistencies",
        ],
    )
    for protocol in PROTOCOLS:
        clean = run_case(protocol, crash=False)
        crashed = run_case(protocol, crash=True)
        inconsistent = checkers.count_baseline_inconsistencies(
            crashed.trace, crashed.correct_servers
        )
        table.add_row(
            LABELS[protocol],
            summarize(clean.latencies()).mean,
            summarize(crashed.latencies()).mean if crashed.latencies() else "-",
            "yes" if crashed.all_done() else "NO",
            inconsistent,
        )
    print(table.render())
    print(
        "\nreading guide: the sequencer baseline is fastest but can hand\n"
        "clients replies the group later contradicts (see\n"
        "examples/sequencer_anomaly.py for the surgical version);\n"
        "consensus-per-request is safe but slow; OAR sits one message\n"
        "delay above the sequencer with zero inconsistencies."
    )


if __name__ == "__main__":
    main()
