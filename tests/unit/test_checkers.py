"""Unit tests for the correctness checkers: they must catch violations."""

import pytest

from repro.analysis.checkers import (
    CheckFailure,
    check_at_least_once,
    check_at_most_once,
    check_cnsv_order_properties,
    check_external_consistency,
    check_majority_guarantee,
    check_replica_convergence,
    check_total_order,
    count_baseline_inconsistencies,
    reconstruct_delivered,
    settled_epochs,
)
from repro.sim.trace import TraceLog
from repro.statemachine import CounterMachine

pytestmark = pytest.mark.unit



class FakeServer:
    """Minimal stand-in exposing what the checkers consume."""

    def __init__(self, pid, order, crashed=False, counter=None):
        self.pid = pid
        self.delivered_order = tuple(order)
        self.crashed = crashed
        self.machine = CounterMachine(initial=counter if counter is not None else len(order))


class TestReconstruction:
    def test_replay_with_undo(self):
        log = TraceLog()
        log.record(1.0, "p1", "opt_deliver", rid="a", epoch=0, position=1, value=1)
        log.record(2.0, "p1", "opt_deliver", rid="b", epoch=0, position=2, value=2)
        log.record(3.0, "p1", "opt_undeliver", rid="b", epoch=0)
        log.record(4.0, "p1", "a_deliver", rid="c", epoch=0, position=2, value=2)
        assert reconstruct_delivered(log, "p1") == ["a", "c"]

    def test_out_of_order_undo_detected(self):
        log = TraceLog()
        log.record(1.0, "p1", "opt_deliver", rid="a", epoch=0, position=1, value=1)
        log.record(2.0, "p1", "opt_deliver", rid="b", epoch=0, position=2, value=2)
        log.record(3.0, "p1", "opt_undeliver", rid="a", epoch=0)
        with pytest.raises(CheckFailure, match="does not undo the last"):
            reconstruct_delivered(log, "p1")

    def test_settled_epochs(self):
        log = TraceLog()
        log.record(0.0, "p1", "epoch_start", epoch=0, sequencer="p1")
        log.record(9.0, "p1", "epoch_start", epoch=1, sequencer="p2")
        assert settled_epochs(log, "p1") == {0}


class TestTotalOrderChecker:
    def test_accepts_prefix_related(self):
        servers = [FakeServer("p1", ["a", "b"]), FakeServer("p2", ["a", "b", "c"])]
        check_total_order(servers)

    def test_rejects_divergence(self):
        servers = [FakeServer("p1", ["a", "b"]), FakeServer("p2", ["b", "a"])]
        with pytest.raises(CheckFailure, match="total order"):
            check_total_order(servers)

    def test_ignores_crashed(self):
        servers = [
            FakeServer("p1", ["b", "a"], crashed=True),
            FakeServer("p2", ["a", "b"]),
        ]
        check_total_order(servers)


class TestConvergenceChecker:
    def test_rejects_state_divergence_with_same_order(self):
        servers = [
            FakeServer("p1", ["a"], counter=1),
            FakeServer("p2", ["a"], counter=99),
        ]
        with pytest.raises(CheckFailure, match="diverge"):
            check_replica_convergence(servers)

    def test_accepts_matching_states(self):
        servers = [FakeServer("p1", ["a"]), FakeServer("p2", ["a"])]
        check_replica_convergence(servers)


class TestAtMostOnce:
    def test_detects_duplicate_delivery(self):
        log = TraceLog()
        log.record(1.0, "p1", "opt_deliver", rid="a", epoch=0, position=1, value=1)
        log.record(2.0, "p1", "a_deliver", rid="a", epoch=0, position=2, value=2)
        server = FakeServer("p1", ["a", "a"])
        with pytest.raises(CheckFailure, match="duplicate"):
            check_at_most_once(log, [server])

    def test_detects_trace_state_mismatch(self):
        log = TraceLog()
        log.record(1.0, "p1", "opt_deliver", rid="a", epoch=0, position=1, value=1)
        server = FakeServer("p1", ["b"])
        with pytest.raises(CheckFailure, match="differs from server state"):
            check_at_most_once(log, [server])


class TestAtLeastOnce:
    def test_detects_missing_request(self):
        log = TraceLog()
        log.record(1.0, "p1", "a_deliver", rid="a", epoch=0, position=1, value=1)
        server = FakeServer("p1", ["a"])
        with pytest.raises(CheckFailure, match="never delivered"):
            check_at_least_once(log, [server], ["a", "missing"])

    def test_passes_when_all_delivered(self):
        log = TraceLog()
        log.record(1.0, "p1", "a_deliver", rid="a", epoch=0, position=1, value=1)
        check_at_least_once(log, [FakeServer("p1", ["a"])], ["a"])


class TestMajorityGuaranteeChecker:
    def _opt(self, log, pid, rid, epoch, position):
        log.record(
            float(position), pid, "opt_deliver",
            rid=rid, epoch=epoch, position=position, value=position,
        )

    def test_detects_violation(self):
        log = TraceLog()
        # Majority (p1, p2 of 3) opt-deliver a before b...
        for pid in ("p1", "p2"):
            self._opt(log, pid, "a", 0, 1)
            self._opt(log, pid, "b", 0, 2)
        # ...but p3 A-delivers b before a.
        log.record(5.0, "p3", "a_deliver", rid="b", epoch=0, position=1, value=1)
        log.record(6.0, "p3", "a_deliver", rid="a", epoch=0, position=2, value=2)
        with pytest.raises(CheckFailure, match="majority guarantee"):
            check_majority_guarantee(log, 3)

    def test_minority_prefix_allows_reordering(self):
        log = TraceLog()
        self._opt(log, "p1", "a", 0, 1)  # only one of three
        self._opt(log, "p1", "b", 0, 2)
        log.record(5.0, "p3", "a_deliver", rid="b", epoch=0, position=1, value=1)
        log.record(6.0, "p3", "a_deliver", rid="a", epoch=0, position=2, value=2)
        check_majority_guarantee(log, 3)


class TestExternalConsistencyChecker:
    def _adopt(self, log, rid, position, value):
        log.record(
            9.0, "c1", "adopt",
            rid=rid, position=position, value=value, epoch=0,
            weight=("p1", "p2"), conservative=False, latency=1.0,
        )

    def test_detects_conflicting_a_deliver(self):
        log = TraceLog()
        self._adopt(log, "a", 1, "x")
        log.record(5.0, "p2", "a_deliver", rid="a", epoch=0, position=2, value="y")
        with pytest.raises(CheckFailure, match="external consistency"):
            check_external_consistency(log)

    def test_detects_conflicting_kept_opt_deliver(self):
        log = TraceLog()
        self._adopt(log, "a", 1, "x")
        log.record(5.0, "p2", "opt_deliver", rid="a", epoch=0, position=2, value="y")
        with pytest.raises(CheckFailure, match="external consistency"):
            check_external_consistency(log)

    def test_undone_opt_deliver_is_fine(self):
        log = TraceLog()
        self._adopt(log, "a", 1, "x")
        log.record(5.0, "p2", "opt_deliver", rid="a", epoch=0, position=2, value="y")
        log.record(6.0, "p2", "opt_undeliver", rid="a", epoch=0)
        assert check_external_consistency(log) == 1

    def test_crashed_process_deliveries_ignored(self):
        log = TraceLog()
        self._adopt(log, "a", 1, "x")
        log.record(5.0, "p2", "opt_deliver", rid="a", epoch=0, position=2, value="y")
        log.record(6.0, "p2", "crash")
        check_external_consistency(log)

    def test_relaxed_mode_tolerates_unsettled_epochs(self):
        log = TraceLog()
        self._adopt(log, "a", 1, "x")
        log.record(0.0, "p2", "epoch_start", epoch=0, sequencer="p1")
        log.record(5.0, "p2", "opt_deliver", rid="a", epoch=0, position=2, value="y")
        with pytest.raises(CheckFailure):
            check_external_consistency(log, strict=True)
        check_external_consistency(log, strict=False)  # epoch 0 never settled


class TestCnsvOrderChecker:
    def _run_epoch(self, log, results):
        for pid, (o_dlv, o_notdlv) in results["proposals"].items():
            log.record(
                5.0, pid, "cnsv_propose",
                epoch=0, o_delivered=o_dlv, o_notdelivered=o_notdlv,
            )
        for pid, (bad, new) in results["orders"].items():
            o_dlv = results["proposals"][pid][0]
            log.record(
                6.0, pid, "cnsv_order",
                epoch=0, o_delivered=o_dlv, decision=(), bad=bad, new=new,
            )

    def test_accepts_consistent_epoch(self):
        log = TraceLog()
        self._run_epoch(log, {
            "proposals": {
                "p1": (("a", "b"), ()),
                "p2": (("a",), ("b",)),
            },
            "orders": {
                "p1": ((), ()),
                "p2": ((), ("b",)),
            },
        })
        assert check_cnsv_order_properties(log, 3) == 1

    def test_detects_agreement_violation(self):
        log = TraceLog()
        self._run_epoch(log, {
            "proposals": {
                "p1": (("a", "b"), ()),
                "p2": (("a", "b"), ()),
            },
            "orders": {
                "p1": ((), ()),
                "p2": (("b",), ()),  # p2 drops b: finals differ
            },
        })
        with pytest.raises(CheckFailure, match="agreement"):
            check_cnsv_order_properties(log, 3)

    def test_detects_undo_legality_violation(self):
        log = TraceLog()
        self._run_epoch(log, {
            "proposals": {"p1": (("a", "b"), ()), "p2": (("a", "b"), ())},
            "orders": {
                "p1": (("a",), ("a",)),  # Bad={a} is not a suffix of [a,b]
                "p2": (("a",), ("a",)),
            },
        })
        with pytest.raises(CheckFailure, match="undo legality"):
            check_cnsv_order_properties(log, 3)

    def test_detects_nontriviality_violation(self):
        log = TraceLog()
        self._run_epoch(log, {
            "proposals": {
                "p1": ((), ("m",)),
                "p2": ((), ("m",)),  # majority of 3 holds m
            },
            "orders": {"p1": ((), ()), "p2": ((), ())},  # nobody delivers it
        })
        with pytest.raises(CheckFailure, match="non-triviality"):
            check_cnsv_order_properties(log, 3)

    def test_detects_unproposed_new_message(self):
        log = TraceLog()
        self._run_epoch(log, {
            "proposals": {"p1": ((), ()), "p2": ((), ())},
            "orders": {"p1": ((), ("ghost",)), "p2": ((), ("ghost",))},
        })
        with pytest.raises(CheckFailure, match="validity"):
            check_cnsv_order_properties(log, 3)


class TestBaselineScoring:
    def test_counts_stale_adoptions(self):
        log = TraceLog()
        log.record(
            3.0, "c1", "adopt",
            rid="a", position=1, value="y", epoch=0,
            weight=("p1",), conservative=True, latency=1.0,
        )
        servers = [FakeServer("p2", ["b", "a"]), FakeServer("p3", ["b", "a"])]
        assert count_baseline_inconsistencies(log, servers) == 1

    def test_consistent_adoption_not_counted(self):
        log = TraceLog()
        log.record(
            3.0, "c1", "adopt",
            rid="a", position=1, value="y", epoch=0,
            weight=("p1",), conservative=True, latency=1.0,
        )
        servers = [FakeServer("p2", ["a", "b"]), FakeServer("p3", ["a", "b"])]
        assert count_baseline_inconsistencies(log, servers) == 0
