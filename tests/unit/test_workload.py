"""Unit tests for workload generators and client drivers."""

import itertools
import random

import pytest

from repro.statemachine import BankMachine, KVStoreMachine, StackMachine
from repro.workload.drivers import ClosedLoopDriver, OpenLoopDriver
from repro.workload.generators import bank_ops, counter_ops, kv_ops, stack_ops
from repro.harness import ScenarioConfig, run_scenario

pytestmark = pytest.mark.unit



def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestGenerators:
    def test_counter_ops(self):
        assert take(counter_ops(), 3) == [("incr",)] * 3

    def test_stack_ops_deterministic_and_applicable(self):
        ops_a = take(stack_ops(random.Random(1)), 50)
        ops_b = take(stack_ops(random.Random(1)), 50)
        assert ops_a == ops_b
        machine = StackMachine()
        for op in ops_a:
            machine.apply(op)  # must never raise

    def test_stack_push_bias(self):
        ops = take(stack_ops(random.Random(2), push_bias=1.0), 20)
        assert all(op[0] == "push" for op in ops)
        names = {op[0] for op in take(stack_ops(random.Random(2), push_bias=0.0), 20)}
        assert names == {"pop"}

    def test_kv_ops_applicable(self):
        machine = KVStoreMachine()
        for op in take(kv_ops(random.Random(3)), 100):
            machine.apply(op)
        assert {op[0] for op in take(kv_ops(random.Random(3)), 100)} <= {
            "set",
            "cas",
            "get",
        }

    def test_bank_ops_applicable_and_deterministic(self):
        machine = BankMachine({"alice": 1000, "bob": 1000, "carol": 1000})
        ops = take(bank_ops(random.Random(4)), 200)
        assert ops == take(bank_ops(random.Random(4)), 200)
        for op in ops:
            machine.apply(op)
        kinds = {op[0] for op in ops}
        assert "transfer" in kinds


class TestDriversViaScenario:
    def test_closed_loop_submits_sequentially(self):
        run = run_scenario(
            ScenarioConfig(n_clients=1, requests_per_client=5, seed=11)
        )
        assert run.all_done()
        client = run.clients[0]
        assert len(client.adopted) == 5
        # Closed loop: next submit strictly after previous adoption.
        submits = sorted(
            e.time for e in run.trace.events(kind="submit", pid=client.pid)
        )
        adopts = sorted(
            e.time for e in run.trace.events(kind="adopt", pid=client.pid)
        )
        for i in range(1, len(submits)):
            assert submits[i] >= adopts[i - 1]

    def test_closed_loop_think_time(self):
        run = run_scenario(
            ScenarioConfig(
                n_clients=1, requests_per_client=3, think_time=10.0, seed=12
            )
        )
        submits = sorted(
            e.time for e in run.trace.events(kind="submit")
        )
        adopts = sorted(e.time for e in run.trace.events(kind="adopt"))
        assert submits[1] >= adopts[0] + 10.0

    def test_open_loop_poisson_arrivals(self):
        run = run_scenario(
            ScenarioConfig(
                n_clients=1,
                requests_per_client=20,
                driver="open",
                open_rate=5.0,
                seed=13,
            )
        )
        assert run.all_done()
        submits = [e.time for e in run.trace.events(kind="submit")]
        assert len(submits) == 20
        # Open loop does not wait for adoptions: several submissions can
        # precede the first adoption.
        first_adopt = min(e.time for e in run.trace.events(kind="adopt"))
        assert any(t < first_adopt for t in submits[1:])

    def test_open_loop_requires_positive_rate(self):
        from repro.sim.loop import Simulator

        with pytest.raises(ValueError):
            OpenLoopDriver(Simulator(), object(), iter(()), total=1, rate=0.0)

    def test_driver_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            run_scenario(ScenarioConfig(driver="telepathic"))
