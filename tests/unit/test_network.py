"""Unit tests for the simulated network: FIFO, crashes, partitions, interceptors."""

from typing import Any, List, Tuple

import pytest

from repro.faults.injection import FaultSchedule, crash_during_multicast
from repro.sim.latency import ConstantLatency, UniformLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.process import Process

pytestmark = pytest.mark.unit



class Recorder(Process):
    """Records every message it receives."""

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.received: List[Tuple[str, Any]] = []

    def on_message(self, src: str, payload: Any) -> None:
        self.received.append((src, payload))


class Echoer(Recorder):
    """Replies 'echo:<n>' to every message."""

    def on_message(self, src: str, payload: Any) -> None:
        super().on_message(src, payload)
        self.env.send(src, f"echo:{payload}")


def build(n: int = 2, latency=None, seed: int = 1):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=latency or ConstantLatency(1.0))
    processes = [Recorder(f"p{i + 1}") for i in range(n)]
    for process in processes:
        network.add_process(process)
    network.start_all()
    return sim, network, processes


class TestDelivery:
    def test_message_delivered_after_latency(self):
        sim, network, (a, b) = build()
        a.env.send("p2", "hello")
        sim.run()
        assert b.received == [("p1", "hello")]
        assert sim.now == 1.0

    def test_send_to_unknown_destination_raises(self):
        sim, network, (a, _b) = build()
        with pytest.raises(KeyError):
            a.env.send("nope", "hello")

    def test_fifo_preserved_with_jittery_latency(self):
        # Uniform latency could reorder; the channel must not.
        sim, network, (a, b) = build(latency=UniformLatency(0.1, 5.0), seed=3)
        for i in range(50):
            a.env.send("p2", i)
        sim.run()
        assert [payload for _src, payload in b.received] == list(range(50))

    def test_fifo_independent_per_channel(self):
        sim, network, (a, b, c) = build(n=3, latency=UniformLatency(0.1, 5.0))
        for i in range(20):
            a.env.send("p3", ("a", i))
            b.env.send("p3", ("b", i))
        sim.run()
        a_msgs = [p for _s, p in c.received if p[0] == "a"]
        b_msgs = [p for _s, p in c.received if p[0] == "b"]
        assert a_msgs == [("a", i) for i in range(20)]
        assert b_msgs == [("b", i) for i in range(20)]

    def test_message_counters(self):
        sim, network, (a, b) = build()
        a.env.send("p2", 1)
        a.env.send("p2", 2)
        sim.run()
        assert network.messages_sent == 2
        assert network.messages_delivered == 2


class TestCrash:
    def test_crashed_process_stops_receiving(self):
        sim, network, (a, b) = build()
        a.env.send("p2", "before")
        sim.run()
        network.crash("p2")
        a.env.send("p2", "after")
        sim.run()
        assert [p for _s, p in b.received] == ["before"]

    def test_crashed_process_cannot_send(self):
        sim, network, (a, b) = build()
        network.crash("p1")
        a.env.send("p2", "zombie")
        sim.run()
        assert b.received == []

    def test_in_flight_messages_from_crashed_sender_still_arrive(self):
        sim, network, (a, b) = build()
        a.env.send("p2", "in-flight")
        network.crash("p1")  # after the send left
        sim.run()
        assert [p for _s, p in b.received] == ["in-flight"]

    def test_crashed_process_timers_suppressed(self):
        sim, network, (a, b) = build()
        fired = []
        a.env.set_timer(5.0, lambda: fired.append("x"))
        network.crash_at(2.0, "p1")
        sim.run()
        assert fired == []

    def test_on_crash_hook_runs_once(self):
        class Crashable(Recorder):
            def __init__(self, pid):
                super().__init__(pid)
                self.crash_count = 0

            def on_crash(self):
                self.crash_count += 1

        sim = Simulator()
        network = SimNetwork(sim)
        p = Crashable("p1")
        network.start(p)
        network.crash("p1")
        network.crash("p1")
        assert p.crash_count == 1
        assert network.is_crashed("p1")
        assert network.correct_pids() == []


class TestPartition:
    def test_partition_holds_and_heal_releases(self):
        sim, network, (a, b) = build()
        network.set_partition([["p1"], ["p2"]])
        a.env.send("p2", "delayed")
        sim.run(until=10.0)
        assert b.received == []
        network.heal()
        sim.run()
        assert [p for _s, p in b.received] == ["delayed"]

    def test_partition_preserves_order_across_heal(self):
        sim, network, (a, b) = build()
        a.env.send("p2", "first")
        sim.run(until=0.5)  # first is in flight
        network.set_partition([["p1"], ["p2"]])
        a.env.send("p2", "second")
        a.env.send("p2", "third")
        sim.run(until=5.0)
        network.heal()
        sim.run()
        assert [p for _s, p in b.received] == ["first", "second", "third"]

    def test_same_group_communication_unaffected(self):
        sim, network, (a, b, c) = build(n=3)
        network.set_partition([["p1", "p2"], ["p3"]])
        a.env.send("p2", "intra")
        a.env.send("p3", "inter")
        sim.run(until=10.0)
        assert [p for _s, p in b.received] == ["intra"]
        assert c.received == []

    def test_unlisted_processes_share_implicit_group(self):
        sim, network, (a, b, c) = build(n=3)
        network.set_partition([["p1"]])
        b.env.send("p3", "rest-to-rest")
        sim.run(until=10.0)
        assert [p for _s, p in c.received] == ["rest-to-rest"]

    def test_duplicate_group_membership_rejected(self):
        sim, network, _ = build(n=2)
        with pytest.raises(ValueError):
            network.set_partition([["p1"], ["p1", "p2"]])

    def test_message_in_flight_when_partition_forms_is_held(self):
        sim, network, (a, b) = build()
        a.env.send("p2", "caught")
        network.set_partition([["p1"], ["p2"]])
        sim.run(until=10.0)
        assert b.received == []
        network.heal()
        sim.run()
        assert [p for _s, p in b.received] == ["caught"]


class TestInterceptors:
    def test_interceptor_can_drop(self):
        sim, network, (a, b) = build()
        network.add_interceptor(lambda src, dst, payload: payload != "drop-me")
        a.env.send("p2", "drop-me")
        a.env.send("p2", "keep-me")
        sim.run()
        assert [p for _s, p in b.received] == ["keep-me"]

    def test_interceptor_removal(self):
        sim, network, (a, b) = build()
        block = lambda src, dst, payload: False
        network.add_interceptor(block)
        a.env.send("p2", 1)
        network.remove_interceptor(block)
        a.env.send("p2", 2)
        sim.run()
        assert [p for _s, p in b.received] == [2]

    def test_crash_during_multicast_partial_delivery(self):
        sim, network, procs = build(n=4)
        a = procs[0]
        injector = crash_during_multicast(
            network, "p1", lambda p: p == "batch", deliver_to={"p2"}
        )
        a.env.send_to_all(["p2", "p3", "p4"], "batch")
        sim.run()
        assert [p for _s, p in procs[1].received] == ["batch"]
        assert procs[2].received == []
        assert procs[3].received == []
        assert network.is_crashed("p1")
        assert injector.triggered_at == 0.0

    def test_crash_during_multicast_ignores_other_messages(self):
        sim, network, procs = build(n=3)
        a = procs[0]
        crash_during_multicast(
            network, "p1", lambda p: p == "target", deliver_to=set()
        )
        a.env.send_to_all(["p2", "p3"], "innocent")
        sim.run()
        assert [p for _s, p in procs[1].received] == ["innocent"]
        assert not network.is_crashed("p1")


class TestFaultSchedule:
    def test_schedule_applies_crashes_and_partitions(self):
        sim, network, (a, b) = build()
        schedule = (
            FaultSchedule()
            .partition(1.0, [["p1"], ["p2"]])
            .heal(5.0)
            .crash(8.0, "p2")
        )
        schedule.apply(network)
        sim.schedule_at(2.0, lambda: a.env.send("p2", "held"))
        sim.run()
        assert [p for _s, p in b.received] == ["held"]
        assert network.is_crashed("p2")
        assert schedule.crash_times == [8.0]

    def test_unknown_action_rejected(self):
        from repro.faults.injection import FaultAction, _make_action

        sim, network, _ = build()
        action = _make_action(network, [], FaultAction(0.0, "explode"))
        with pytest.raises(ValueError):
            action()


class TestTraceIntegration:
    def test_trace_records_process_events(self):
        sim, network, (a, b) = build()
        a.env.trace("custom", detail=42)
        events = network.trace.events(kind="custom")
        assert len(events) == 1
        assert events[0].pid == "p1"
        assert events[0]["detail"] == 42

    def test_message_tracing_optional(self):
        sim = Simulator()
        network = SimNetwork(sim, trace_messages=True)
        a, b = Recorder("a"), Recorder("b")
        network.add_process(a)
        network.add_process(b)
        network.start_all()
        a.env.send("b", "x")
        sim.run()
        assert network.trace.events(kind="msg_send")
        assert network.trace.events(kind="msg_recv")
