"""Unit tests for the per-link fault plane: policies, blocks, accounting."""

from typing import Any, List, Tuple

import pytest

from repro.analysis.checkers import CheckFailure, check_fault_plane_accounting
from repro.core.messages import Request
from repro.faults.injection import FaultSchedule
from repro.sim.faultplane import (
    CorruptedPayload,
    LinkFaultPolicy,
    install_uniform_faults,
    payload_kinds,
    wire_checksum,
)
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.process import Process

pytestmark = pytest.mark.unit


class Recorder(Process):
    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.received: List[Tuple[str, Any]] = []

    def on_message(self, src: str, payload: Any) -> None:
        self.received.append((src, payload))


def build(n: int = 2, seed: int = 1):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    processes = [Recorder(f"p{i + 1}") for i in range(n)]
    for process in processes:
        network.add_process(process)
    network.start_all()
    return sim, network, processes


class TestPolicyValidation:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            LinkFaultPolicy(drop=1.5)
        with pytest.raises(ValueError):
            LinkFaultPolicy(duplicate=-0.1)
        with pytest.raises(ValueError):
            LinkFaultPolicy(jitter_span=-1.0)

    def test_payload_kinds_reaches_through_rmsg(self):
        request = Request(rid="c1:1", client="c1", op=("mig_install", "k1"))
        assert "Request" in payload_kinds(request)
        assert "mig_install" in payload_kinds(request)

        class RMsg:  # structural stand-in for the broadcast wrapper
            def __init__(self, payload):
                self.payload = payload

        wrapped = RMsg(request)
        kinds = payload_kinds(wrapped)
        assert {"RMsg", "Request", "mig_install"} <= kinds


class TestPolicyMatching:
    def test_first_match_wins(self):
        sim, network, (a, b) = build()
        plane = network.ensure_fault_plane()
        plane.add_policy(LinkFaultPolicy(), src="p1")  # benign rule first
        plane.add_policy(LinkFaultPolicy(drop=1.0))  # lossy catch-all second
        a.env.send("p2", "x")
        sim.run()
        assert [p for _s, p in b.received] == ["x"]
        assert plane.dropped == 0

    def test_src_dst_specific_rule(self):
        sim, network, (a, b, c) = build(n=3)
        plane = network.ensure_fault_plane()
        plane.add_policy(LinkFaultPolicy(drop=1.0), src="p1", dst="p2")
        a.env.send("p2", "lost")
        a.env.send("p3", "kept")
        sim.run()
        assert b.received == []
        assert [p for _s, p in c.received] == ["kept"]
        assert plane.dropped == 1

    def test_kind_specific_rule(self):
        sim, network, (a, b) = build()
        plane = network.ensure_fault_plane()
        plane.add_policy(LinkFaultPolicy(drop=1.0), kind="Request")
        a.env.send("p2", Request(rid="c1:1", client="c1", op=("inc",)))
        a.env.send("p2", "plain string survives")
        sim.run()
        assert [p for _s, p in b.received] == ["plain string survives"]


class TestDropDupCorrupt:
    def test_certain_drop_counts_and_traces(self):
        sim, network, (a, b) = build()
        install_uniform_faults(network, drop=1.0)
        for i in range(5):
            a.env.send("p2", i)
        sim.run()
        assert b.received == []
        plane = network.fault_plane
        assert plane.dropped == 5
        assert len(network.trace.events(kind="msg_drop")) == 5
        check_fault_plane_accounting(network.trace, network)

    def test_certain_duplicate_delivers_twice(self):
        sim, network, (a, b) = build()
        install_uniform_faults(network, duplicate=1.0)
        a.env.send("p2", "x")
        sim.run()
        assert [p for _s, p in b.received] == ["x", "x"]
        assert network.fault_plane.duplicated == 1
        check_fault_plane_accounting(network.trace, network)

    def test_corruption_detected_and_dropped(self):
        sim, network, (a, b) = build()
        install_uniform_faults(network, corrupt=1.0)
        a.env.send("p2", "precious")
        sim.run()
        # The corrupted payload never reaches the process.
        assert b.received == []
        assert network.fault_plane.corrupted == 1
        assert network.corrupt_dropped == 1
        assert len(network.trace.events(kind="msg_corrupt_drop")) == 1
        check_fault_plane_accounting(network.trace, network)

    def test_checksum_detects_wrapped_payload(self):
        payload = ("deposit", "alice", 5)
        stamp = wire_checksum(payload)
        assert wire_checksum(CorruptedPayload(payload)) != stamp

    def test_probabilistic_faults_deterministic_per_seed(self):
        def run(seed: int) -> List[Any]:
            sim, network, (a, b) = build(seed=seed)
            install_uniform_faults(network, drop=0.3, duplicate=0.3)
            for i in range(40):
                a.env.send("p2", i)
            sim.run()
            return [p for _s, p in b.received]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestJitter:
    def test_jitter_reorders_channel(self):
        sim, network, (a, b) = build(seed=2)
        install_uniform_faults(network, jitter=1.0, jitter_span=20.0)
        for i in range(30):
            a.env.send("p2", i)
        sim.run()
        payloads = [p for _s, p in b.received]
        assert sorted(payloads) == list(range(30))
        assert payloads != list(range(30))  # genuinely reordered
        assert network.fault_plane.jittered == 30
        check_fault_plane_accounting(network.trace, network)


class TestOneWayBlocks:
    def test_block_is_asymmetric(self):
        sim, network, (a, b) = build()
        plane = network.ensure_fault_plane()
        plane.block("p1", "p2")
        a.env.send("p2", "muted")
        b.env.send("p1", "reverse still up")
        sim.run()
        assert b.received == []
        assert [p for _s, p in a.received] == ["reverse still up"]
        assert plane.pending_held == 1

    def test_heal_storm_releases_everything(self):
        sim, network, (a, b) = build()
        plane = network.ensure_fault_plane()
        plane.block("p1", "*")
        for i in range(4):
            a.env.send("p2", i)
        sim.run()
        assert b.received == []
        plane.heal()
        sim.run()
        assert sorted(p for _s, p in b.received) == [0, 1, 2, 3]
        assert plane.held == 4
        assert plane.released == 4
        assert plane.pending_held == 0
        storms = network.trace.events(kind="heal_storm")
        assert len(storms) == 1 and storms[0]["released"] == 4
        check_fault_plane_accounting(network.trace, network)

    def test_unblock_without_release(self):
        sim, network, (a, b) = build()
        plane = network.ensure_fault_plane()
        plane.block("p1", "p2")
        a.env.send("p2", "stuck")
        sim.run()
        plane.unblock("p1", "p2")
        a.env.send("p2", "flows")
        sim.run()
        # Unblock opens the link for new traffic; held traffic waits for
        # the heal storm.
        assert [p for _s, p in b.received] == ["flows"]
        assert plane.pending_held == 1

    def test_schedule_oneway_actions(self):
        sim, network, (a, b) = build()
        schedule = (
            FaultSchedule()
            .oneway(1.0, [("p1", "p2")])
            .heal_oneway(10.0)
        )
        schedule.apply(network)
        sim.schedule_at(2.0, lambda: a.env.send("p2", "held"))
        sim.run()
        assert [p for _s, p in b.received] == ["held"]
        assert network.fault_plane.released == 1


class TestRewrites:
    def test_rewrite_replaces_payload_and_counts(self):
        sim, network, (a, b) = build()
        plane = network.ensure_fault_plane()
        plane.add_rewrite(
            lambda src, dst, payload: "forged" if payload == "original" else None
        )
        a.env.send("p2", "original")
        a.env.send("p2", "other")
        sim.run()
        assert [p for _s, p in b.received] == ["forged", "other"]
        assert plane.rewritten == 1
        check_fault_plane_accounting(network.trace, network)

    def test_rewrite_is_checksummed_as_sent(self):
        # A Byzantine sender signs its own lie: the rewritten payload is
        # delivered (valid checksum), not dropped as corrupt.
        sim, network, (a, b) = build()
        plane = network.ensure_fault_plane()
        plane.add_policy(LinkFaultPolicy(corrupt=0.0, drop=0.0))
        plane._checksums = True  # force stamping without any corrupt rule
        plane.add_rewrite(lambda src, dst, payload: "forged")
        a.env.send("p2", "original")
        sim.run()
        assert [p for _s, p in b.received] == ["forged"]
        assert network.corrupt_dropped == 0


class TestAccountingChecker:
    def test_zero_baseline_without_plane(self):
        sim, network, (a, b) = build()
        a.env.send("p2", "x")
        sim.run()
        stats = check_fault_plane_accounting(network.trace, network)
        assert stats == {"corrupt_dropped": 0}

    def test_counter_tampering_detected(self):
        sim, network, (a, b) = build()
        install_uniform_faults(network, drop=1.0)
        a.env.send("p2", "x")
        sim.run()
        network.fault_plane.dropped += 1  # silent fault: counter w/o trace
        with pytest.raises(CheckFailure):
            check_fault_plane_accounting(network.trace, network)

    def test_held_conservation_violation_detected(self):
        sim, network, (a, b) = build()
        plane = network.ensure_fault_plane()
        plane.block("p1", "p2")
        a.env.send("p2", "x")
        sim.run()
        plane._held.clear()  # lose a held message without releasing it
        with pytest.raises(CheckFailure):
            check_fault_plane_accounting(network.trace, network)

    def test_stats_surface_on_network(self):
        sim, network, (a, b) = build()
        install_uniform_faults(network, drop=1.0)
        a.env.send("p2", "x")
        sim.run()
        stats = network.stats()
        assert stats["dropped"] == 1
        assert stats["sent"] == 1
        assert stats["corrupt_dropped"] == 0
